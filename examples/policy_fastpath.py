#!/usr/bin/env python3
"""Policy fast path: declarative rules answer ahead of the selector.

A production edge knows things the QoS model does not: some device
classes are blocked outright, some must only ride the hardware
transcoders, and a mostly-compatible audience decodes the source format
natively and needs no adaptation chain at all.  This example embeds a
three-rule :class:`~repro.policy.PolicyDocument` in the serving
scenario, boots a real gateway, and walks each action over the wire:

- a ``skip`` rule answers a compatible device with a sound zero-hop
  plan (``policy_skip``, cost 0) before the selector ever runs;
- a ``force_tier`` rule pins one device class to the hardware tier;
- a ``deny`` rule refuses a blocked class with a 403 and a reason;
- a hot swap over ``POST /admin/reload`` replaces the rules without
  restarting (and without flushing the selector's plan cache).

Run:
    python examples/policy_fastpath.py
"""

import asyncio
import json

from repro.policy import (
    Decodes,
    DeviceIn,
    PolicyDocument,
    PolicyRule,
    policy_to_dict,
)
from repro.profiles.device import DeviceProfile
from repro.profiles.serialization import profile_to_dict
from repro.serve import GatewayConfig, PlanningGateway
from repro.serve.http11 import read_response, render_request
from repro.serve.protocol import encode_payload
from repro.workloads.synthetic import SyntheticConfig, generate_scenario


async def call(port: int, method: str, path: str, payload=None):
    """One hand-rolled HTTP round-trip; returns (status, decoded body)."""
    body = encode_payload(payload) if payload is not None else b""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(render_request(method, path, body, keep_alive=False))
    await writer.drain()
    response = await read_response(reader)
    writer.close()
    await writer.wait_closed()
    return response.status, json.loads(response.body)


def sibling(device, device_id, decoders):
    return DeviceProfile(
        device_id=device_id,
        decoders=decoders,
        max_resolution=device.max_resolution,
        max_color_depth=device.max_color_depth,
        max_frame_rate=device.max_frame_rate,
    )


async def main() -> None:
    # A synthetic world where half the transcoders have hardware
    # siblings (faster per Equation 2, costlier), plus a policy.
    scenario = generate_scenario(
        SyntheticConfig(seed=7, n_services=12, n_formats=8, n_nodes=8,
                        hw_tier_fraction=0.5)
    )
    source = scenario.content.format_names()[0]
    scenario.policy = PolicyDocument(
        name="edge-policy",
        rules=(
            PolicyRule(rule_id="blocked", action="deny",
                       predicates=(DeviceIn(("kiosk",)),),
                       reason="kiosk fleet is region-locked"),
            PolicyRule(rule_id="hw-only", action="force_tier", tier="hw",
                       predicates=(DeviceIn(("settop",)),)),
            PolicyRule(rule_id="native", action="skip",
                       predicates=(Decodes(source),), tolerance=0.05),
        ),
    )
    base = scenario.device
    native = sibling(base, "handset",
                     [source] + [d for d in base.decoders if d != source])
    settop = sibling(base, "settop", list(base.decoders))
    kiosk = sibling(base, "kiosk", list(base.decoders))

    gateway = PlanningGateway(scenario, GatewayConfig(port=0, workers=2))
    await gateway.start()
    _, policy = await call(gateway.port, "GET", "/policy")
    print(f"gateway up on 127.0.0.1:{gateway.port} with policy "
          f"{policy['policy']!r} ({policy['rules']} rules)\n")

    # --- skip: the zero-hop fast path ----------------------------------
    status, answer = await call(gateway.port, "POST", "/plan",
                                {"device": profile_to_dict(native)})
    print(f"native handset -> {status} {answer['status']} "
          f"(rule {answer['rule']!r})")
    print(f"  zero-hop fast path: {'->'.join(answer['path'])}, "
          f"format {answer['formats'][0]}, cost {answer['cost']}")
    for line in answer["policy_trace"]:
        print(f"  trace: {line}")

    # --- force_tier: hardware transcoders only --------------------------
    status, answer = await call(gateway.port, "POST", "/plan",
                                {"device": profile_to_dict(settop),
                                 "deadline_ms": 2000})
    print(f"\nsettop -> {status} {answer['status']} "
          f"(rule {answer['policy_rule']!r}, tier {answer['forced_tier']!r})")
    print(f"  path: {'->'.join(answer['path'])}")

    # --- deny: refused before any planning work -------------------------
    status, answer = await call(gateway.port, "POST", "/plan",
                                {"device": profile_to_dict(kiosk)})
    print(f"\nkiosk -> {status} {answer['status']} "
          f"(rule {answer['rule']!r}: {answer['detail']})")

    # --- hot swap: drop every rule without restarting -------------------
    status, summary = await call(
        gateway.port, "POST", "/admin/reload",
        policy_to_dict(PolicyDocument(name="open-door")),
    )
    print(f"\nhot swap -> {summary['status']}: policy "
          f"{summary['policy']!r}, policy generation "
          f"{summary['policy_generation']}, "
          f"{summary['invalidated']} cached decisions invalidated")
    status, answer = await call(gateway.port, "POST", "/plan",
                                {"device": profile_to_dict(native)})
    print(f"native handset now -> {status} {answer['status']} "
          f"(selector path: {'->'.join(answer['path'])})")

    _, metrics = await call(gateway.port, "GET", "/metrics")
    counters = metrics["metrics"]["counters"]
    print(f"\ncounters: policy_fast_path={counters['policy_fast_path']} "
          f"policy_tier_forced={counters['policy_tier_forced']} "
          f"policy_denied={counters['policy_denied']} "
          f"planned={counters['planned']}")
    await gateway.drain()
    print("drained cleanly")


if __name__ == "__main__":
    asyncio.run(main())
