#!/usr/bin/env python3
"""Context-aware conferencing: profiles changing the plan at runtime.

The paper's Section 3 motivates per-context and per-peer adaptation: a
customer-service representative wants CD-quality audio with clients but
telephone quality with colleagues, and the environment (a noisy street, a
meeting room, a car) constrains what is worth delivering at all.

This example plans the *same* video stream for the same user under four
situations and shows how the framework's answer changes:

1. at the desk, talking to a colleague;
2. at the desk, talking to a client (peer override raises the bar);
3. in a meeting (context mutes audio);
4. driving (context kills video entirely — the plan collapses).

Run:
    python examples/context_aware_conference.py
"""

from repro import (
    ContentProfile,
    ContentVariant,
    Configuration,
    ContextProfile,
    DeviceProfile,
    FormatRegistry,
    MediaType,
    NetworkTopology,
    ServiceCatalog,
    ServiceDescriptor,
    ServicePlacement,
    UserProfile,
)
from repro.core.parameters import (
    AUDIO_QUALITY,
    COLOR_DEPTH,
    FRAME_RATE,
    RESOLUTION,
    ContinuousDomain,
    DiscreteDomain,
    Parameter,
    ParameterSet,
)
from repro.core.satisfaction import LinearSatisfaction, StepSatisfaction
from repro.workloads.scenario import Scenario


def build_world():
    registry = FormatRegistry()
    registry.define("raw-conf", MediaType.VIDEO, codec="conf", compression_ratio=15.0)
    registry.define("conf-lite", MediaType.VIDEO, codec="conf-lite", compression_ratio=70.0)

    topology = NetworkTopology()
    topology.node("studio")
    topology.node("mcu")  # the conference bridge hosts the transcoder
    topology.node("laptop")
    topology.link("studio", "mcu", 10e6, delay_ms=5.0)
    # Deliberately too narrow for 30 fps video *and* CD audio together —
    # the optimizer has to trade one against the other.
    topology.link("mcu", "laptop", 0.95e6, delay_ms=15.0)

    catalog = ServiceCatalog(
        [
            ServiceDescriptor(
                service_id="bridge-transcoder",
                input_formats=("raw-conf",),
                output_formats=("conf-lite",),
                output_caps={FRAME_RATE: 30.0},
                cost=0.1,
            )
        ]
    )
    placement = ServicePlacement(topology, {"bridge-transcoder": "mcu"})

    parameters = ParameterSet(
        [
            Parameter(FRAME_RATE, "fps", ContinuousDomain(0.0, 30.0)),
            Parameter(RESOLUTION, "pixels", DiscreteDomain([320.0 * 240.0])),
            Parameter(COLOR_DEPTH, "bits", DiscreteDomain([24.0])),
            Parameter(
                AUDIO_QUALITY, "kbps", DiscreteDomain([0.0, 8.0, 64.0, 256.0])
            ),
        ]
    )
    content = ContentProfile(
        content_id="conference-feed",
        variants=[
            ContentVariant(
                format=registry.get("raw-conf"),
                configuration=Configuration(
                    {
                        FRAME_RATE: 30.0,
                        RESOLUTION: 320.0 * 240.0,
                        COLOR_DEPTH: 24.0,
                        AUDIO_QUALITY: 256.0,
                    }
                ),
            )
        ],
    )
    device = DeviceProfile(
        device_id="laptop", decoders=["conf-lite"], max_frame_rate=30.0
    )
    # Base preferences: decent motion, telephone-grade audio is enough.
    # With clients (peer override), only CD-grade audio scores 1.0.
    user = UserProfile(
        user_id="rep",
        satisfaction_functions={
            FRAME_RATE: LinearSatisfaction(2.0, 25.0),
            AUDIO_QUALITY: StepSatisfaction([(8.0, 0.8), (64.0, 1.0)]),
        },
        peer_overrides={
            "client": {
                AUDIO_QUALITY: StepSatisfaction([(8.0, 0.2), (64.0, 0.7), (256.0, 1.0)])
            }
        },
        budget=5.0,
    )
    return registry, parameters, catalog, topology, placement, content, device, user


def plan_for(situation, context, peer, pieces):
    registry, parameters, catalog, topology, placement, content, device, user = pieces
    scenario = Scenario(
        name=situation,
        registry=registry,
        parameters=parameters,
        catalog=catalog,
        topology=topology,
        placement=placement,
        content=content,
        device=device,
        user=user,
        sender_node="studio",
        receiver_node="laptop",
        context=context,
    )
    graph = scenario.build_graph()
    from repro.core.selection import QoSPathSelector

    result = QoSPathSelector.for_user(
        graph, registry, parameters, user, peer=peer
    ).run()
    config = result.configuration
    print(f"{situation:<28} ", end="")
    if not result.success:
        print("-> no acceptable plan")
        return
    print(
        f"-> {','.join(result.path)}  "
        f"fps={config.get_value(FRAME_RATE, 0):5.2f}  "
        f"audio={config.get_value(AUDIO_QUALITY, 0):5.1f}kbps  "
        f"S={result.satisfaction:.3f}"
    )


def main() -> None:
    pieces = build_world()
    print("Planning the same conference feed under four situations:\n")
    plan_for("desk, with a colleague", ContextProfile(), None, pieces)
    plan_for("desk, with a client", ContextProfile(), "client", pieces)
    plan_for("in a meeting (audio muted)", ContextProfile(activity="meeting"), None, pieces)
    plan_for("driving (video dropped)", ContextProfile(activity="driving"), None, pieces)
    print(
        "\nThe context profile tightens the receiver's caps before the "
        "graph is built,\nand the peer override swaps in stricter "
        "satisfaction functions — both without\nchanging a line of the "
        "selection algorithm."
    )


if __name__ == "__main__":
    main()
