#!/usr/bin/env python3
"""Heterogeneous clients: one content item, many devices, many chains.

The paper's introduction motivates the whole framework with client
diversity: "Clients range from a small single-task audio player to a
complex, multi-task, multi-function desktop computer."  This example
serves the same stored content to four very different devices over one
shared proxy infrastructure and prints the chain, configuration, and
satisfaction the framework picks for each — plus what happens as the
population of proxies shrinks (resilience through re-composition).

Run:
    python examples/heterogeneous_devices.py
"""

from repro import (
    ContentProfile,
    ContentVariant,
    Configuration,
    DeviceProfile,
    FormatRegistry,
    MediaType,
    NetworkTopology,
    ServiceCatalog,
    ServiceDescriptor,
    ServicePlacement,
    UserProfile,
)
from repro.core.parameters import (
    COLOR_DEPTH,
    FRAME_RATE,
    RESOLUTION,
    ContinuousDomain,
    DiscreteDomain,
    Parameter,
    ParameterSet,
)
from repro.core.satisfaction import LinearSatisfaction
from repro.core.selection import QoSPathSelector
from repro.workloads.scenario import Scenario

QVGA = 320.0 * 240.0
QCIF = 176.0 * 144.0
VGA = 640.0 * 480.0


def build_infrastructure():
    registry = FormatRegistry()
    registry.define("mpeg2", MediaType.VIDEO, codec="mpeg2", compression_ratio=20.0)
    registry.define("mpeg4", MediaType.VIDEO, codec="mpeg4", compression_ratio=55.0)
    registry.define("h263", MediaType.VIDEO, codec="h263", compression_ratio=85.0)
    registry.define("mjpeg-gray", MediaType.VIDEO, codec="mjpeg", compression_ratio=30.0)

    topology = NetworkTopology()
    topology.node("origin")
    for proxy in ("p1", "p2", "p3"):
        topology.node(proxy)
    for client in ("desktop", "tablet", "phone", "kiosk"):
        topology.node(client)
    topology.link("origin", "p1", 40e6, delay_ms=4.0)
    topology.link("origin", "p2", 40e6, delay_ms=4.0)
    topology.link("p1", "p3", 15e6, delay_ms=6.0)
    topology.link("p2", "p3", 15e6, delay_ms=6.0)
    topology.link("p1", "desktop", 20e6, delay_ms=5.0)
    topology.link("p2", "tablet", 6e6, delay_ms=12.0)
    topology.link("p3", "phone", 0.8e6, delay_ms=35.0)
    topology.link("p3", "kiosk", 2.5e6, delay_ms=8.0)

    services = [
        ServiceDescriptor(
            service_id="mp4-encode@p1",
            input_formats=("mpeg2",),
            output_formats=("mpeg4",),
            cost=0.5,
        ),
        ServiceDescriptor(
            service_id="mp4-encode@p2",
            input_formats=("mpeg2",),
            output_formats=("mpeg4",),
            cost=0.5,
        ),
        ServiceDescriptor(
            service_id="mobilize@p3",
            input_formats=("mpeg4", "mpeg2"),
            output_formats=("h263",),
            output_caps={FRAME_RATE: 20.0, RESOLUTION: QCIF},
            cost=0.3,
        ),
        ServiceDescriptor(
            service_id="grayscale@p3",
            input_formats=("mpeg2", "mpeg4"),
            output_formats=("mjpeg-gray",),
            output_caps={COLOR_DEPTH: 8.0},
            cost=0.2,
        ),
    ]
    catalog = ServiceCatalog(services)
    placement = ServicePlacement(
        topology,
        {
            "mp4-encode@p1": "p1",
            "mp4-encode@p2": "p2",
            "mobilize@p3": "p3",
            "grayscale@p3": "p3",
        },
    )
    return registry, topology, catalog, placement


DEVICES = [
    DeviceProfile("desktop", decoders=["mpeg2", "mpeg4"], max_frame_rate=30.0),
    DeviceProfile(
        "tablet", decoders=["mpeg4"], max_frame_rate=30.0, max_resolution=QVGA
    ),
    DeviceProfile(
        "phone", decoders=["h263"], max_frame_rate=20.0, max_resolution=QCIF
    ),
    DeviceProfile(
        "kiosk",
        decoders=["mjpeg-gray"],
        max_frame_rate=15.0,
        max_color_depth=8.0,
    ),
]


def main() -> None:
    registry, topology, catalog, placement = build_infrastructure()
    parameters = ParameterSet(
        [
            Parameter(FRAME_RATE, "fps", ContinuousDomain(0.0, 30.0)),
            Parameter(RESOLUTION, "pixels", DiscreteDomain([QCIF, QVGA, VGA])),
            Parameter(COLOR_DEPTH, "bits", DiscreteDomain([8.0, 24.0])),
        ]
    )
    content = ContentProfile(
        content_id="keynote",
        variants=[
            ContentVariant(
                format=registry.get("mpeg2"),
                configuration=Configuration(
                    {FRAME_RATE: 30.0, RESOLUTION: VGA, COLOR_DEPTH: 24.0}
                ),
            )
        ],
    )
    user = UserProfile(
        user_id="viewer",
        satisfaction_functions={
            FRAME_RATE: LinearSatisfaction(1.0, 30.0),
            RESOLUTION: LinearSatisfaction(0.0, VGA),
        },
        budget=10.0,
    )

    print("One keynote stream, four devices:\n")
    for device in DEVICES:
        scenario = Scenario(
            name=device.device_id,
            registry=registry,
            parameters=parameters,
            catalog=catalog,
            topology=topology,
            placement=placement,
            content=content,
            device=device,
            user=user,
            sender_node="origin",
            receiver_node=device.device_id,
        )
        result = scenario.select()
        if not result.success:
            print(f"{device.device_id:<8} -> no feasible chain")
            continue
        config = result.configuration
        print(
            f"{device.device_id:<8} -> {' -> '.join(result.path):<52} "
            f"fps={config[FRAME_RATE]:5.2f} "
            f"px={int(config[RESOLUTION]):>6} "
            f"depth={int(config[COLOR_DEPTH]):>2}  "
            f"S={result.satisfaction:.3f}"
        )

    # Resilience: kill proxy p1's encoder; the phone's chain re-composes
    # through p2 without any client-visible configuration change.
    print("\nProxy p1's encoder goes offline...")
    catalog.remove("mp4-encode@p1")
    placement.unplace("mp4-encode@p1")
    phone = DEVICES[2]
    scenario = Scenario(
        name="phone-degraded",
        registry=registry,
        parameters=parameters,
        catalog=catalog,
        topology=topology,
        placement=placement,
        content=content,
        device=phone,
        user=user,
        sender_node="origin",
        receiver_node="phone",
    )
    result = scenario.select()
    graph = scenario.build_graph()
    print(
        f"phone    -> {' -> '.join(result.path)}  "
        f"S={result.satisfaction:.3f}  "
        f"(graph: {len(graph)} vertices, {graph.edge_count()} edges)"
    )


if __name__ == "__main__":
    main()
