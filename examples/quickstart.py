#!/usr/bin/env python3
"""Quickstart: reproduce the paper's worked example in a few lines.

Builds the Figure 6 scenario, runs the QoS path-selection algorithm, and
prints the regenerated Table 1 plus the selected chain — with and without
trans-coding service T7, exactly as the paper discusses.

Run:
    python examples/quickstart.py
"""

from repro import figure6_scenario


def main() -> None:
    # The paper's worked example: one sender, one receiver, twenty
    # trans-coding services spread over intermediary nodes.
    scenario = figure6_scenario()
    result = scenario.select()

    print("=" * 72)
    print("Figure 6 / Table 1 — QoS path selection, step by step")
    print("=" * 72)
    print(result.trace.render())
    print()
    print(f"selected chain:     {','.join(result.path)}")
    print(f"delivered quality:  {result.delivered_frame_rate:.2f} fps")
    print(f"user satisfaction:  {result.satisfaction:.4f} "
          f"(printed as {result.satisfaction:.2f} in the paper)")
    print(f"accumulated cost:   {result.accumulated_cost:.2f}")
    print(f"rounds run:         {result.rounds_run}")

    # The paper's Figure 6 also shows the selection without T7.
    without_t7 = figure6_scenario(include_t7=False).select()
    print()
    print("without trans-coding service T7:")
    print(f"  chain {','.join(without_t7.path)} at "
          f"{without_t7.satisfaction:.2f} satisfaction — losing T7 costs "
          f"{result.satisfaction - without_t7.satisfaction:.2f}")


if __name__ == "__main__":
    main()
