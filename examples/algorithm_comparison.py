#!/usr/bin/env python3
"""Algorithm comparison: the QoS greedy against the classic heuristics.

Section 4.4 positions the algorithm as shortest-path-like "except that the
optimization criterion is the user's satisfaction, and not the available
bandwidth or the number of hops".  This example makes the contrast
concrete: the greedy, exhaustive search, fewest-hops, widest-path,
cheapest-path, and a random walk all solve the same synthetic scenarios,
and a Markdown comparison table shows who delivered what.

Run:
    python examples/algorithm_comparison.py
"""

import time

from repro.core.baselines import (
    CheapestPathSelector,
    ExhaustiveSelector,
    FewestHopsSelector,
    RandomPathSelector,
    WidestPathSelector,
)
from repro.core.reporting import comparison_table
from repro.core.selection import QoSPathSelector
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

ALGORITHMS = (
    "QoS greedy (the paper)",
    "exhaustive optimum",
    "fewest hops",
    "widest path",
    "cheapest path",
    "random walk",
)


def solve(name, scenario, graph):
    args = (
        graph,
        scenario.registry,
        scenario.parameters,
        scenario.user.satisfaction(),
        scenario.user.budget,
    )
    if name == ALGORITHMS[0]:
        selector = QoSPathSelector.for_user(
            graph,
            scenario.registry,
            scenario.parameters,
            scenario.user,
            record_trace=False,
        )
    elif name == ALGORITHMS[1]:
        # Bounded enumeration keeps the demo snappy; the bound is far
        # above what these graphs need for the true optimum.
        selector = ExhaustiveSelector(*args, max_paths=8_000, max_hops=5)
    elif name == ALGORITHMS[2]:
        selector = FewestHopsSelector(*args)
    elif name == ALGORITHMS[3]:
        selector = WidestPathSelector(*args)
    elif name == ALGORITHMS[4]:
        selector = CheapestPathSelector(*args)
    else:
        selector = RandomPathSelector(*args, seed=1)
    start = time.perf_counter()
    result = selector.run()
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    return result, elapsed_ms


def main() -> None:
    # Seeds chosen so the heuristics genuinely diverge: on seed 0 the
    # fewest-hops and cheapest chains sacrifice satisfaction; on seed 1
    # the widest-path route carries fat pipes to the wrong place.
    for seed, size in ((0, 30), (1, 40)):
        scenario = generate_scenario(
            SyntheticConfig(seed=seed, n_services=size, n_nodes=max(8, size // 5))
        )
        graph = scenario.build_graph()
        print(f"\n## {scenario.description}")
        print(f"graph: {len(graph)} vertices, {graph.edge_count()} edges\n")
        entries = []
        for name in ALGORITHMS:
            result, elapsed_ms = solve(name, scenario, graph)
            entries.append(
                (
                    name,
                    f"{result.satisfaction:.4f}" if result.success else "FAIL",
                    ",".join(result.path) if result.success else "-",
                    f"{result.accumulated_cost:.2f}" if result.success else "-",
                    f"{elapsed_ms:.2f}",
                )
            )
        print(
            comparison_table(
                ("satisfaction", "path", "cost", "time (ms)"),
                entries,
                highlight_best=0,
            )
        )
    print(
        "\nThe greedy ties the exhaustive optimum at a fraction of the "
        "cost; heuristics\noptimizing hops/bandwidth/money leave "
        "satisfaction on the table whenever those\nproxies diverge from "
        "what the user actually cares about."
    )


if __name__ == "__main__":
    main()
