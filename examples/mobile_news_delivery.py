#!/usr/bin/env python3
"""Mobile news delivery: the paper's motivating scenario, end to end.

A news provider stores its evening bulletin in two high-quality variants.
A commuter's phone speaks only a mobile codec over a slow access link.
Intermediary proxies advertise trans-coding services through an SLP-style
directory; the framework discovers them, builds the adaptation graph,
selects the chain that maximizes the commuter's satisfaction within
her budget, and then actually streams the bulletin over the simulated
network.

Run:
    python examples/mobile_news_delivery.py
"""

from repro import (
    AdaptationSession,
    ContentProfile,
    ContentVariant,
    Configuration,
    DeviceProfile,
    FormatRegistry,
    MediaType,
    NetworkTopology,
    UserProfile,
)
from repro.core.parameters import (
    AUDIO_QUALITY,
    COLOR_DEPTH,
    FRAME_RATE,
    RESOLUTION,
    ContinuousDomain,
    DiscreteDomain,
    Parameter,
    ParameterSet,
)
from repro.core.satisfaction import LinearSatisfaction, StepSatisfaction
from repro.discovery.slp import DirectoryAgent, ServiceAgent, UserAgent
from repro.network.bandwidth import SinusoidalBandwidth
from repro.profiles.intermediary import merge_intermediaries
from repro.profiles.user import AdaptationPolicy
from repro.services.descriptor import ServiceDescriptor


def build_formats() -> FormatRegistry:
    registry = FormatRegistry()
    registry.define("mpeg2-hq", MediaType.VIDEO, codec="mpeg2", compression_ratio=20.0)
    registry.define("mpeg2-sd", MediaType.VIDEO, codec="mpeg2", compression_ratio=35.0)
    registry.define("mpeg4-asp", MediaType.VIDEO, codec="mpeg4", compression_ratio=60.0)
    registry.define("h263-mobile", MediaType.VIDEO, codec="h263", compression_ratio=90.0)
    return registry


def build_network() -> NetworkTopology:
    topology = NetworkTopology()
    topology.node("origin", cpu_mips=8000.0)
    topology.node("cdn-proxy", cpu_mips=4000.0)
    topology.node("carrier-gw", cpu_mips=2000.0)
    topology.node("phone", cpu_mips=200.0, memory_mb=128.0)
    topology.link("origin", "cdn-proxy", 50e6, delay_ms=8.0)
    topology.link("cdn-proxy", "carrier-gw", 20e6, delay_ms=12.0)
    topology.link("carrier-gw", "phone", 1.2e6, delay_ms=40.0, loss_rate=0.01)
    return topology


def advertise_services(topology: NetworkTopology):
    """Proxies announce their transcoders over the SLP directory."""
    directory = DirectoryAgent()
    cdn = ServiceAgent("cdn-proxy", directory)
    cdn.register(
        ServiceDescriptor(
            service_id="downscale",
            input_formats=("mpeg2-hq", "mpeg2-sd"),
            output_formats=("mpeg4-asp",),
            output_caps={RESOLUTION: 320.0 * 240.0},
            cost=0.4,
            cpu_factor=2.0,
        )
    )
    carrier = ServiceAgent("carrier-gw", directory)
    carrier.register(
        ServiceDescriptor(
            service_id="mobilize",
            input_formats=("mpeg4-asp", "mpeg2-sd"),
            output_formats=("h263-mobile",),
            output_caps={FRAME_RATE: 25.0, RESOLUTION: 176.0 * 144.0},
            cost=0.2,
            cpu_factor=1.2,
        )
    )
    # What can reach the phone?  Ask the directory like a client would.
    reply = UserAgent("phone", directory).find(output_format="h263-mobile")
    print("SLP lookup for h263-mobile producers:")
    for url in reply.urls:
        print(f"  {url}")
    return merge_intermediaries(
        directory.registry.intermediary_profiles(topology), topology
    )


def main() -> None:
    registry = build_formats()
    topology = build_network()
    catalog, placement = advertise_services(topology)

    parameters = ParameterSet(
        [
            Parameter(FRAME_RATE, "fps", ContinuousDomain(0.0, 30.0)),
            Parameter(
                RESOLUTION,
                "pixels",
                DiscreteDomain([176.0 * 144.0, 320.0 * 240.0, 640.0 * 480.0]),
            ),
            Parameter(COLOR_DEPTH, "bits", DiscreteDomain([24.0])),
            Parameter(AUDIO_QUALITY, "kbps", DiscreteDomain([0.0, 16.0, 32.0, 64.0])),
        ]
    )
    content = ContentProfile(
        content_id="evening-news",
        title="Evening News",
        variants=[
            ContentVariant(
                format=registry.get("mpeg2-hq"),
                configuration=Configuration(
                    {
                        FRAME_RATE: 30.0,
                        RESOLUTION: 640.0 * 480.0,
                        COLOR_DEPTH: 24.0,
                        AUDIO_QUALITY: 64.0,
                    }
                ),
                title="studio master",
            ),
            ContentVariant(
                format=registry.get("mpeg2-sd"),
                configuration=Configuration(
                    {
                        FRAME_RATE: 25.0,
                        RESOLUTION: 320.0 * 240.0,
                        COLOR_DEPTH: 24.0,
                        AUDIO_QUALITY: 32.0,
                    }
                ),
                title="sd mezzanine",
            ),
        ],
    )
    device = DeviceProfile(
        device_id="commuter-phone",
        decoders=["h263-mobile"],
        max_frame_rate=25.0,
        max_resolution=176.0 * 144.0,
        vendor="acme",
        model="pocket-2007",
    )
    # The commuter cares most about smooth motion, then audio; she will
    # sacrifice audio first when bandwidth runs out (the paper's policy
    # example) and pays at most one unit of money.
    user = UserProfile(
        user_id="commuter",
        satisfaction_functions={
            FRAME_RATE: LinearSatisfaction(5.0, 25.0),
            AUDIO_QUALITY: StepSatisfaction([(16.0, 0.6), (32.0, 1.0)]),
        },
        policies=[
            AdaptationPolicy(AUDIO_QUALITY, priority=0),
            AdaptationPolicy(FRAME_RATE, priority=1),
        ],
        budget=1.0,
    )

    session = AdaptationSession(
        registry=registry,
        parameters=parameters,
        catalog=catalog,
        placement=placement,
        content=content,
        device=device,
        user=user,
        sender_node="origin",
        receiver_node="phone",
    )
    plan = session.plan()
    print()
    print(f"pruning: {plan.pruning.summary()}")
    if not plan.success:
        print(f"no feasible chain: {plan.result.failure_reason}")
        return
    print(f"selected chain:    {','.join(plan.result.path)}")
    print(f"via formats:       {' -> '.join(plan.result.formats)}")
    print(f"planned config:    {plan.result.configuration!r}")
    print(f"satisfaction:      {plan.result.satisfaction:.4f}")
    print(f"cost:              {plan.result.accumulated_cost:.2f} "
          f"(budget {user.budget:.2f})")

    # Stream 30 seconds of the bulletin over a fluctuating carrier link.
    report = session.deliver(
        plan,
        duration_s=30.0,
        fluctuation=SinusoidalBandwidth(amplitude=0.35, period_s=13.0),
    )
    print()
    print("delivery report:")
    print(report.summary())


if __name__ == "__main__":
    main()
