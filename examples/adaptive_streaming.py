#!/usr/bin/env python3
"""Adaptive streaming: re-planning when the network turns against you.

The paper plans a chain against a bandwidth snapshot; real networks
fluctuate (Section 3's motivation for the network profile).  This example
streams the Figure 6 scenario while the winning chain's host (n7, running
T7) collapses mid-session, and shows the adaptive session detecting the
drop, re-running selection against the degraded topology, and switching to
the next-best chain — versus a stubborn session that keeps pushing frames
at a dead proxy.

Run:
    python examples/adaptive_streaming.py
"""

from repro import figure6_scenario
from repro.network.bandwidth import FluctuationModel
from repro.network.topology import Link
from repro.runtime.replanning import AdaptiveSession


class HostCollapse(FluctuationModel):
    """Every link touching one host drops to 5% capacity at ``at_s``."""

    def __init__(self, host: str, at_s: float) -> None:
        self.host = host
        self.at_s = at_s

    def factor(self, link: Link, time_s: float) -> float:
        if time_s >= self.at_s and self.host in link.endpoints():
            return 0.05
        return 1.0


def main() -> None:
    scenario = figure6_scenario()
    collapse = HostCollapse(host="n7", at_s=10.0)
    duration = 30.0

    print("Streaming the Figure 6 plan for 30 s; host n7 (running T7) "
          "collapses at t=10 s.\n")

    adaptive = AdaptiveSession(
        scenario, collapse, check_interval_s=1.0, replan_threshold=0.9
    ).run(duration_s=duration)

    print("adaptive session timeline:")
    for event in adaptive.events:
        print(f"  {event}")

    print("\nsegments:")
    for segment in adaptive.segments:
        print(
            f"  {segment.start_s:5.1f}s - {segment.end_s:5.1f}s  "
            f"{','.join(segment.path):<22} "
            f"planned S={segment.planned_satisfaction:.3f}  "
            f"observed S={segment.observed_satisfaction:.3f}"
        )

    stubborn = AdaptiveSession(
        scenario, collapse, check_interval_s=1.0, replan_threshold=0.01
    ).run(duration_s=duration)

    print()
    print(f"adaptive session:  avg observed satisfaction "
          f"{adaptive.average_observed_satisfaction():.3f} "
          f"({adaptive.replans} replan)")
    print(f"stubborn session:  avg observed satisfaction "
          f"{stubborn.average_observed_satisfaction():.3f} "
          f"(never replans)")
    gain = (
        adaptive.average_observed_satisfaction()
        - stubborn.average_observed_satisfaction()
    )
    print(f"\nre-planning recovered {gain:.3f} satisfaction — the "
          f"composition framework's resilience argument in action.")


if __name__ == "__main__":
    main()
