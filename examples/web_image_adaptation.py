#!/usr/bin/env python3
"""Web and image adaptation: the paper's introduction, reproduced.

Section 1 of the paper motivates service composition with two classic
web-adaptation cases.  This example runs both:

1. the 256-color JPEG photograph that must reach a 2-color e-ink badge —
   "carried out in two stages: the first stage covers converting 256-color
   to 2-color depth, and the second step converts jpeg format to gif
   format";
2. the HTML news page that must reach a WML-only WAP phone, with a direct
   converter competing against a lossy table-to-text composition.

Run:
    python examples/web_image_adaptation.py
"""

from repro.core.selection import build_chain
from repro.workloads.intro import html_to_wml_scenario, jpeg_to_gif_scenario


def show(result, scenario) -> None:
    print(f"  selected chain: {' -> '.join(result.path)}")
    print(f"  via formats:    {' -> '.join(result.formats)}")
    print(f"  configuration:  {result.configuration!r}")
    print(f"  satisfaction:   {result.satisfaction:.3f}   "
          f"cost: {result.accumulated_cost:.2f}")


def main() -> None:
    print("1. 256-color JPEG -> 2-color GIF (two-stage composition)\n")
    scenario = jpeg_to_gif_scenario(include_monolith=True)
    result = scenario.select()
    show(result, scenario)
    print(
        "\n  The monolithic jpeg256-to-gif2 converter exists but costs 3.0 "
        "against a\n  budget of 2.0 — the two simple 0.5-cost stages win, "
        "exactly the paper's\n  economic argument for composition."
    )

    # Actually run the image through the synthetic transcoders.
    chain = build_chain(scenario.build_graph(), result)
    photo = scenario.content.variant_for("jpeg-256c")
    delivered = chain.execute(photo, scenario.registry)
    print(f"\n  executed: {photo} -> {delivered} "
          f"(depth {delivered.configuration['color_depth']:.0f} bit)")

    print("\n" + "=" * 72)
    print("\n2. HTML news page -> WML phone\n")
    scenario = html_to_wml_scenario()
    result = scenario.select()
    print("with the direct converter available:")
    show(result, scenario)

    scenario.catalog.remove("html-to-wml")
    fallback = scenario.select()
    print("\nafter the direct converter goes away (fallback composition):")
    show(fallback, scenario)
    print(
        "\n  table-to-text strips the page to a quarter of its richness, "
        "so the\n  fallback chain delivers satisfaction "
        f"{fallback.satisfaction:.1f} instead of {result.satisfaction:.1f}."
    )


if __name__ == "__main__":
    main()
