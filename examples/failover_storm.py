#!/usr/bin/env python3
"""Failover storm: a thousand-session fleet rides out correlated faults.

The paper plans one session against one snapshot; a deployment is
hundreds of concurrent sessions sharing the same links while services
crash, routes degrade, and flash crowds arrive.  This example runs the
``failover-storm`` campaign on the discrete-event simulator: backbone
services crash in a staggered wave, the primary route collapses, and a
mid-route node blacks out — all in virtual time, with every admission,
interruption, and replan flowing through the paper's planner.

It then replays the identical configuration and checks the event-trace
digests match: the simulator's core guarantee that any run, however
chaotic, is exactly reproducible from (scenario, seed).

Run:
    python examples/failover_storm.py
"""

from repro.sim import SimulationRun, build_scenario, run_simulation

INTERESTING = ("fault", "interrupt", "replan", "replan-failed", "abandon")


def main() -> None:
    config = build_scenario("failover-storm", seed=3, sessions=60)
    print(
        f"Running the failover-storm campaign: {config.sessions} sessions, "
        f"{len(config.faults)} scheduled faults, seed {config.seed}.\n"
    )

    run = SimulationRun(config)
    report = run.execute()

    print("fault and replan timeline (first 20 events):")
    shown = 0
    for event in run.sim.trace:
        if event.category in INTERESTING:
            print(f"  {event}")
            shown += 1
            if shown >= 20:
                break

    print()
    print(report.summary())

    replay = run_simulation(build_scenario("failover-storm", seed=3, sessions=60))
    print()
    print(f"replay digest:     {replay.trace_digest}")
    print(
        "same seed, same digest: "
        f"{replay.trace_digest == report.trace_digest}"
    )


if __name__ == "__main__":
    main()
