#!/usr/bin/env python3
"""Gateway quickstart: boot the planning daemon and fire traffic at it.

The paper's architecture puts the composition planner inside an always-on
intermediary; this example runs that daemon for real.  It starts a
:class:`~repro.serve.gateway.PlanningGateway` on an ephemeral port, sends
one hand-rolled plan request to show the wire format, fires a seeded
open-loop Poisson burst through the load generator, hot-swaps the serving
scenario without dropping the daemon, and finally drains — printing the
same metrics document the ``/metrics`` endpoint serves.

Everything is in-process and stdlib-only; the HTTP on the wire is real.

Run:
    python examples/gateway_quickstart.py
"""

import asyncio
import json

from repro.serve import (
    GatewayConfig,
    LoadgenConfig,
    PlanningGateway,
    run_loadgen,
)
from repro.serve.http11 import read_response, render_request
from repro.serve.protocol import encode_payload
from repro.workloads.synthetic import SyntheticConfig, generate_scenario


async def one_request(port: int, payload: dict) -> dict:
    """A minimal hand-rolled client: one POST /plan round-trip."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        render_request("POST", "/plan", encode_payload(payload),
                       keep_alive=False)
    )
    await writer.drain()
    response = await read_response(reader)
    writer.close()
    await writer.wait_closed()
    return json.loads(response.body)


async def main() -> None:
    scenario = generate_scenario(
        SyntheticConfig(seed=7, n_services=12, n_formats=8, n_nodes=8)
    )
    gateway = PlanningGateway(scenario, GatewayConfig(port=0, workers=2))
    await gateway.start()
    print(f"gateway up on 127.0.0.1:{gateway.port} "
          f"(scenario {scenario.name!r}, generation {gateway.generation})\n")

    # --- one explicit request, to show the wire contract ---------------
    answer = await one_request(gateway.port, {"client": "quickstart",
                                              "deadline_ms": 1000})
    print("single plan response:")
    print(f"  status:        {answer['status']}")
    print(f"  path:          {','.join(answer['path'])}")
    print(f"  satisfaction:  {answer['satisfaction']:.4f}")
    print(f"  cache_hit:     {answer['cache_hit']}\n")

    # --- a seeded open-loop burst through the load generator -----------
    report = await run_loadgen(
        scenario,
        LoadgenConfig(port=gateway.port, requests=80, rate_per_s=400.0,
                      seed=3, distinct=8),
    )
    print("loadgen burst:")
    print(report.summary())
    print()

    # --- hot catalog swap: no restart, generation bumps -----------------
    replacement = generate_scenario(
        SyntheticConfig(seed=21, n_services=8, n_formats=6, n_nodes=5)
    )
    swap = gateway.swap_scenario(replacement)
    after = await one_request(gateway.port, {"client": "quickstart",
                                             "deadline_ms": 1000})
    print(f"hot swap installed {swap['scenario']!r}: generation "
          f"{swap['generation']}, {swap['invalidated']} cached plans "
          f"invalidated")
    print(f"next plan served from generation {after['generation']} "
          f"(cache_hit={after['cache_hit']})\n")

    # --- graceful drain --------------------------------------------------
    final = await gateway.drain()
    counters = final["metrics"]["counters"]
    print("drained cleanly; final counters:")
    print(f"  received {counters['received']}, planned {counters['planned']}, "
          f"shed {counters['shed_queue'] + counters['shed_rate']}, "
          f"reloads {counters['reloads']}")


if __name__ == "__main__":
    asyncio.run(main())
