"""Unit and property tests for ``repro.group`` (shared adaptation trees).

The load-bearing property (docs/ALGORITHM.md §9): every feasible class's
tree branch is *exactly* that class's standalone-optimal chain — same
path, formats, configuration, satisfaction — and every infeasible class
is an explicit fallback.  Prefix sharing may only merge identical chain
prefixes; it must never trade per-class quality for sharing.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.group import (
    GroupPlanner,
    GroupReceiver,
    GroupRequest,
    build_shared_tree,
)
from repro.network.reservations import BandwidthLedger
from repro.planner import BatchPlanner, PlanRequest, device_variants
from repro.profiles.device import DeviceProfile
from repro.workloads.synthetic import SyntheticConfig, generate_scenario


def _scenario(seed: int = 7):
    return generate_scenario(
        SyntheticConfig(seed=seed, n_services=10, n_formats=6, n_nodes=6)
    )


def _receivers(scenario, n_classes: int, sessions_each: int = 3):
    return tuple(
        GroupReceiver(
            class_id=f"class-{index}", device=device, sessions=sessions_each
        )
        for index, device in enumerate(
            device_variants(scenario.device, n_classes)
        )
    )


def _request(scenario, receivers) -> GroupRequest:
    return GroupRequest(
        content=scenario.content,
        user=scenario.user,
        sender_node=scenario.sender_node,
        receiver_node=scenario.receiver_node,
        receivers=receivers,
        context=scenario.context,
    )


def _standalone(scenario, planner: BatchPlanner, request, receiver):
    return planner.plan_uncached(
        PlanRequest(
            content=request.content,
            device=receiver.device,
            user=request.user,
            sender_node=request.sender_node,
            receiver_node=request.receiver_node,
            context=request.context,
        )
    ).result


def _brick(device_id: str = "brick") -> DeviceProfile:
    """A device no catalog can serve: its only decoder matches nothing."""
    return DeviceProfile(device_id=device_id, decoders=("no-such-codec",))


# ----------------------------------------------------------------------
# Request vocabulary
# ----------------------------------------------------------------------
class TestGroupRequest:
    def test_rejects_empty_receiver_set(self):
        scenario = _scenario()
        with pytest.raises(ValidationError):
            _request(scenario, ())

    def test_rejects_duplicate_class_ids(self):
        scenario = _scenario()
        variants = device_variants(scenario.device, 2)
        with pytest.raises(ValidationError, match="class"):
            _request(
                scenario,
                (
                    GroupReceiver(class_id="dup", device=variants[0]),
                    GroupReceiver(class_id="dup", device=variants[1]),
                ),
            )

    def test_rejects_duplicate_devices(self):
        scenario = _scenario()
        with pytest.raises(ValidationError, match="device"):
            _request(
                scenario,
                (
                    GroupReceiver(class_id="a", device=scenario.device),
                    GroupReceiver(class_id="b", device=scenario.device),
                ),
            )

    def test_rejects_nonpositive_sessions(self):
        scenario = _scenario()
        with pytest.raises(ValidationError):
            GroupReceiver(
                class_id="a", device=scenario.device, sessions=0
            )

    def test_total_sessions_sums_classes(self):
        scenario = _scenario()
        request = _request(scenario, _receivers(scenario, 4, sessions_each=5))
        assert request.total_sessions == 20


# ----------------------------------------------------------------------
# Tree structure
# ----------------------------------------------------------------------
class TestSharedTree:
    def test_identical_chains_share_every_edge(self):
        """Classes with byte-identical chains collapse to one leaf."""
        scenario = _scenario()
        planner = BatchPlanner.for_scenario(scenario)
        # Variants 0 and 8 have the same frame cap (i % 8), hence the
        # same configuration and chain.
        variants = device_variants(scenario.device, 9)
        request = _request(
            scenario,
            (
                GroupReceiver(class_id="a", device=variants[0]),
                GroupReceiver(class_id="b", device=variants[8]),
            ),
        )
        results = {
            r.class_id: _standalone(scenario, planner, request, r)
            for r in request.receivers
        }
        assert all(result.success for result in results.values())
        tree = build_shared_tree(
            results, {"a": 1, "b": 1}, planner.registry
        )
        assert tree.branch_count == 1
        assert tree.shared_edge_count == len(tree.edges)
        for edge in tree.edges:
            assert edge.classes == ("a", "b")

    def test_divergent_configurations_do_not_share(self):
        """Different delivered configurations must keep separate leaves."""
        scenario = _scenario()
        planner = BatchPlanner.for_scenario(scenario)
        variants = device_variants(scenario.device, 4)
        request = _request(
            scenario,
            tuple(
                GroupReceiver(class_id=f"c{i}", device=v)
                for i, v in enumerate(variants)
            ),
        )
        results = {
            r.class_id: _standalone(scenario, planner, request, r)
            for r in request.receivers
        }
        sessions = {r.class_id: 1 for r in request.receivers}
        tree = build_shared_tree(results, sessions, planner.registry)
        distinct_configs = {
            tuple(sorted(result.configuration.as_dict().items()))
            for result in results.values()
            if result.success
        }
        assert tree.branch_count == len(distinct_configs)

    def test_bandwidth_accounting(self):
        """tree <= per-session; savings is exactly the difference."""
        scenario = _scenario()
        planner = GroupPlanner.for_scenario(scenario)
        request = _request(scenario, _receivers(scenario, 6, sessions_each=4))
        tree = planner.plan(request).tree
        per_session = tree.per_session_bandwidth_bps()
        tree_bps = tree.tree_bandwidth_bps()
        assert tree_bps <= per_session
        assert tree.saved_bandwidth_bps() == pytest.approx(
            per_session - tree_bps
        )

    def test_digest_is_deterministic_and_sensitive(self):
        scenario = _scenario()
        planner = GroupPlanner.for_scenario(scenario)
        small = _request(scenario, _receivers(scenario, 3))
        large = _request(scenario, _receivers(scenario, 4))
        again = GroupPlanner.for_scenario(_scenario())
        assert (
            planner.plan(small).tree.digest()
            == again.plan(small).tree.digest()
        )
        assert (
            planner.plan(small).tree.digest()
            != planner.plan(large).tree.digest()
        )

    def test_all_infeasible_group_has_no_branches(self):
        scenario = _scenario()
        planner = GroupPlanner.for_scenario(scenario)
        request = _request(
            scenario, (GroupReceiver(class_id="x", device=_brick()),)
        )
        plan = planner.plan(request)
        assert not plan.success
        assert plan.tree.branches == ()
        assert [class_id for class_id, _ in plan.tree.fallbacks] == ["x"]
        assert plan.tree.tree_bandwidth_bps() == 0.0


# ----------------------------------------------------------------------
# The satisfaction-equivalence property (ISSUE acceptance gate)
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=40),
    n_classes=st.integers(min_value=1, max_value=12),
    sessions_each=st.integers(min_value=1, max_value=9),
    add_brick=st.booleans(),
)
def test_branches_equal_standalone_optimal(
    seed, n_classes, sessions_each, add_brick
):
    """Every branch == its class's standalone optimum; the rest fall back.

    Whenever prefix sharing holds (i.e. the class is feasible at all),
    the branch must be satisfaction-equivalent — in fact chain-identical
    — to planning that class alone; infeasible classes surface as
    explicit fallbacks carrying a reason, never as silently degraded
    branches.
    """
    scenario = _scenario(seed)
    receivers = list(_receivers(scenario, n_classes, sessions_each))
    if add_brick:
        receivers.append(GroupReceiver(class_id="zz-brick", device=_brick()))
    request = _request(scenario, tuple(receivers))

    planner = GroupPlanner.for_scenario(scenario)
    plan = planner.plan(request)
    baseline = BatchPlanner.for_scenario(scenario)

    branches = {branch.class_id: branch for branch in plan.tree.branches}
    fallbacks = dict(plan.tree.fallbacks)
    for receiver in request.receivers:
        standalone = _standalone(scenario, baseline, request, receiver)
        if standalone.success:
            branch = branches[receiver.class_id]
            assert branch.result.path == standalone.path
            assert branch.result.formats == standalone.formats
            assert branch.satisfaction == standalone.satisfaction
            assert branch.sessions == receiver.sessions
            assert receiver.class_id not in fallbacks
        else:
            assert receiver.class_id in fallbacks
            assert fallbacks[receiver.class_id]
            assert receiver.class_id not in branches
    assert set(branches) | set(fallbacks) == {
        receiver.class_id for receiver in request.receivers
    }


# ----------------------------------------------------------------------
# Tree cache and fingerprints
# ----------------------------------------------------------------------
class TestGroupPlannerCache:
    def test_repeat_group_hits_tree_cache(self):
        scenario = _scenario()
        planner = GroupPlanner.for_scenario(scenario)
        request = _request(scenario, _receivers(scenario, 4))
        first, hit_first = planner.plan_with_cache_info(request)
        second, hit_second = planner.plan_with_cache_info(request)
        assert not hit_first
        assert hit_second
        assert second is first

    def test_receiver_order_is_canonicalized(self):
        scenario = _scenario()
        planner = GroupPlanner.for_scenario(scenario)
        receivers = _receivers(scenario, 3)
        forward = _request(scenario, receivers)
        backward = _request(scenario, tuple(reversed(receivers)))
        assert (
            planner.fingerprint(forward).digest
            == planner.fingerprint(backward).digest
        )
        planner.plan(forward)
        _, hit = planner.plan_with_cache_info(backward)
        assert hit

    def test_session_count_changes_the_fingerprint(self):
        scenario = _scenario()
        planner = GroupPlanner.for_scenario(scenario)
        light = _request(scenario, _receivers(scenario, 3, sessions_each=1))
        heavy = _request(scenario, _receivers(scenario, 3, sessions_each=5))
        assert (
            planner.fingerprint(light).digest
            != planner.fingerprint(heavy).digest
        )

    def test_world_mutation_invalidates_the_tree(self):
        scenario = _scenario()
        planner = GroupPlanner.for_scenario(scenario)
        request = _request(scenario, _receivers(scenario, 3))
        planner.plan(request)
        scenario.catalog.remove(scenario.catalog.ids()[-1])
        _, hit = planner.plan_with_cache_info(request)
        assert not hit

    def test_plan_uncached_matches_cached(self):
        scenario = _scenario()
        planner = GroupPlanner.for_scenario(scenario)
        request = _request(scenario, _receivers(scenario, 5))
        assert (
            planner.plan(request).tree.digest()
            == planner.plan_uncached(request).tree.digest()
        )


# ----------------------------------------------------------------------
# Tree reservation
# ----------------------------------------------------------------------
class TestGroupReservation:
    def test_reserves_once_per_edge_and_releases_clean(self):
        scenario = _scenario()
        ledger = BandwidthLedger(scenario.topology)
        planner = GroupPlanner.for_scenario(scenario)
        request = _request(scenario, _receivers(scenario, 2, sessions_each=4))
        plan = planner.plan(request)
        taken = planner.reserve(
            plan, ledger, request.sender_node, request.receiver_node
        )
        assert len(taken) == len(plan.tree.edges)
        for reservation in taken:
            ledger.release(reservation)
        assert len(ledger) == 0

    def test_reserving_an_empty_tree_is_an_error(self):
        scenario = _scenario()
        ledger = BandwidthLedger(scenario.topology)
        planner = GroupPlanner.for_scenario(scenario)
        request = _request(
            scenario, (GroupReceiver(class_id="x", device=_brick()),)
        )
        plan = planner.plan(request)
        with pytest.raises(ValidationError):
            planner.reserve(
                plan, ledger, request.sender_node, request.receiver_node
            )
