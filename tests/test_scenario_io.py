"""Tests for whole-scenario persistence."""

from __future__ import annotations

import json

import pytest

from repro.errors import ValidationError
from repro.workloads.intro import html_to_wml_scenario, jpeg_to_gif_scenario
from repro.workloads.io import (
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.workloads.paper import figure3_scenario, figure6_scenario
from repro.workloads.synthetic import SyntheticConfig, generate_scenario


def roundtrip(scenario):
    data = scenario_to_dict(scenario)
    data = json.loads(json.dumps(data))  # force JSON compatibility
    return scenario_from_dict(data)


SCENARIO_BUILDERS = {
    "figure6": figure6_scenario,
    "figure3": figure3_scenario,
    "jpeg": jpeg_to_gif_scenario,
    "wml": html_to_wml_scenario,
    "synthetic": lambda: generate_scenario(SyntheticConfig(seed=11, n_services=14)),
}


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(SCENARIO_BUILDERS))
    def test_structure_survives(self, name):
        original = SCENARIO_BUILDERS[name]()
        rebuilt = roundtrip(original)
        assert rebuilt.name == original.name
        assert rebuilt.catalog.ids() == original.catalog.ids()
        assert sorted(rebuilt.registry.names()) == sorted(original.registry.names())
        assert rebuilt.placement.as_dict() == original.placement.as_dict()
        assert rebuilt.parameters.names() == original.parameters.names()
        assert len(rebuilt.topology.links()) == len(original.topology.links())

    @pytest.mark.parametrize("name", sorted(SCENARIO_BUILDERS))
    def test_selection_identical_after_round_trip(self, name):
        """The acid test: the rebuilt scenario makes the same decision."""
        original = SCENARIO_BUILDERS[name]()
        rebuilt = roundtrip(original)
        a = original.select(record_trace=False)
        b = rebuilt.select(record_trace=False)
        assert a.success == b.success
        if a.success:
            assert a.path == b.path
            assert a.satisfaction == pytest.approx(b.satisfaction)

    def test_table1_survives_persistence(self, tmp_path):
        """Even the cell-exact Table 1 trace reproduces from a saved
        file."""
        from repro.workloads.paper import table1_expected_rows

        path = save_scenario(figure6_scenario(), tmp_path / "figure6.json")
        rebuilt = load_scenario(path)
        result = rebuilt.select()
        for row, expected in zip(result.trace.rounds, table1_expected_rows()):
            assert row.selected == expected["selected"]
            assert row.displayed_satisfaction() == expected["satisfaction"]


class TestFileLayer:
    def test_save_and_load(self, tmp_path):
        scenario = jpeg_to_gif_scenario()
        path = save_scenario(scenario, tmp_path / "scenario.json")
        assert path.exists()
        rebuilt = load_scenario(path)
        assert rebuilt.name == scenario.name

    def test_saved_file_is_json(self, tmp_path):
        path = save_scenario(figure3_scenario(), tmp_path / "s.json")
        data = json.loads(path.read_text())
        assert data["document"] == "repro-scenario"
        assert data["version"] == 1

    def test_malformed_file_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValidationError):
            load_scenario(bad)

    def test_wrong_document_rejected(self):
        with pytest.raises(ValidationError):
            scenario_from_dict({"document": "shopping-list"})

    def test_wrong_version_rejected(self):
        with pytest.raises(ValidationError):
            scenario_from_dict({"document": "repro-scenario", "version": 99})

    def test_context_round_trips(self):
        from repro.profiles.context import ContextProfile
        from repro.workloads.scenario import Scenario

        base = figure6_scenario()
        with_context = Scenario(
            **{
                **base.__dict__,
                "context": ContextProfile(activity="meeting", noise_level_db=70.0),
            }
        )
        rebuilt = roundtrip(with_context)
        assert rebuilt.context is not None
        assert rebuilt.context.activity == "meeting"
        assert rebuilt.context.noise_level_db == 70.0
