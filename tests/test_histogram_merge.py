"""Property-based tests (hypothesis) on histogram merging.

The cluster supervisor's merged ``/metrics`` is only honest if merging
per-worker histograms reproduces the histogram a single process would
have built from the same observations.  These properties pin that:
merging any partition of an observation stream equals the whole-stream
histogram bucket-for-bucket, merge is associative and commutative, and
the JSON round-trip the supervisor actually performs (``to_dict`` →
``from_dict`` → ``merge``) loses nothing.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.runtime.metrics import Histogram, merge_histogram_dicts
from repro.serve.metrics import LATENCY_BUCKETS_MS, SATISFACTION_BUCKETS

#: Observations spanning underflow, every bucket, and overflow.
observations = st.lists(
    st.floats(min_value=0.0, max_value=5000.0,
              allow_nan=False, allow_infinity=False),
    max_size=200,
)


def build(values, bounds=LATENCY_BUCKETS_MS) -> Histogram:
    histogram = Histogram(bounds)
    for value in values:
        histogram.observe(value)
    return histogram


class TestMergeProperties:
    @given(values=observations, split=st.integers(min_value=0, max_value=200))
    @settings(max_examples=50, deadline=None)
    def test_merge_of_any_split_equals_the_whole(self, values, split):
        cut = min(split, len(values))
        whole = build(values)
        merged = build(values[:cut]).merge(build(values[cut:]))
        assert merged == whole
        assert merged.to_dict()["counts"] == whole.to_dict()["counts"]

    @given(
        a=observations, b=observations, c=observations
    )
    @settings(max_examples=30, deadline=None)
    def test_merge_is_associative_and_commutative(self, a, b, c):
        ha, hb, hc = build(a), build(b), build(c)
        assert ha.merge(hb).merge(hc) == ha.merge(hb.merge(hc))
        assert ha.merge(hb) == hb.merge(ha)

    @given(values=observations)
    @settings(max_examples=30, deadline=None)
    def test_merge_with_empty_is_identity(self, values):
        histogram = build(values)
        assert histogram.merge(Histogram(LATENCY_BUCKETS_MS)) == histogram

    @given(values=observations)
    @settings(max_examples=30, deadline=None)
    def test_json_round_trip_is_lossless(self, values):
        # to_dict rounds the running sum to 1e-6, so the wire form — not
        # the in-memory float — is the fixed point: parsing a document
        # and re-exporting it must reproduce it byte-for-byte.
        document = build(values).to_dict()
        assert Histogram.from_dict(document).to_dict() == document

    @given(
        values=observations,
        parts=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_merge_histogram_dicts_matches_whole_stream(self, values, parts):
        # The supervisor's actual code path: workers export dicts, the
        # parent merges the exports.  Bucket contents must match the
        # whole-stream histogram exactly; the running sum only up to the
        # per-export rounding (to_dict rounds each worker's sum to 1e-6).
        chunks = [values[i::parts] for i in range(parts)]
        documents = [build(chunk).to_dict() for chunk in chunks]
        merged = merge_histogram_dicts(documents)
        whole = build(values).to_dict()
        assert merged["bounds"] == whole["bounds"]
        assert merged["counts"] == whole["counts"]
        assert merged["count"] == whole["count"]
        assert merged["sum"] == pytest.approx(whole["sum"], abs=1e-4)


class TestMergeValidation:
    def test_bounds_mismatch_refuses_rather_than_rebuckets(self):
        with pytest.raises(ValidationError):
            Histogram(LATENCY_BUCKETS_MS).merge(Histogram(SATISFACTION_BUCKETS))

    def test_merge_with_non_histogram_refuses(self):
        with pytest.raises(ValidationError):
            Histogram(LATENCY_BUCKETS_MS).merge({"counts": []})

    def test_merge_zero_documents_refuses(self):
        with pytest.raises(ValidationError):
            merge_histogram_dicts([])

    def test_from_dict_rejects_corrupt_documents(self):
        good = build([1.0, 10.0, 100.0]).to_dict()
        for corruption in (
            {**good, "counts": good["counts"][:-1]},          # array mismatch
            {**good, "counts": [*good["counts"][:-1], -1]},   # negative count
            {**good, "counts": [*good["counts"][:-1], 1.5]},  # float count
            {**good, "count": good["count"] + 1},             # count disagrees
            {**good, "sum": "lots"},                          # non-numeric sum
            {**good, "bounds": "ascending"},                  # bounds not a list
            {**good, "bounds": list(reversed(good["bounds"]))},
        ):
            with pytest.raises(ValidationError):
                Histogram.from_dict(corruption)

    def test_quantile_domain_is_validated(self):
        histogram = build([1.0, 2.0, 3.0])
        with pytest.raises(ValidationError):
            histogram.quantile(0.0)
        with pytest.raises(ValidationError):
            histogram.quantile(1.5)
