"""Unit tests for service descriptors, transcoders, catalogs, and chains."""

from __future__ import annotations

import pytest

from repro.core.configuration import Configuration
from repro.core.parameters import COLOR_DEPTH, FRAME_RATE, RESOLUTION
from repro.errors import ChainValidationError, UnknownServiceError, ValidationError
from repro.formats.format import MediaFormat
from repro.formats.registry import FormatRegistry
from repro.formats.variants import ContentVariant
from repro.services.catalog import ServiceCatalog, service_sort_key
from repro.services.chains import AdaptationChain, ChainHop, chain_from_services
from repro.services.descriptor import (
    ServiceDescriptor,
    ServiceKind,
    receiver_descriptor,
    sender_descriptor,
)
from repro.services.transcoder import SyntheticTranscoder


def transcoder_descriptor(service_id="T1", inputs=("F1",), outputs=("F2",), **kwargs):
    return ServiceDescriptor(
        service_id=service_id,
        input_formats=inputs,
        output_formats=outputs,
        **kwargs,
    )


class TestServiceDescriptor:
    def test_transcoder_needs_both_sides(self):
        with pytest.raises(ValidationError):
            ServiceDescriptor(service_id="T1", input_formats=("F1",))
        with pytest.raises(ValidationError):
            ServiceDescriptor(service_id="T1", output_formats=("F1",))

    def test_sender_has_only_outputs(self):
        sender = sender_descriptor("s", ("F1",))
        assert sender.is_sender
        with pytest.raises(ValidationError):
            ServiceDescriptor(
                service_id="s",
                input_formats=("F0",),
                output_formats=("F1",),
                kind=ServiceKind.SENDER,
            )

    def test_receiver_has_only_inputs(self):
        receiver = receiver_descriptor("r", ("F1",), {FRAME_RATE: 15.0})
        assert receiver.is_receiver
        assert receiver.output_caps[FRAME_RATE] == 15.0
        with pytest.raises(ValidationError):
            ServiceDescriptor(
                service_id="r",
                input_formats=("F0",),
                output_formats=("F1",),
                kind=ServiceKind.RECEIVER,
            )

    def test_negative_cost_rejected(self):
        with pytest.raises(ValidationError):
            transcoder_descriptor(cost=-1.0)

    def test_negative_cap_rejected(self):
        with pytest.raises(ValidationError):
            transcoder_descriptor(output_caps={FRAME_RATE: -5.0})

    def test_accepts_and_produces(self):
        descriptor = transcoder_descriptor(inputs=("F1", "F2"), outputs=("F3",))
        assert descriptor.accepts("F2")
        assert not descriptor.accepts("F3")
        assert descriptor.produces("F3")
        assert not descriptor.produces("F1")

    def test_can_follow_and_matching_formats(self):
        upstream = transcoder_descriptor("up", ("F0",), ("F1", "F2"))
        downstream = transcoder_descriptor("down", ("F2", "F9"), ("F3",))
        assert downstream.can_follow(upstream)
        assert downstream.matching_formats(upstream) == ("F2",)
        unrelated = transcoder_descriptor("x", ("F7",), ("F8",))
        assert not unrelated.can_follow(upstream)

    def test_cpu_required_scales_with_rate(self):
        descriptor = transcoder_descriptor(cpu_factor=2.0)
        assert descriptor.cpu_required(1e6) == pytest.approx(2.0)
        assert descriptor.cpu_required(5e5) == pytest.approx(1.0)
        with pytest.raises(ValidationError):
            descriptor.cpu_required(-1.0)


class TestSyntheticTranscoder:
    def _setup(self):
        registry = FormatRegistry()
        registry.define("F1", compression_ratio=10.0)
        registry.define("F2", compression_ratio=20.0)
        descriptor = transcoder_descriptor(
            outputs=("F2",), output_caps={FRAME_RATE: 15.0}
        )
        variant = ContentVariant(
            format=registry.get("F1"),
            configuration=Configuration(
                {FRAME_RATE: 30.0, RESOLUTION: 1000.0, COLOR_DEPTH: 24.0}
            ),
        )
        return registry, descriptor, variant

    def test_transcode_caps_and_reformats(self):
        registry, descriptor, variant = self._setup()
        result = SyntheticTranscoder(descriptor, registry).transcode(variant, "F2")
        assert result.output.format.name == "F2"
        assert result.output.configuration[FRAME_RATE] == 15.0
        assert result.output.configuration[RESOLUTION] == 1000.0

    def test_transcode_quality_never_increases(self):
        registry, descriptor, variant = self._setup()
        result = SyntheticTranscoder(descriptor, registry).transcode(variant, "F2")
        assert variant.configuration.dominates(result.output.configuration)

    def test_rejects_wrong_input_format(self):
        registry, descriptor, _ = self._setup()
        wrong = ContentVariant(
            format=registry.get("F2"),
            configuration=Configuration({FRAME_RATE: 10.0}),
        )
        with pytest.raises(ChainValidationError):
            SyntheticTranscoder(descriptor, registry).transcode(wrong, "F2")

    def test_rejects_unknown_output_format(self):
        registry, descriptor, variant = self._setup()
        with pytest.raises(ChainValidationError):
            SyntheticTranscoder(descriptor, registry).transcode(variant, "F9")

    def test_default_output_when_unambiguous(self):
        registry, descriptor, variant = self._setup()
        result = SyntheticTranscoder(descriptor, registry).transcode(variant)
        assert result.output.format.name == "F2"

    def test_ambiguous_default_output_rejected(self):
        registry, _, variant = self._setup()
        registry.define("F3")
        multi = transcoder_descriptor(outputs=("F2", "F3"))
        with pytest.raises(ChainValidationError):
            SyntheticTranscoder(multi, registry).transcode(variant)

    def test_only_transcoders_are_executable(self):
        registry, _, _ = self._setup()
        with pytest.raises(ValidationError):
            SyntheticTranscoder(sender_descriptor("s", ("F1",)), registry)

    def test_reports_resource_use(self):
        registry, descriptor, variant = self._setup()
        result = SyntheticTranscoder(descriptor, registry).transcode(variant, "F2")
        assert result.cpu_mips > 0
        assert result.memory_mb == descriptor.memory_mb


class TestServiceSortKey:
    def test_numeric_suffixes_sort_numerically(self):
        ids = ["T10", "T2", "T1", "T20"]
        assert sorted(ids, key=service_sort_key) == ["T1", "T2", "T10", "T20"]

    def test_mixed_ids(self):
        ids = ["receiver", "T2", "sender", "T10"]
        ordered = sorted(ids, key=service_sort_key)
        assert ordered.index("T2") < ordered.index("T10")


class TestServiceCatalog:
    def _catalog(self):
        return ServiceCatalog(
            [
                transcoder_descriptor("T1", ("F0",), ("F1",)),
                transcoder_descriptor("T10", ("F1",), ("F2",)),
                transcoder_descriptor("T2", ("F0", "F1"), ("F3",)),
            ]
        )

    def test_natural_order(self):
        assert self._catalog().ids() == ["T1", "T2", "T10"]

    def test_lookup_and_contains(self):
        catalog = self._catalog()
        assert catalog.get("T10").service_id == "T10"
        assert "T2" in catalog
        with pytest.raises(UnknownServiceError):
            catalog.get("T99")

    def test_duplicate_rejected_unless_replace(self):
        catalog = self._catalog()
        with pytest.raises(ValidationError):
            catalog.add(transcoder_descriptor("T1", ("F9",), ("F8",)))
        catalog.add(transcoder_descriptor("T1", ("F9",), ("F8",)), replace=True)
        assert catalog.get("T1").input_formats == ("F9",)

    def test_remove(self):
        catalog = self._catalog()
        catalog.remove("T1")
        assert "T1" not in catalog
        with pytest.raises(UnknownServiceError):
            catalog.remove("T1")

    def test_format_queries(self):
        catalog = self._catalog()
        assert [s.service_id for s in catalog.accepting("F1")] == ["T2", "T10"]
        assert [s.service_id for s in catalog.producing("F1")] == ["T1"]

    def test_successors_of(self):
        catalog = self._catalog()
        t1 = catalog.get("T1")
        assert [s.service_id for s in catalog.successors_of(t1)] == ["T2", "T10"]

    def test_find_endpoints(self):
        catalog = self._catalog()
        assert catalog.find_sender() is None
        catalog.add(sender_descriptor("sender", ("F0",)))
        catalog.add(receiver_descriptor("receiver", ("F3",)))
        assert catalog.find_sender().service_id == "sender"
        assert catalog.find_receiver().service_id == "receiver"


class TestAdaptationChain:
    def _pieces(self):
        registry = FormatRegistry()
        for name, ratio in (("F0", 10.0), ("F1", 12.0), ("F2", 20.0)):
            registry.define(name, compression_ratio=ratio)
        sender = sender_descriptor("sender", ("F0",))
        t1 = transcoder_descriptor("T1", ("F0",), ("F1",), output_caps={FRAME_RATE: 20.0})
        t2 = transcoder_descriptor("T2", ("F1",), ("F2",))
        receiver = receiver_descriptor("receiver", ("F2",), {FRAME_RATE: 15.0})
        return registry, sender, t1, t2, receiver

    def test_valid_chain(self):
        registry, sender, t1, t2, receiver = self._pieces()
        chain = chain_from_services([sender, t1, t2, receiver], ["F0", "F1", "F2"])
        assert chain.service_ids() == ["sender", "T1", "T2", "receiver"]
        assert chain.formats() == ["F0", "F1", "F2"]
        assert str(chain) == "sender,T1,T2,receiver"

    def test_format_mismatch_rejected(self):
        _, sender, t1, t2, receiver = self._pieces()
        with pytest.raises(ChainValidationError):
            chain_from_services([sender, t2, receiver], ["F0", "F2"])

    def test_repeated_format_rejected(self):
        _, sender, t1, _, receiver = self._pieces()
        loopback = transcoder_descriptor("L", ("F1",), ("F0",))
        acceptor = transcoder_descriptor("A", ("F0",), ("F2",))
        with pytest.raises(ChainValidationError) as exc:
            chain_from_services(
                [sender, t1, loopback, acceptor, receiver],
                ["F0", "F1", "F0", "F2"],
            )
        assert "distinct-format" in str(exc.value)

    def test_repeated_service_rejected(self):
        registry, sender, t1, t2, receiver = self._pieces()
        # Craft a would-be chain that revisits T1 (needs a fake format loop,
        # so build hops directly with strict=False semantics).
        hops = [
            ChainHop(sender, None),
            ChainHop(t1, "F0"),
            ChainHop(t1, "F0"),
        ]
        with pytest.raises(ChainValidationError):
            AdaptationChain(hops, strict=False)

    def test_strict_requires_endpoints(self):
        _, sender, t1, t2, receiver = self._pieces()
        with pytest.raises(ChainValidationError):
            chain_from_services([t1, t2], ["F1"])
        # Non-strict allows partial chains.
        chain = chain_from_services([t1, t2], ["F1"], strict=False)
        assert chain.service_ids() == ["T1", "T2"]

    def test_too_short_rejected(self):
        _, sender, *_ = self._pieces()
        with pytest.raises(ChainValidationError):
            AdaptationChain([ChainHop(sender, None)])

    def test_total_cost_sums_services(self):
        _, sender, t1, t2, receiver = self._pieces()
        chain = chain_from_services([sender, t1, t2, receiver], ["F0", "F1", "F2"])
        assert chain.total_cost() == pytest.approx(t1.cost + t2.cost)

    def test_execute_applies_caps_along_the_way(self):
        registry, sender, t1, t2, receiver = self._pieces()
        chain = chain_from_services([sender, t1, t2, receiver], ["F0", "F1", "F2"])
        variant = ContentVariant(
            format=registry.get("F0"),
            configuration=Configuration(
                {FRAME_RATE: 30.0, RESOLUTION: 1000.0, COLOR_DEPTH: 24.0}
            ),
        )
        delivered = chain.execute(variant, registry)
        assert delivered.format.name == "F2"
        # T1 capped to 20, then the receiver's rendering cap to 15.
        assert delivered.configuration[FRAME_RATE] == 15.0

    def test_execute_rejects_wrong_entry_format(self):
        registry, sender, t1, t2, receiver = self._pieces()
        chain = chain_from_services([sender, t1, t2, receiver], ["F0", "F1", "F2"])
        wrong = ContentVariant(
            format=registry.get("F1"),
            configuration=Configuration({FRAME_RATE: 30.0}),
        )
        with pytest.raises(ChainValidationError):
            chain.execute(wrong, registry)

    def test_transcoder_hops(self):
        _, sender, t1, t2, receiver = self._pieces()
        chain = chain_from_services([sender, t1, t2, receiver], ["F0", "F1", "F2"])
        assert [h.service.service_id for h in chain.transcoder_hops()] == ["T1", "T2"]
