"""Tests for the scenario linter."""

from __future__ import annotations

import pytest

from repro.core.configuration import Configuration
from repro.core.parameters import FRAME_RATE
from repro.formats.format import MediaFormat
from repro.formats.variants import ContentVariant
from repro.profiles.content import ContentProfile
from repro.profiles.device import DeviceProfile
from repro.services.descriptor import ServiceDescriptor
from repro.workloads.intro import jpeg_to_gif_scenario
from repro.workloads.lint import Severity, lint_scenario
from repro.workloads.paper import figure3_scenario, figure6_scenario
from repro.workloads.synthetic import SyntheticConfig, generate_scenario


def errors(findings):
    return [f for f in findings if f.severity is Severity.ERROR]


def warnings(findings):
    return [f for f in findings if f.severity is Severity.WARNING]


class TestCleanScenarios:
    @pytest.mark.parametrize(
        "builder",
        [figure6_scenario, figure3_scenario, jpeg_to_gif_scenario],
        ids=["figure6", "figure3", "jpeg"],
    )
    def test_paper_scenarios_have_no_errors(self, builder):
        findings = lint_scenario(builder())
        assert errors(findings) == []

    def test_figure6_warnings_name_the_dead_ends(self):
        findings = lint_scenario(figure6_scenario())
        subjects = {f.subject for f in warnings(findings)}
        # T9 and T15 produce formats nobody consumes — genuine warnings.
        assert "T9" in subjects
        assert "T15" in subjects

    def test_synthetic_scenarios_have_no_errors(self):
        for seed in range(3):
            scenario = generate_scenario(SyntheticConfig(seed=seed))
            assert errors(lint_scenario(scenario)) == []


class TestBrokenScenarios:
    def _broken(self, mutate):
        scenario = jpeg_to_gif_scenario()
        mutate(scenario)
        return lint_scenario(scenario)

    def test_unregistered_service_format(self):
        def mutate(scenario):
            scenario.catalog.add(
                ServiceDescriptor(
                    service_id="ghost",
                    input_formats=("no-such-format",),
                    output_formats=("gif-2c",),
                )
            )
            scenario.placement.place("ghost", "proxy")

        findings = self._broken(mutate)
        assert any(
            f.subject == "ghost" and "unregistered" in f.message
            for f in errors(findings)
        )

    def test_unplaced_service_warns(self):
        def mutate(scenario):
            scenario.catalog.add(
                ServiceDescriptor(
                    service_id="floating",
                    input_formats=("jpeg-256c",),
                    output_formats=("gif-2c",),
                )
            )

        findings = self._broken(mutate)
        assert any(
            f.subject == "floating" and "unplaced" in f.message
            for f in warnings(findings)
        )

    def test_placement_on_unknown_node(self):
        def mutate(scenario):
            scenario.placement._node_of["color-reduce"] = "atlantis"

        findings = self._broken(mutate)
        assert any("atlantis" in f.message for f in errors(findings))

    def test_unknown_endpoint_node(self):
        def mutate(scenario):
            scenario.sender_node = "nowhere"

        findings = self._broken(mutate)
        assert any(f.subject == "sender_node" for f in errors(findings))

    def test_unknown_preference_parameter(self):
        def mutate(scenario):
            from repro.core.satisfaction import LinearSatisfaction
            from repro.profiles.user import UserProfile

            scenario.user = UserProfile(
                user_id="confused",
                satisfaction_functions={"smellovision": LinearSatisfaction(0, 1)},
            )

        findings = self._broken(mutate)
        assert any("smellovision" in f.message for f in errors(findings))

    def test_undecodable_device_warns(self):
        def mutate(scenario):
            scenario.registry.define("exotic")
            scenario.device = DeviceProfile(
                device_id="alien", decoders=["exotic"]
            )

        findings = self._broken(mutate)
        assert any(
            "selection will FAIL" in f.message for f in warnings(findings)
        )

    def test_configuration_with_unknown_parameter(self):
        def mutate(scenario):
            fmt = scenario.registry.get("jpeg-256c")
            scenario.content = ContentProfile(
                content_id="weird",
                variants=[
                    ContentVariant(
                        format=fmt,
                        configuration=Configuration({"sharpness": 5.0}),
                    )
                ],
            )

        findings = self._broken(mutate)
        assert any("sharpness" in f.message for f in errors(findings))

    def test_finding_renders_readably(self):
        findings = self._broken(
            lambda scenario: setattr(scenario, "sender_node", "nowhere")
        )
        text = str(errors(findings)[0])
        assert text.startswith("[error]")
        assert "sender_node" in text
