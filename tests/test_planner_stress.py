"""Concurrency stress tests: shared cache and shared reservation table.

Many threads hammer one :class:`PlanCache` and one
:class:`BandwidthLedger`; afterwards the books must balance exactly:

- cache: lookups = hits + misses, misses = distinct fingerprints
  (single-flight: no duplicate computation), and every caller of the same
  fingerprint got the *same* plan object (no torn entries);
- ledger: per-link reserved bandwidth equals the sum over active
  reservations, no link exceeds capacity, and releasing everything drains
  the table to zero.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.network.reservations import BandwidthLedger
from repro.planner import BatchPlanner, PlanCache, synthetic_requests
from repro.runtime.admission import AdmissionController
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

N_THREADS = 16


def _scenario(seed=7):
    return generate_scenario(
        SyntheticConfig(seed=seed, n_services=12, n_formats=8, n_nodes=8)
    )


def test_concurrent_cache_is_single_flight_and_untorn():
    scenario = _scenario()
    cache = PlanCache(max_entries=256)
    planner = BatchPlanner.for_scenario(scenario, cache=cache)
    n_distinct = 8
    requests = synthetic_requests(scenario, 25 * N_THREADS, n_distinct)
    barrier = threading.Barrier(N_THREADS)
    per_thread = len(requests) // N_THREADS

    def worker(thread_index):
        barrier.wait()  # maximize contention on the first misses
        chunk = requests[thread_index * per_thread:(thread_index + 1) * per_thread]
        return [(planner.fingerprint(r), planner.plan(r)) for r in chunk]

    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        results = list(pool.map(worker, range(N_THREADS)))

    by_fingerprint = {}
    total = 0
    for chunk in results:
        for fingerprint, plan in chunk:
            total += 1
            by_fingerprint.setdefault(fingerprint, []).append(plan)
    assert total == len(requests)
    assert len(by_fingerprint) == n_distinct
    # No torn entries: every caller of a fingerprint saw one object.
    for plans in by_fingerprint.values():
        assert all(plan is plans[0] for plan in plans)
        assert plans[0].success
    stats = cache.stats
    # planner.plan() accounts one hit or miss per call; single-flight
    # means exactly one miss (one computation) per distinct fingerprint.
    assert stats.hits + stats.misses == total
    assert stats.misses == n_distinct
    assert stats.entries == n_distinct


def test_concurrent_admission_never_oversubscribes_links():
    scenario = _scenario(seed=11)
    controller = AdmissionController(
        registry=scenario.registry,
        parameters=scenario.parameters,
        catalog=scenario.catalog,
        placement=scenario.placement,
    )

    def admit(_):
        return controller.admit(
            content=scenario.content,
            device=scenario.device,
            user=scenario.user,
            sender_node=scenario.sender_node,
            receiver_node=scenario.receiver_node,
        )

    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        admitted = [s for s in pool.map(admit, range(3 * N_THREADS)) if s]

    assert admitted, "stress scenario admitted nothing; rebalance the config"
    assert len(controller.active_sessions()) == len(admitted)

    ledger = controller.ledger
    # Per-link accounting: reserved == sum of active claims, and no claim
    # pushed a link past its capacity (the 1e-9 slack absorbs exact fits).
    expected = {}
    for session in admitted:
        for reservation in session.reservations:
            for link_key in reservation.links():
                expected[link_key] = (
                    expected.get(link_key, 0.0) + reservation.bandwidth_bps
                )
    for (a, b), demand in expected.items():
        assert abs(ledger.reserved_on(a, b) - demand) < 1e-6
        capacity = scenario.topology.get_link(a, b).bandwidth_bps
        assert demand <= capacity * (1.0 + 1e-6)

    # Duplicate-reservation check: every reservation id is unique.
    ids = [
        r.reservation_id for s in admitted for r in s.reservations
    ]
    assert len(ids) == len(set(ids))

    assert controller.teardown_all() == len(admitted)
    assert len(ledger) == 0
    for a, b in expected:
        assert ledger.reserved_on(a, b) == 0.0


def test_concurrent_reserve_release_keeps_ledger_consistent():
    scenario = _scenario(seed=3)
    ledger = BandwidthLedger(scenario.topology)
    link = scenario.topology.links()[0]
    route = [link.a, link.b]
    slice_bps = link.bandwidth_bps / (4 * N_THREADS)
    failures = []

    def churn(_):
        local = []
        for _ in range(20):
            try:
                local.append(ledger.reserve(route, slice_bps))
            except Exception as exc:  # over-capacity under contention is legal
                failures.append(exc)
            if len(local) >= 2:
                ledger.release(local.pop(0))
        for reservation in local:
            ledger.release(reservation)

    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        list(pool.map(churn, range(N_THREADS)))

    # Whatever interleaving happened, full release drains the link.
    assert len(ledger) == 0
    assert ledger.reserved_on(link.a, link.b) == 0.0
    assert ledger.residual(link.a, link.b) == link.bandwidth_bps


def test_deterministic_plans_across_thread_counts():
    scenario = _scenario(seed=5)
    requests = synthetic_requests(scenario, 24, 6)

    def run(workers):
        planner = BatchPlanner.for_scenario(
            scenario, cache=PlanCache(), max_workers=workers
        )
        return [
            (
                plan.result.path,
                plan.result.formats,
                plan.result.satisfaction,
            )
            for plan in planner.plan_batch(requests)
        ]

    assert run(1) == run(4) == run(16)
