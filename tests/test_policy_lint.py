"""Linter and CLI-contract tests for policy documents.

The CLI contract mirrors the scenario linter: findings print one per
line, errors exit 1, clean documents exit 0, and unreadable/malformed
inputs exit 2 with a single ``error:`` line.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.policy import (
    Decodes,
    DeviceIn,
    FormatIn,
    PolicyDocument,
    PolicyRule,
    save_policy,
)
from repro.policy.lint import lint_policy
from repro.workloads.lint import Severity, lint_scenario
from repro.workloads.io import save_scenario
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

SCENARIO = generate_scenario(
    SyntheticConfig(seed=5, n_services=10, n_formats=6, n_nodes=6)
)


def run_cli(*argv: str):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestLintPolicy:
    def test_clean_document(self):
        document = PolicyDocument(
            name="ok",
            rules=(PolicyRule(rule_id="skip", action="skip",
                              predicates=(Decodes("G0"),)),),
        )
        assert lint_policy(document) == []

    def test_empty_document_warns(self):
        findings = lint_policy(PolicyDocument(name="empty"))
        assert len(findings) == 1
        assert findings[0].severity is Severity.WARNING
        assert "no rules" in findings[0].message

    def test_rules_after_catch_all_deny_are_unreachable(self):
        document = PolicyDocument(
            name="d",
            rules=(
                PolicyRule(rule_id="wall", action="deny"),
                PolicyRule(rule_id="later", action="skip"),
            ),
        )
        findings = lint_policy(document)
        errors = [f for f in findings if f.severity is Severity.ERROR]
        assert errors  # both the reachability and overlap checks fire here
        assert all("unreachable" in f.message for f in errors)
        assert any("wall" in f.message for f in errors)

    def test_skip_catch_all_does_not_block(self):
        # A skip may fall through its soundness check, so rules after a
        # catch-all skip still matter.
        document = PolicyDocument(
            name="d",
            rules=(
                PolicyRule(rule_id="try-skip", action="skip"),
                PolicyRule(rule_id="later", action="deny"),
            ),
        )
        assert not any(
            f.severity is Severity.ERROR for f in lint_policy(document)
        )

    def test_identical_predicates_overlap(self):
        predicates = (DeviceIn(("tv-1",)),)
        document = PolicyDocument(
            name="d",
            rules=(
                PolicyRule(rule_id="first", action="skip",
                           predicates=predicates),
                PolicyRule(rule_id="second", action="deny",
                           predicates=predicates),
            ),
        )
        findings = lint_policy(document)
        assert any("overlaps" in f.message for f in findings)

    def test_identical_predicates_after_deny_are_an_error(self):
        predicates = (DeviceIn(("tv-1",)),)
        document = PolicyDocument(
            name="d",
            rules=(
                PolicyRule(rule_id="first", action="deny",
                           predicates=predicates),
                PolicyRule(rule_id="second", action="skip",
                           predicates=predicates),
            ),
        )
        findings = lint_policy(document)
        assert any(
            f.severity is Severity.ERROR and "unreachable" in f.message
            for f in findings
        )

    def test_scenario_aware_checks(self):
        document = PolicyDocument(
            name="d",
            rules=(
                PolicyRule(rule_id="pin", action="force_tier", tier="hw"),
                PolicyRule(rule_id="ghost", action="skip",
                           predicates=(FormatIn(("no-such-format",)),)),
            ),
        )
        findings = lint_policy(document, scenario=SCENARIO)
        messages = [f.message for f in findings]
        # The seed-5 scenario has no hw-tier siblings...
        assert any("no transcoder" in m for m in messages)
        # ...and the format name is unknown to its registry.
        assert any("no-such-format" in m for m in messages)

    def test_scenario_with_embedded_policy_is_linted(self):
        scenario = generate_scenario(
            SyntheticConfig(seed=5, n_services=10, n_formats=6, n_nodes=6)
        )
        scenario.policy = PolicyDocument(
            name="embedded",
            rules=(
                PolicyRule(rule_id="wall", action="deny"),
                PolicyRule(rule_id="later", action="skip"),
            ),
        )
        findings = lint_scenario(scenario)
        assert any("unreachable" in f.message for f in findings)


class TestLintCli:
    def _write_policy(self, tmp_path, document):
        return str(save_policy(document, tmp_path / "policy.json"))

    def test_clean_policy_exits_zero(self, tmp_path):
        path = self._write_policy(
            tmp_path,
            PolicyDocument(
                name="clean",
                rules=(PolicyRule(rule_id="skip", action="skip",
                                  predicates=(Decodes("G0"),)),),
            ),
        )
        code, text = run_cli("lint", "--policy", path)
        assert code == 0
        assert "clean" in text

    def test_error_findings_exit_one(self, tmp_path):
        path = self._write_policy(
            tmp_path,
            PolicyDocument(
                name="broken",
                rules=(
                    PolicyRule(rule_id="wall", action="deny"),
                    PolicyRule(rule_id="later", action="skip"),
                ),
            ),
        )
        code, text = run_cli("lint", "--policy", path)
        assert code == 1
        assert "unreachable" in text

    def test_unknown_action_is_one_line_exit_two(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "document": "repro-policy", "version": 1, "name": "x",
            "rules": [{"rule_id": "r", "action": "frobnicate"}],
        }), encoding="utf-8")
        code, text = run_cli("lint", "--policy", str(path))
        assert code == 2
        assert text.startswith("error:")
        assert "frobnicate" in text
        assert len(text.strip().splitlines()) == 1

    def test_malformed_json_is_one_line_exit_two(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        code, text = run_cli("lint", "--policy", str(path))
        assert code == 2
        assert text.startswith("error:")

    def test_no_inputs_is_exit_two(self):
        code, text = run_cli("lint")
        assert code == 2
        assert "error" in text

    def test_scenario_and_policy_cross_checked(self, tmp_path):
        scenario_path = tmp_path / "scenario.json"
        save_scenario(SCENARIO, scenario_path)
        policy_path = self._write_policy(
            tmp_path,
            PolicyDocument(
                name="pins",
                rules=(PolicyRule(rule_id="pin", action="force_tier",
                                  tier="hw"),),
            ),
        )
        code, text = run_cli("lint", str(scenario_path),
                             "--policy", policy_path)
        # hw tier absent from the seed-5 catalog -> warning, exit 0.
        assert code == 0
        assert "no transcoder" in text
