"""Tests for mid-session re-planning (the adaptive extension)."""

from __future__ import annotations

import pytest

from repro.errors import NoPathError, ValidationError
from repro.network.bandwidth import ConstantBandwidth, FluctuationModel
from repro.network.topology import Link
from repro.runtime.replanning import AdaptiveSession, ReplanReport, StreamSegment
from repro.workloads.paper import figure6_scenario
from repro.workloads.synthetic import SyntheticConfig, generate_scenario


class StepDrop(FluctuationModel):
    """Full bandwidth until ``at_s``, then ``drop_to`` on selected links."""

    def __init__(self, at_s: float, drop_to: float, endpoints=None) -> None:
        self.at_s = at_s
        self.drop_to = drop_to
        self.endpoints = endpoints  # None = every link

    def _affects(self, link: Link) -> bool:
        if self.endpoints is None:
            return True
        return set(link.endpoints()) in self.endpoints

    def factor(self, link: Link, time_s: float) -> float:
        if time_s >= self.at_s and self._affects(link):
            return self.drop_to
        return 1.0


class TestAdaptiveSessionBasics:
    def test_constant_bandwidth_never_replans(self, fig6):
        session = AdaptiveSession(fig6, ConstantBandwidth(), check_interval_s=1.0)
        report = session.run(duration_s=10.0)
        assert report.replans == 0
        assert len(report.segments) == 1
        assert report.segments[0].path == ("sender", "T7", "receiver")
        assert report.average_observed_satisfaction() == pytest.approx(
            19.75 / 30.0, abs=1e-6
        )

    def test_validation(self, fig6):
        with pytest.raises(ValidationError):
            AdaptiveSession(fig6, ConstantBandwidth(), check_interval_s=0.0)
        with pytest.raises(ValidationError):
            AdaptiveSession(fig6, ConstantBandwidth(), replan_threshold=0.0)
        session = AdaptiveSession(fig6, ConstantBandwidth())
        with pytest.raises(ValidationError):
            session.run(duration_s=0.0)

    def test_infeasible_start_raises(self):
        scenario = figure6_scenario(budget=0.0)
        session = AdaptiveSession(scenario, ConstantBandwidth())
        with pytest.raises(NoPathError):
            session.run(duration_s=5.0)


class TestReplanOnDrop:
    def test_t7_link_collapse_triggers_switch(self, fig6):
        """When T7's host degrades at t=5 (both its links collapse), the
        session re-plans onto the next best chain (via T8)."""
        drop = StepDrop(at_s=5.0, drop_to=0.05, endpoints=[{"n7", "nr"}, {"ns", "n7"}])
        session = AdaptiveSession(
            fig6, drop, check_interval_s=1.0, replan_threshold=0.9
        )
        report = session.run(duration_s=12.0)
        assert report.replans == 1
        chains = report.chains_used()
        assert chains[0] == ("sender", "T7", "receiver")
        assert chains[1] == ("sender", "T8", "receiver")
        # The switch happened at the first check after the drop.
        assert report.segments[0].end_s == pytest.approx(5.0)

    def test_switch_restores_satisfaction(self, fig6):
        drop = StepDrop(at_s=5.0, drop_to=0.05, endpoints=[{"n7", "nr"}, {"ns", "n7"}])
        adaptive = AdaptiveSession(
            fig6, drop, check_interval_s=1.0, replan_threshold=0.9
        )
        report = adaptive.run(duration_s=20.0)
        final = report.segments[-1]
        # The T8 chain delivers 16 fps -> 0.533 under the unchanged links.
        assert final.planned_satisfaction == pytest.approx(16.0 / 30.0, abs=1e-6)

        # Without re-planning, the observed satisfaction stays collapsed.
        stuck = AdaptiveSession(
            fig6, drop, check_interval_s=1.0, replan_threshold=0.01
        )
        stuck_report = stuck.run(duration_s=20.0)
        assert stuck_report.replans == 0
        assert (
            report.average_observed_satisfaction()
            > stuck_report.average_observed_satisfaction()
        )

    def test_global_collapse_has_nothing_better(self, fig6):
        """If every link degrades equally there is nothing better to
        switch to — the replan attempts fail and the session stays on the
        (still best) original chain, recording the degraded reality."""
        drop = StepDrop(at_s=3.0, drop_to=0.5)  # everything halves
        session = AdaptiveSession(
            fig6, drop, check_interval_s=1.0, replan_threshold=0.9
        )
        report = session.run(duration_s=8.0)
        assert report.failed_replans >= 1
        assert report.replans == 0
        final = report.segments[-1]
        assert final.path == ("sender", "T7", "receiver")
        # The time-weighted observation reflects the halved bandwidth.
        assert report.average_observed_satisfaction() < 19.75 / 30.0 - 0.05

    def test_events_tell_the_story(self, fig6):
        drop = StepDrop(at_s=5.0, drop_to=0.05, endpoints=[{"n7", "nr"}, {"ns", "n7"}])
        session = AdaptiveSession(
            fig6, drop, check_interval_s=1.0, replan_threshold=0.9
        )
        report = session.run(duration_s=8.0)
        categories = [event.category for event in report.events]
        assert categories[0] == "plan"
        assert "degraded" in categories
        assert "replan" in categories
        assert categories[-1] == "done"


class TestNoFeasibleAlternative:
    def test_total_link_death_never_raises(self, fig6):
        """Every link dies mid-stream and nothing is feasible: the session
        must keep running, record the failures, and finish degraded — an
        uncaught exception here would kill a live deployment loop."""
        drop = StepDrop(at_s=3.0, drop_to=0.0)
        session = AdaptiveSession(
            fig6, drop, check_interval_s=1.0, replan_threshold=0.9
        )
        report = session.run(duration_s=8.0)  # must not raise
        assert report.replans == 0
        assert report.failed_replans >= 5
        # Still on the original chain, but observing the dead network.
        assert report.segments[-1].path == ("sender", "T7", "receiver")
        assert report.average_observed_satisfaction() < 0.3
        categories = [event.category for event in report.events]
        assert "degraded" in categories
        assert "replan-failed" in categories
        assert categories[-1] == "done"

    def test_total_link_death_on_synthetic(self):
        scenario = generate_scenario(SyntheticConfig(seed=4, n_services=15))
        drop = StepDrop(at_s=2.0, drop_to=0.0)
        session = AdaptiveSession(
            scenario, drop, check_interval_s=1.0, replan_threshold=0.9
        )
        report = session.run(duration_s=6.0)  # must not raise
        assert report.failed_replans >= 1
        assert report.segments[-1].end_s == pytest.approx(6.0)


class TestSnapshot:
    def test_snapshot_scales_bandwidths(self, fig6):
        drop = StepDrop(at_s=0.0, drop_to=0.25)
        session = AdaptiveSession(fig6, drop)
        snapshot = session.snapshot_topology(1.0)
        original = fig6.topology
        for link in original.links():
            scaled = snapshot.get_link(link.a, link.b)
            assert scaled.bandwidth_bps == pytest.approx(link.bandwidth_bps * 0.25)
            assert scaled.delay_ms == link.delay_ms

    def test_plan_at_uses_snapshot(self, fig6):
        drop = StepDrop(at_s=0.0, drop_to=0.05, endpoints=[{"n7", "nr"}, {"ns", "n7"}])
        session = AdaptiveSession(fig6, drop)
        result = session.plan_at(1.0)
        # With T7's host degraded from the start, the plan goes straight
        # to T8.
        assert result.path == ("sender", "T8", "receiver")


class TestReportAccounting:
    def test_segments_cover_the_session(self, fig6):
        drop = StepDrop(at_s=4.0, drop_to=0.05, endpoints=[{"n7", "nr"}, {"ns", "n7"}])
        session = AdaptiveSession(
            fig6, drop, check_interval_s=1.0, replan_threshold=0.9
        )
        duration = 10.0
        report = session.run(duration_s=duration)
        assert report.segments[0].start_s == 0.0
        assert report.segments[-1].end_s == pytest.approx(duration)
        for earlier, later in zip(report.segments, report.segments[1:]):
            assert earlier.end_s == pytest.approx(later.start_s)

    def test_average_of_empty_report_is_zero(self):
        assert ReplanReport().average_observed_satisfaction() == 0.0

    def test_on_synthetic_scenarios(self):
        scenario = generate_scenario(SyntheticConfig(seed=4, n_services=15))
        drop = StepDrop(at_s=3.0, drop_to=0.3)
        session = AdaptiveSession(
            scenario, drop, check_interval_s=1.0, replan_threshold=0.85
        )
        report = session.run(duration_s=8.0)
        assert report.segments
        assert report.segments[-1].end_s == pytest.approx(8.0)
