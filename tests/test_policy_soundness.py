"""Property tests: the policy skip fast path is sound vs the selector.

A ``skip`` decision answers with a zero-hop plan *instead of* running
the QoS selector, so its one obligation is an inequality: the zero-hop
satisfaction must be within the rule's declared tolerance of whatever
the selector would have found on the same scenario.  Hypothesis drives
randomly generated worlds (seeded synthetic scenarios, optional
source-decoder augmentation, arbitrary tolerances) through the engine
and checks that inequality against the real selector every time a skip
fires.  Falling through is always allowed — only firing can be wrong.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.planner.batch import PlanRequest
from repro.policy import Decodes, PolicyDocument, PolicyRule, PolicyEngine
from repro.profiles.device import DeviceProfile
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

TOLERANCE_SLACK = 1e-9  # float-comparison headroom, not extra tolerance


def _world(seed, add_source_decoder):
    """A small scenario; optionally let the device decode the source."""
    scenario = generate_scenario(
        SyntheticConfig(seed=seed, n_services=8, n_formats=5, n_nodes=5)
    )
    source = scenario.content.format_names()[0]
    if add_source_decoder and not scenario.device.can_decode(source):
        base = scenario.device
        scenario.device = DeviceProfile(
            device_id=f"{base.device_id}-native",
            decoders=[source] + [d for d in base.decoders if d != source],
            max_resolution=base.max_resolution,
            max_color_depth=base.max_color_depth,
            max_frame_rate=base.max_frame_rate,
        )
    return scenario, source


def _request(scenario):
    return PlanRequest(
        content=scenario.content,
        device=scenario.device,
        user=scenario.user,
        sender_node=scenario.sender_node,
        receiver_node=scenario.receiver_node,
    )


def _assert_sound(scenario, decision, tolerance):
    """Every fired skip must beat the real selector within tolerance."""
    plan = decision.plan
    assert plan is not None and plan.success
    assert plan.result.path == ("sender", "receiver")
    assert plan.result.accumulated_cost == 0.0
    assert len(plan.result.formats) == 1
    assert scenario.device.can_decode(plan.result.formats[0])
    selector = scenario.select(record_trace=False)
    if selector.success:
        assert (
            plan.result.satisfaction
            >= selector.satisfaction - tolerance - TOLERANCE_SLACK
        )


class TestSkipSoundness:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        add_source_decoder=st.booleans(),
        tolerance=st.floats(min_value=0.0, max_value=0.3),
    )
    @settings(max_examples=40, deadline=None)
    def test_catch_all_skip_never_beats_its_bound(
        self, seed, add_source_decoder, tolerance
    ):
        scenario, _source = _world(seed, add_source_decoder)
        engine = PolicyEngine(
            PolicyDocument(
                name="catch-all",
                rules=(
                    PolicyRule(
                        rule_id="skip-all", action="skip", tolerance=tolerance
                    ),
                ),
            )
        )
        decision = engine.evaluate(_request(scenario))
        if decision.kind != "skip":
            return  # falling through to the selector is always sound
        _assert_sound(scenario, decision, tolerance)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        tolerance=st.floats(min_value=0.0, max_value=0.2),
    )
    @settings(max_examples=40, deadline=None)
    def test_decodes_gated_skip_is_sound_on_native_devices(
        self, seed, tolerance
    ):
        scenario, source = _world(seed, add_source_decoder=True)
        engine = PolicyEngine(
            PolicyDocument(
                name="native",
                rules=(
                    PolicyRule(
                        rule_id="skip-native",
                        action="skip",
                        predicates=(Decodes(source),),
                        tolerance=tolerance,
                    ),
                ),
            )
        )
        decision = engine.evaluate(_request(scenario))
        if decision.kind != "skip":
            return
        assert decision.rule_id == "skip-native"
        _assert_sound(scenario, decision, tolerance)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_decisions_are_deterministic_per_world(self, seed):
        scenario, _source = _world(seed, add_source_decoder=True)
        document = PolicyDocument(
            name="repeat",
            rules=(
                PolicyRule(rule_id="skip-all", action="skip", tolerance=0.05),
            ),
        )
        first = PolicyEngine(document).evaluate(_request(scenario))
        second = PolicyEngine(document).evaluate(_request(scenario))
        assert first.kind == second.kind
        if first.kind == "skip":
            assert first.plan.result == second.plan.result
