"""Tests for the Section-1 (introduction) example scenarios."""

from __future__ import annotations

import pytest

from repro.core.parameters import COLOR_DEPTH, RESOLUTION
from repro.core.selection import build_chain
from repro.formats.format import MediaType
from repro.workloads.intro import html_to_wml_scenario, jpeg_to_gif_scenario


class TestJpegToGif:
    def test_two_stage_composition_selected(self):
        """The paper's exact claim: the conversion 'can be carried out in
        two stages' — depth reduction then container conversion."""
        result = jpeg_to_gif_scenario().select()
        assert result.success
        assert result.path == (
            "sender",
            "color-reduce",
            "jpeg-to-gif",
            "receiver",
        )
        assert result.formats == ("jpeg-256c", "jpeg-2c", "gif-2c")

    def test_delivered_depth_is_two_color(self):
        result = jpeg_to_gif_scenario().select()
        assert result.configuration[COLOR_DEPTH] == 1.0  # 2 colors = 1 bit

    def test_device_resolution_cap_applies(self):
        scenario = jpeg_to_gif_scenario()
        result = scenario.select()
        assert result.configuration[RESOLUTION] <= 1024.0 * 768.0 / 4.0

    def test_full_user_satisfaction(self):
        """The badge owner's ideal (quarter resolution) is reachable."""
        result = jpeg_to_gif_scenario().select()
        assert result.satisfaction == pytest.approx(1.0)

    def test_monolith_out_of_budget(self):
        """The single-stage converter exists but costs more than the
        user's budget; composition wins on price."""
        scenario = jpeg_to_gif_scenario(include_monolith=True)
        assert "jpeg256-to-gif2" in scenario.catalog
        result = scenario.select()
        assert "jpeg256-to-gif2" not in result.path
        assert result.accumulated_cost <= scenario.user.budget

    def test_monolith_used_when_composition_is_gone(self):
        """Remove the two simple services and raise the budget: the
        monolith carries the conversion alone."""
        scenario = jpeg_to_gif_scenario(include_monolith=True)
        scenario.catalog.remove("color-reduce")
        scenario.catalog.remove("jpeg-to-gif")
        scenario.user.budget = 10.0
        result = scenario.select()
        assert result.success
        assert result.path == ("sender", "jpeg256-to-gif2", "receiver")

    def test_image_media_type_bandwidth_model(self):
        """Image formats stream one frame per second; the pager-class
        access link (64 kbit/s) must still carry the 2-color quarter-res
        GIF."""
        scenario = jpeg_to_gif_scenario()
        fmt = scenario.registry.get("gif-2c")
        assert fmt.media_type is MediaType.IMAGE
        result = scenario.select()
        bits = result.configuration.required_bandwidth(fmt)
        assert bits <= 64e3 * (1 + 1e-9)

    def test_chain_executes_end_to_end(self):
        scenario = jpeg_to_gif_scenario()
        result = scenario.select()
        chain = build_chain(scenario.build_graph(), result)
        delivered = chain.execute(
            scenario.content.variant_for("jpeg-256c"), scenario.registry
        )
        assert delivered.format.name == "gif-2c"
        assert delivered.configuration[COLOR_DEPTH] == 1.0


class TestHtmlToWml:
    def test_direct_converter_preferred(self):
        """The direct HTML->WML service keeps full page richness, so it
        beats the lossy table-to-text composition."""
        result = html_to_wml_scenario().select()
        assert result.success
        assert result.path == ("sender", "html-to-wml", "receiver")
        assert result.satisfaction == pytest.approx(1.0)

    def test_fallback_composition_when_direct_dies(self):
        scenario = html_to_wml_scenario()
        scenario.catalog.remove("html-to-wml")
        result = scenario.select()
        assert result.success
        assert result.path == (
            "sender",
            "table-to-text",
            "text-to-wml",
            "receiver",
        )
        # The table stripper caps richness at a quarter page -> 0.7 step.
        assert result.satisfaction == pytest.approx(0.7)

    def test_gsm_link_bounds_page_richness(self):
        """On a 9600 bps link a full 4000-char page (4000 bits/s in our
        text model) still fits; quadruple the page and it no longer
        does."""
        scenario = html_to_wml_scenario()
        fmt = scenario.registry.get("wml")
        result = scenario.select()
        assert result.configuration.required_bandwidth(fmt) <= 9600.0

    def test_text_media_type(self):
        scenario = html_to_wml_scenario()
        for name in ("html", "plain-text", "wml"):
            assert scenario.registry.get(name).media_type is MediaType.TEXT

    def test_exhaustive_agrees(self):
        from repro.core.baselines import ExhaustiveSelector

        scenario = html_to_wml_scenario()
        graph = scenario.build_graph()
        greedy = scenario.selector(graph=graph).run()
        optimum = ExhaustiveSelector(
            graph,
            scenario.registry,
            scenario.parameters,
            scenario.user.satisfaction(),
            scenario.user.budget,
        ).run()
        assert greedy.satisfaction == pytest.approx(optimum.satisfaction)
