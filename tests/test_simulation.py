"""End-to-end tests for the multi-session fault-injection simulator."""

from __future__ import annotations

import json

import pytest

from repro.errors import ValidationError
from repro.sim import (
    FlashCrowd,
    LinkDegradation,
    PoissonArrivals,
    RegionalOutage,
    ServiceCrash,
    SimulationConfig,
    SimulationRun,
    SimWorld,
    UniformArrivals,
    build_scenario,
    percentile,
    run_simulation,
    scenario_names,
)
from repro.sim.report import ABORTED, COMPLETED, REJECTED, TRUNCATED
from repro.workloads.synthetic import SyntheticConfig, generate_scenario


@pytest.fixture(scope="module")
def small_scenario():
    return generate_scenario(
        SyntheticConfig(seed=5, n_services=12, n_formats=8, n_nodes=8, extra_links=6)
    )


@pytest.fixture(scope="module")
def chain_scenario():
    """No extra decoders: every feasible chain runs through the backbone."""
    return generate_scenario(
        SyntheticConfig(
            seed=5,
            n_services=12,
            n_formats=8,
            n_nodes=8,
            extra_links=6,
            extra_decoders=0,
        )
    )


def small_config(small_scenario, **overrides):
    defaults = dict(
        scenario=small_scenario,
        name="test",
        seed=11,
        sessions=12,
        arrivals=UniformArrivals(over_s=20.0),
        session_duration_s=10.0,
        duration_jitter=0.2,
        segment_s=2.0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestDeterminism:
    def test_same_seed_same_digest_and_report(self, small_scenario):
        first = run_simulation(small_config(small_scenario))
        second = run_simulation(small_config(small_scenario))
        assert first.trace_digest == second.trace_digest
        assert first.to_dict() == second.to_dict()
        assert first.to_json() == second.to_json()

    def test_different_seed_different_trace(self, small_scenario):
        a = run_simulation(
            small_config(small_scenario, arrivals=PoissonArrivals(0.5), seed=1)
        )
        b = run_simulation(
            small_config(small_scenario, arrivals=PoissonArrivals(0.5), seed=2)
        )
        assert a.trace_digest != b.trace_digest

    def test_named_scenarios_deterministic(self):
        for name in scenario_names():
            r1 = run_simulation(build_scenario(name, seed=3, sessions=10))
            r2 = run_simulation(build_scenario(name, seed=3, sessions=10))
            assert r1.trace_digest == r2.trace_digest, name

    def test_faults_change_the_trace(self):
        with_faults = run_simulation(
            build_scenario("failover-storm", seed=3, sessions=10)
        )
        without = run_simulation(
            build_scenario("failover-storm", seed=3, sessions=10, faults=False)
        )
        assert with_faults.trace_digest != without.trace_digest


class TestSteadyState:
    def test_uncontended_sessions_complete(self, small_scenario):
        report = run_simulation(small_config(small_scenario, sessions=6))
        assert report.sessions == 6
        assert report.completed + report.rejected == 6
        assert report.completed >= 1
        for outcome in report.outcomes:
            if outcome.state == COMPLETED:
                assert outcome.mean_satisfaction > 0.0
                assert outcome.stall_s == 0.0

    def test_outcomes_sorted_by_session_id(self, small_scenario):
        report = run_simulation(small_config(small_scenario))
        ids = [o.session_id for o in report.outcomes]
        assert ids == sorted(ids)

    def test_contention_rejects_at_admission(self, small_scenario):
        # Cram everyone into the same instant: capacity runs out and the
        # ledger-aware admission path must reject the overflow, not crash.
        report = run_simulation(
            small_config(
                small_scenario,
                sessions=60,
                arrivals=UniformArrivals(over_s=0.0),
            )
        )
        assert report.sessions == 60
        assert report.rejected > 0
        assert report.admitted + report.rejected == 60


class TestFaults:
    def test_service_crash_interrupts_and_recovers(self, chain_scenario):
        # Crash every backbone service mid-stream: every chain runs
        # through them (the device only decodes the backbone's output), so
        # live sessions must interrupt, replan or stall, and the run must
        # finish without an exception.
        backbone = [
            d.service_id
            for d in chain_scenario.catalog
            if d.service_id.startswith("S")
        ]
        faults = tuple(
            ServiceCrash(sid, start_s=4.0, downtime_s=6.0) for sid in backbone
        )
        report = run_simulation(
            small_config(
                chain_scenario,
                sessions=8,
                arrivals=UniformArrivals(over_s=2.0),
                session_duration_s=20.0,
                faults=faults,
            )
        )
        assert report.sessions == 8
        interruptions = sum(o.interruptions for o in report.outcomes)
        assert interruptions > 0
        # Once the services recover, sessions that lasted long enough
        # rejoin and finish.
        assert report.total_replans > 0 or report.total_failed_replans > 0

    def test_no_feasible_alternative_degrades_gracefully(self, small_scenario):
        """Mid-stream total outage with no alternative: sessions must end
        as aborted/abandoned/rejected with recorded events — never an
        uncaught exception."""
        nodes = [
            n
            for n in small_scenario.topology.node_ids()
            if n not in (small_scenario.sender_node, small_scenario.receiver_node)
        ]
        faults = (RegionalOutage(nodes=nodes, start_s=3.0, duration_s=60.0),)
        report = run_simulation(
            small_config(
                small_scenario,
                sessions=6,
                arrivals=UniformArrivals(over_s=1.0),
                session_duration_s=15.0,
                abandon_after_stalls=2,
                faults=faults,
            )
        )
        assert report.sessions == 6
        for outcome in report.outcomes:
            assert outcome.state in (
                COMPLETED,
                ABORTED,
                REJECTED,
                TRUNCATED,
                "abandoned",
            )
        # The dead middle of the network shows up as failures, not crashes.
        assert (
            report.total_failed_replans
            + report.abandoned_count
            + report.aborted
            + report.rejected
            > 0
        )

    def test_link_degradation_restores(self, small_scenario):
        world_probe = SimWorld(small_scenario)
        link = small_scenario.topology.links()[0]
        config = small_config(
            small_scenario,
            sessions=4,
            faults=(
                LinkDegradation(
                    link.a, link.b, start_s=2.0, duration_s=5.0, factor=0.0
                ),
            ),
        )
        run = SimulationRun(config)
        run.execute()
        # After the fault window the overlay must be clean again.
        assert run.world.link_factor(link.a, link.b) == 1.0
        assert world_probe.link_factor(link.a, link.b) == 1.0

    def test_flash_crowd_adds_sessions(self, small_scenario):
        report = run_simulation(
            small_config(
                small_scenario,
                sessions=5,
                faults=(FlashCrowd(start_s=5.0, sessions=7, over_s=2.0),),
            )
        )
        assert report.sessions == 12

    def test_fault_validation(self):
        with pytest.raises(ValidationError):
            LinkDegradation("a", "b", start_s=0.0, duration_s=0.0)
        with pytest.raises(ValidationError):
            LinkDegradation("a", "b", start_s=0.0, duration_s=1.0, factor=2.0)
        with pytest.raises(ValidationError):
            ServiceCrash("S1", start_s=0.0, downtime_s=-1.0)
        with pytest.raises(ValidationError):
            RegionalOutage(nodes=[], start_s=0.0, duration_s=1.0)
        with pytest.raises(ValidationError):
            FlashCrowd(start_s=0.0, sessions=0)


class TestHorizonAndBounds:
    def test_horizon_truncates_live_sessions(self, small_scenario):
        report = run_simulation(
            small_config(
                small_scenario,
                sessions=6,
                arrivals=UniformArrivals(over_s=2.0),
                session_duration_s=30.0,
                horizon_s=8.0,
            )
        )
        truncated = [o for o in report.outcomes if o.state == TRUNCATED]
        assert truncated
        assert report.horizon_s <= 8.0 + 1e-6

    def test_trace_ring_buffer_still_digests(self, small_scenario):
        bounded = run_simulation(
            small_config(small_scenario, trace_capacity=4)
        )
        unbounded = run_simulation(small_config(small_scenario))
        assert bounded.trace_dropped > 0
        assert bounded.trace_digest == unbounded.trace_digest
        assert bounded.trace_events == unbounded.trace_events


class TestReportExports:
    def test_json_round_trip(self, small_scenario):
        report = run_simulation(small_config(small_scenario))
        payload = json.loads(report.to_json())
        assert payload["scenario"] == "test"
        assert payload["fleet"]["sessions"] == report.sessions
        assert len(payload["sessions"]) == report.sessions
        slim = json.loads(report.to_json(include_sessions=False))
        assert "sessions" not in slim

    def test_markdown_contains_fleet_metrics(self, small_scenario):
        report = run_simulation(small_config(small_scenario))
        text = report.to_markdown()
        assert "| sessions |" in text
        assert report.trace_digest in text

    def test_percentile(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50.0) == 50.0
        assert percentile(values, 99.0) == 99.0
        assert percentile(values, 100.0) == 100.0
        assert percentile([], 50.0) == 0.0
        with pytest.raises(ValueError):
            percentile(values, 0.0)


class TestConfigValidation:
    def test_bad_configs_raise(self, small_scenario):
        with pytest.raises(ValidationError):
            SimulationConfig(scenario=small_scenario, sessions=-1)
        with pytest.raises(ValidationError):
            SimulationConfig(scenario=small_scenario, device_classes=0)
        with pytest.raises(ValidationError):
            SimulationConfig(scenario=small_scenario, session_duration_s=0.0)
        with pytest.raises(ValidationError):
            SimulationConfig(scenario=small_scenario, duration_jitter=1.5)
        with pytest.raises(ValidationError):
            SimulationConfig(scenario=small_scenario, segment_s=0.0)

    def test_unknown_scenario_name(self):
        with pytest.raises(ValidationError):
            build_scenario("no-such-campaign")

    def test_scenario_registry(self):
        assert scenario_names() == sorted(
            ["steady", "flash-crowd", "failover-storm", "link-churn",
             "gray-failure", "live-event", "policy-mix"]
        )

    def test_live_event_maximizes_device_heterogeneity(self):
        config = build_scenario("live-event", seed=3, sessions=12)
        assert config.device_classes == 32
        # The flash crowd carries most of the audience.
        crowd = [f for f in config.faults if type(f).__name__ == "FlashCrowd"]
        assert len(crowd) == 1
        assert crowd[0].sessions == 9
        without = build_scenario("live-event", seed=3, sessions=12,
                                 faults=False)
        assert without.faults == ()
