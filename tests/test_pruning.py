"""Unit tests for the graph-pruning pass."""

from __future__ import annotations

import pytest

from repro.core.baselines import ExhaustiveSelector
from repro.core.graph import AdaptationGraph, Edge
from repro.core.pruning import GraphPruner, PruningReport
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

from tests.test_graph import simple_world


class TestPruner:
    def test_removes_dead_end_services(self):
        graph = simple_world()  # T2 produces a format nobody consumes
        pruned, report = GraphPruner().prune(graph)
        assert "T2" not in pruned
        assert "T1" in pruned
        assert report.vertices_removed == 1

    def test_endpoints_always_survive(self):
        graph = simple_world()
        pruned, _ = GraphPruner().prune(graph)
        assert pruned.sender_id in pruned
        assert pruned.receiver_id in pruned

    def test_report_numbers_consistent(self):
        graph = simple_world()
        pruned, report = GraphPruner().prune(graph)
        assert report.vertices_before == len(graph)
        assert report.vertices_after == len(pruned)
        assert report.edges_before == graph.edge_count()
        assert report.edges_after == pruned.edge_count()
        assert report.edges_removed >= 1  # sender->T2 edge died with T2

    def test_summary_text(self):
        report = PruningReport(10, 8, 20, 15)
        assert "2 of 10" in report.summary()
        assert "5 of 20" in report.summary()

    def test_idempotent(self):
        graph = simple_world()
        once, _ = GraphPruner().prune(graph)
        twice, report = GraphPruner().prune(once)
        assert report.vertices_removed == 0
        assert report.edges_removed == 0
        assert twice.vertex_ids() == once.vertex_ids()

    def test_paper_graph_prunes_only_dead_ends(self, fig6):
        graph = fig6.build_graph()
        pruned, _ = GraphPruner().prune(graph)
        # T9 and T15 produce formats the receiver cannot decode and feed
        # nobody else; everything else survives.
        assert "T9" not in pruned
        assert "T15" not in pruned
        for survivor in ("T1", "T7", "T10", "T19", "T20"):
            assert survivor in pruned

    @pytest.mark.parametrize("seed", range(6))
    def test_pruning_preserves_the_optimum(self, seed):
        """Satisfaction-preservation: exhaustive search agrees before and
        after pruning."""
        scenario = generate_scenario(SyntheticConfig(seed=seed, n_services=14))
        graph = scenario.build_graph()
        pruned, _ = GraphPruner().prune(graph)
        satisfaction = scenario.user.satisfaction()

        def best(g: AdaptationGraph) -> float:
            selector = ExhaustiveSelector(
                g,
                scenario.registry,
                scenario.parameters,
                satisfaction,
                scenario.user.budget,
            )
            return selector.run().satisfaction

        assert best(pruned) == pytest.approx(best(graph))

    def test_zero_bandwidth_edges_dropped(self):
        graph = simple_world()
        dead = Edge("sender", "T1", "F0", 0.0)
        rebuilt = AdaptationGraph(
            graph.vertices(),
            list(graph.edges()) + [],
            graph.sender_id,
            graph.receiver_id,
        )
        # Inject by constructing a fresh graph including the dead edge.
        with_dead = AdaptationGraph(
            graph.vertices(),
            list(graph.edges()) + [dead],
            graph.sender_id,
            graph.receiver_id,
        )
        pruned, _ = GraphPruner().prune(with_dead)
        assert all(e.bandwidth_bps > 0 for e in pruned.edges())

    def test_parallel_duplicate_edges_deduplicated(self):
        graph = simple_world()
        duplicate = Edge("sender", "T1", "F0", 9e9, transmission_cost=0.0)
        with_duplicate = AdaptationGraph(
            graph.vertices(),
            list(graph.edges()) + [duplicate],
            graph.sender_id,
            graph.receiver_id,
        )
        pruned, _ = GraphPruner().prune(with_duplicate)
        parallel = [
            e
            for e in pruned.edges()
            if (e.source, e.target, e.format_name) == ("sender", "T1", "F0")
        ]
        assert len(parallel) == 1
        assert parallel[0].bandwidth_bps == 9e9  # the wider one won
