"""Tests for the synthetic scenario generator."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.workloads.synthetic import SyntheticConfig, generate_scenario


class TestConfigValidation:
    def test_defaults_are_valid(self):
        SyntheticConfig()

    def test_backbone_must_fit(self):
        with pytest.raises(ValidationError):
            SyntheticConfig(n_services=2, backbone_hops=3)
        with pytest.raises(ValidationError):
            SyntheticConfig(backbone_hops=0)
        with pytest.raises(ValidationError):
            SyntheticConfig(n_formats=3, backbone_hops=3)

    def test_node_minimum(self):
        with pytest.raises(ValidationError):
            SyntheticConfig(n_nodes=2)

    def test_preference_mode_checked(self):
        with pytest.raises(ValidationError):
            SyntheticConfig(preference_mode="psychic")


class TestDeterminism:
    def test_same_seed_same_scenario(self):
        a = generate_scenario(SyntheticConfig(seed=13))
        b = generate_scenario(SyntheticConfig(seed=13))
        assert a.catalog.ids() == b.catalog.ids()
        assert a.placement.as_dict() == b.placement.as_dict()
        assert sorted(a.registry.names()) == sorted(b.registry.names())
        assert [l.bandwidth_bps for l in a.topology.links()] == [
            l.bandwidth_bps for l in b.topology.links()
        ]

    def test_same_seed_same_selection(self):
        a = generate_scenario(SyntheticConfig(seed=21)).select()
        b = generate_scenario(SyntheticConfig(seed=21)).select()
        assert a.path == b.path
        assert a.satisfaction == b.satisfaction

    def test_different_seeds_differ(self):
        a = generate_scenario(SyntheticConfig(seed=1))
        b = generate_scenario(SyntheticConfig(seed=2))
        differs = (
            a.placement.as_dict() != b.placement.as_dict()
            or [l.bandwidth_bps for l in a.topology.links()]
            != [l.bandwidth_bps for l in b.topology.links()]
        )
        assert differs


class TestGeneratedStructure:
    @pytest.mark.parametrize("seed", range(5))
    def test_backbone_guarantees_a_path(self, seed):
        scenario = generate_scenario(SyntheticConfig(seed=seed))
        result = scenario.select()
        assert result.success

    def test_requested_sizes_respected(self):
        config = SyntheticConfig(seed=3, n_services=25, n_formats=10, n_nodes=8)
        scenario = generate_scenario(config)
        assert len(scenario.catalog) == 25
        assert len(scenario.registry) == 10
        assert len(scenario.topology) == 8

    def test_all_services_placed_on_real_nodes(self):
        scenario = generate_scenario(SyntheticConfig(seed=4))
        for service in scenario.catalog:
            node = scenario.placement.node_of(service.service_id)
            assert node in scenario.topology

    def test_topology_connected(self):
        scenario = generate_scenario(SyntheticConfig(seed=5, extra_links=0))
        nodes = scenario.topology.node_ids()
        for node in nodes[1:]:
            assert scenario.topology.widest_path(nodes[0], node) is not None

    def test_device_decodes_backbone_output(self):
        scenario = generate_scenario(SyntheticConfig(seed=6))
        final_backbone = scenario.catalog.get(
            f"S{SyntheticConfig().backbone_hops}"
        )
        assert any(
            scenario.device.can_decode(fmt)
            for fmt in final_backbone.output_formats
        )

    def test_rich_mode_has_two_preferences(self):
        scenario = generate_scenario(
            SyntheticConfig(seed=7, preference_mode="rich")
        )
        assert len(scenario.user.preference_parameters()) == 2

    def test_rich_mode_selection_runs(self):
        scenario = generate_scenario(
            SyntheticConfig(seed=8, preference_mode="rich")
        )
        result = scenario.select()
        assert result.success
        assert 0.0 <= result.satisfaction <= 1.0

    def test_description_mentions_sizes(self):
        scenario = generate_scenario(SyntheticConfig(seed=9, n_services=11))
        assert "11 services" in scenario.description
