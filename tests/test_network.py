"""Unit tests for the network substrate: topology, bandwidth, placement."""

from __future__ import annotations

import math

import pytest

from repro.errors import PlacementError, UnknownNodeError, ValidationError
from repro.network.bandwidth import (
    BandwidthEstimator,
    ConstantBandwidth,
    RandomWalkBandwidth,
    SinusoidalBandwidth,
)
from repro.network.placement import ServicePlacement
from repro.network.topology import Link, NetworkNode, NetworkTopology
from repro.services.descriptor import ServiceDescriptor


def diamond_topology() -> NetworkTopology:
    """a -- b -- d and a -- c -- d; the b-route is wide, the c-route cheap."""
    topology = NetworkTopology()
    for node_id in ("a", "b", "c", "d"):
        topology.node(node_id)
    topology.link("a", "b", 10e6, delay_ms=10.0, cost=2.0)
    topology.link("b", "d", 8e6, delay_ms=10.0, cost=2.0)
    topology.link("a", "c", 2e6, delay_ms=1.0, cost=0.1)
    topology.link("c", "d", 2e6, delay_ms=1.0, cost=0.1)
    return topology


class TestTopologyConstruction:
    def test_add_node_and_lookup(self):
        topology = NetworkTopology()
        node = topology.node("a", cpu_mips=100.0)
        assert topology.get_node("a") is node
        assert "a" in topology
        assert len(topology) == 1

    def test_duplicate_node_same_definition_ok(self):
        topology = NetworkTopology()
        topology.add_node(NetworkNode("a"))
        topology.add_node(NetworkNode("a"))
        assert len(topology) == 1

    def test_duplicate_node_different_definition_rejected(self):
        topology = NetworkTopology()
        topology.node("a", cpu_mips=1.0)
        with pytest.raises(ValidationError):
            topology.node("a", cpu_mips=2.0)

    def test_link_requires_known_nodes(self):
        topology = NetworkTopology()
        topology.node("a")
        with pytest.raises(UnknownNodeError):
            topology.link("a", "ghost", 1e6)

    def test_self_link_rejected(self):
        with pytest.raises(ValidationError):
            Link("a", "a", 1e6)

    def test_duplicate_link_rejected(self):
        topology = diamond_topology()
        with pytest.raises(ValidationError):
            topology.link("b", "a", 1e6)

    def test_link_lookup_is_direction_free(self):
        topology = diamond_topology()
        assert topology.get_link("a", "b") is topology.get_link("b", "a")
        assert topology.has_link("d", "b")
        assert not topology.has_link("a", "d")

    def test_link_validation(self):
        with pytest.raises(ValidationError):
            Link("a", "b", -1.0)
        with pytest.raises(ValidationError):
            Link("a", "b", 1.0, loss_rate=1.5)
        with pytest.raises(ValidationError):
            Link("a", "b", 1.0, delay_ms=-1.0)

    def test_link_other_endpoint(self):
        link = Link("a", "b", 1e6)
        assert link.other("a") == "b"
        assert link.other("b") == "a"
        with pytest.raises(UnknownNodeError):
            link.other("z")

    def test_neighbors(self):
        topology = diamond_topology()
        assert sorted(topology.neighbors("a")) == ["b", "c"]
        with pytest.raises(UnknownNodeError):
            topology.neighbors("ghost")


class TestRouting:
    def test_widest_path_prefers_fat_route(self):
        topology = diamond_topology()
        assert topology.widest_path("a", "d") == ["a", "b", "d"]
        assert topology.available_bandwidth("a", "d") == 8e6

    def test_same_node_bandwidth_unlimited(self):
        topology = diamond_topology()
        assert math.isinf(topology.available_bandwidth("a", "a"))

    def test_disconnected_bandwidth_zero(self):
        topology = diamond_topology()
        topology.node("island")
        assert topology.widest_path("a", "island") is None
        assert topology.available_bandwidth("a", "island") == 0.0

    def test_unknown_node_raises(self):
        with pytest.raises(UnknownNodeError):
            diamond_topology().widest_path("a", "ghost")

    def test_shortest_path_hops(self):
        topology = diamond_topology()
        path = topology.shortest_path("a", "d")
        assert len(path) == 3  # either route is two hops

    def test_shortest_path_delay_prefers_c_route(self):
        topology = diamond_topology()
        assert topology.shortest_path("a", "d", weight="delay") == ["a", "c", "d"]

    def test_shortest_path_cost_prefers_c_route(self):
        topology = diamond_topology()
        assert topology.shortest_path("a", "d", weight="cost") == ["a", "c", "d"]

    def test_shortest_path_unknown_weight(self):
        with pytest.raises(ValidationError):
            diamond_topology().shortest_path("a", "d", weight="karma")

    def test_path_aggregates(self):
        topology = diamond_topology()
        path = ["a", "c", "d"]
        assert topology.path_delay_ms(path) == pytest.approx(2.0)
        assert topology.path_cost(path) == pytest.approx(0.2)
        assert topology.path_bottleneck(path) == 2e6

    def test_path_loss_combines_independently(self):
        topology = NetworkTopology()
        for n in ("a", "b", "c"):
            topology.node(n)
        topology.link("a", "b", 1e6, loss_rate=0.1)
        topology.link("b", "c", 1e6, loss_rate=0.1)
        assert topology.path_loss_rate(["a", "b", "c"]) == pytest.approx(0.19)

    def test_trivial_path_metrics(self):
        topology = diamond_topology()
        assert topology.path_bottleneck(["a"]) == math.inf
        assert topology.path_delay_ms(["a"]) == 0.0


class TestFluctuationModels:
    def _link(self):
        return Link("a", "b", 10e6)

    def test_constant_is_identity(self):
        model = ConstantBandwidth()
        assert model.factor(self._link(), 0.0) == 1.0
        assert model.factor(self._link(), 1e6) == 1.0

    def test_sinusoidal_stays_in_band(self):
        model = SinusoidalBandwidth(amplitude=0.4, period_s=10.0)
        for t in range(100):
            factor = model.factor(self._link(), float(t))
            assert 0.6 <= factor <= 1.0

    def test_sinusoidal_validation(self):
        with pytest.raises(ValidationError):
            SinusoidalBandwidth(amplitude=1.0)
        with pytest.raises(ValidationError):
            SinusoidalBandwidth(period_s=0.0)

    def test_random_walk_deterministic_per_seed(self):
        a = RandomWalkBandwidth(seed=42)
        b = RandomWalkBandwidth(seed=42)
        series_a = [a.factor(self._link(), float(t)) for t in range(20)]
        series_b = [b.factor(self._link(), float(t)) for t in range(20)]
        assert series_a == series_b

    def test_random_walk_differs_across_seeds(self):
        a = RandomWalkBandwidth(seed=1)
        b = RandomWalkBandwidth(seed=2)
        series_a = [a.factor(self._link(), float(t)) for t in range(20)]
        series_b = [b.factor(self._link(), float(t)) for t in range(20)]
        assert series_a != series_b

    def test_random_walk_respects_floor(self):
        model = RandomWalkBandwidth(seed=0, step=0.5, floor=0.3)
        for t in range(200):
            factor = model.factor(self._link(), float(t))
            assert 0.3 <= factor <= 1.0

    def test_random_walk_query_order_independent(self):
        forward = RandomWalkBandwidth(seed=9)
        series_forward = [forward.factor(self._link(), float(t)) for t in range(10)]
        backward = RandomWalkBandwidth(seed=9)
        series_backward = [
            backward.factor(self._link(), float(t)) for t in reversed(range(10))
        ]
        assert series_forward == list(reversed(series_backward))


class TestBandwidthEstimator:
    def test_constant_model_matches_topology(self):
        topology = diamond_topology()
        estimator = BandwidthEstimator(topology)
        assert estimator.available_bandwidth("a", "d") == topology.available_bandwidth(
            "a", "d"
        )

    def test_fluctuation_reduces_bandwidth(self):
        topology = diamond_topology()
        estimator = BandwidthEstimator(
            topology, SinusoidalBandwidth(amplitude=0.5, period_s=7.0)
        )
        static = topology.available_bandwidth("a", "d")
        samples = [estimator.available_bandwidth("a", "d", t) for t in range(20)]
        assert all(s <= static for s in samples)
        assert min(samples) < static  # it actually dips

    def test_series_shape(self):
        estimator = BandwidthEstimator(diamond_topology())
        series = estimator.series("a", "d", duration_s=5.0, interval_s=1.0)
        assert len(series) == 6
        assert series[0][0] == 0.0

    def test_same_node_unlimited(self):
        estimator = BandwidthEstimator(diamond_topology())
        assert math.isinf(estimator.available_bandwidth("a", "a"))


class TestServicePlacement:
    def _placement(self):
        topology = diamond_topology()
        return ServicePlacement(topology, {"T1": "b", "T2": "c"})

    def test_place_and_lookup(self):
        placement = self._placement()
        assert placement.node_of("T1") == "b"
        assert placement.is_placed("T2")
        assert not placement.is_placed("T9")
        assert placement.services_at("b") == ["T1"]

    def test_unknown_node_rejected(self):
        with pytest.raises(PlacementError):
            self._placement().place("T3", "ghost")

    def test_unplaced_lookup_raises(self):
        with pytest.raises(PlacementError):
            self._placement().node_of("T9")

    def test_co_location_and_bandwidth(self):
        placement = self._placement()
        placement.place("T3", "b")
        assert placement.co_located("T1", "T3")
        assert math.isinf(placement.bandwidth_between("T1", "T3"))
        assert placement.bandwidth_between("T1", "T2") > 0

    def test_resource_validation_flags_overload(self):
        topology = NetworkTopology()
        topology.node("tiny", cpu_mips=1.0, memory_mb=8.0)
        placement = ServicePlacement(topology, {"T1": "tiny"})
        heavy = ServiceDescriptor(
            service_id="T1",
            input_formats=("F1",),
            output_formats=("F2",),
            cpu_factor=100.0,
            memory_mb=64.0,
        )
        violations = placement.validate_resources([heavy])
        assert len(violations) == 2  # CPU and memory

    def test_resource_validation_passes_when_fitting(self):
        placement = self._placement()
        light = ServiceDescriptor(
            service_id="T1",
            input_formats=("F1",),
            output_formats=("F2",),
            cpu_factor=0.1,
            memory_mb=1.0,
        )
        assert placement.validate_resources([light]) == []
