"""Unit tests for the LRU plan cache (single-threaded behaviour).

Concurrency is covered separately in ``test_planner_stress.py``; here the
LRU order, the counters, and the single-flight bookkeeping are checked
deterministically.
"""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.planner import GenerationStamp, PlanCache, PlanFingerprint


def _fp(digest: str, stamp: GenerationStamp = GenerationStamp(0, 0, 0, 0)):
    return PlanFingerprint(digest=digest, generations=stamp)


def test_rejects_nonpositive_capacity():
    with pytest.raises(ValidationError):
        PlanCache(max_entries=0)


def test_get_counts_hits_and_misses():
    cache = PlanCache()
    fp = _fp("a")
    assert cache.get(fp) is None
    cache.put(fp, "plan-a")
    assert cache.get(fp) == "plan-a"
    stats = cache.stats
    assert stats.hits == 1
    assert stats.misses == 1
    assert stats.lookups == 2
    assert stats.hit_rate == 0.5


def test_lru_evicts_least_recently_used():
    cache = PlanCache(max_entries=2)
    cache.put(_fp("a"), 1)
    cache.put(_fp("b"), 2)
    assert cache.get(_fp("a")) == 1  # refresh "a": now "b" is LRU
    cache.put(_fp("c"), 3)
    assert _fp("b") not in cache
    assert _fp("a") in cache
    assert _fp("c") in cache
    assert cache.stats.evictions == 1
    assert len(cache) == 2


def test_get_or_compute_computes_once():
    cache = PlanCache()
    calls = []

    def compute():
        calls.append(1)
        return "plan"

    fp = _fp("a")
    assert cache.get_or_compute(fp, compute) == "plan"
    assert cache.get_or_compute(fp, compute) == "plan"
    assert len(calls) == 1
    stats = cache.stats
    assert stats.misses == 1
    assert stats.hits == 1


def test_get_or_compute_propagates_and_recovers_from_failure():
    cache = PlanCache()
    fp = _fp("a")

    def boom():
        raise RuntimeError("planner blew up")

    with pytest.raises(RuntimeError):
        cache.get_or_compute(fp, boom)
    # A failed computation leaves no entry and no stuck in-flight marker.
    assert fp not in cache
    assert cache.get_or_compute(fp, lambda: "recovered") == "recovered"


def test_purge_stale_drops_only_old_generations():
    cache = PlanCache()
    old = GenerationStamp(0, 0, 0, 0)
    new = GenerationStamp(1, 0, 0, 0)
    cache.put(_fp("a", old), 1)
    cache.put(_fp("b", old), 2)
    cache.put(_fp("c", new), 3)
    assert cache.purge_stale(new) == 2
    assert len(cache) == 1
    assert _fp("c", new) in cache
    assert cache.stats.invalidations == 2


def test_clear_counts_as_invalidation():
    cache = PlanCache()
    cache.put(_fp("a"), 1)
    cache.put(_fp("b"), 2)
    assert cache.clear() == 2
    assert len(cache) == 0
    assert cache.stats.invalidations == 2


def test_stats_snapshot_is_immutable_and_consistent():
    cache = PlanCache()
    cache.put(_fp("a"), 1)
    cache.get(_fp("a"))
    snapshot = cache.stats
    cache.get(_fp("a"))
    assert snapshot.hits == 1  # old snapshot unaffected
    assert cache.stats.hits == 2
    with pytest.raises(AttributeError):
        snapshot.hits = 99


def test_empty_cache_hit_rate_is_zero():
    assert PlanCache().stats.hit_rate == 0.0
