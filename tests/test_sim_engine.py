"""Unit tests for the discrete-event core: clock, heap, trace digest."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(3.0, lambda: fired.append("c"))
        sim.schedule_at(1.0, lambda: fired.append("a"))
        sim.schedule_at(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 3.0
        assert sim.events_processed == 3

    def test_ties_break_by_schedule_order(self):
        sim = Simulator()
        fired = []
        for tag in ("first", "second", "third"):
            sim.schedule_at(5.0, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == ["first", "second", "third"]

    def test_priority_beats_schedule_order_at_equal_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append("late"), priority=1)
        sim.schedule_at(1.0, lambda: fired.append("early"), priority=0)
        sim.run()
        assert fired == ["early", "late"]

    def test_cannot_schedule_in_the_past(self):
        sim = Simulator()
        sim.schedule_at(2.0, lambda: sim.schedule_at(1.0, lambda: None))
        with pytest.raises(ValidationError):
            sim.run()

    def test_relative_schedule_uses_current_clock(self):
        sim = Simulator()
        times = []
        sim.schedule_at(2.0, lambda: sim.schedule(1.5, lambda: times.append(sim.now)))
        sim.run()
        assert times == [3.5]

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []

        def cascade():
            fired.append(sim.now)
            if sim.now < 3.0:
                sim.schedule(1.0, cascade)

        sim.schedule_at(0.0, cascade)
        sim.run()
        assert fired == [0.0, 1.0, 2.0, 3.0]


class TestRunBounds:
    def test_until_leaves_later_events_pending(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(10.0, lambda: fired.append(10))
        sim.run(until_s=5.0)
        assert fired == [1]
        assert sim.pending == 1

    def test_max_events_caps_processing(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule_at(float(t), lambda: None)
        processed = sim.run(max_events=3)
        assert processed == 3
        assert sim.pending == 2


class TestTrace:
    def test_digest_covers_all_events_despite_ring(self):
        """The running digest sees every record even after the ring drops."""
        bounded = Simulator(trace_capacity=2)
        unbounded = Simulator()
        for sim in (bounded, unbounded):
            for i in range(6):
                sim.schedule_at(float(i), lambda s=sim, k=i: s.record("tick", str(k)))
            sim.run()
        assert bounded.trace.dropped == 4
        assert len(bounded.trace) == 2
        assert bounded.trace_digest() == unbounded.trace_digest()

    def test_identical_runs_identical_digest(self):
        def build():
            sim = Simulator()
            for i in range(4):
                sim.schedule_at(float(i), lambda s=sim, k=i: s.record("e", f"m{k}"))
            sim.run()
            return sim.trace_digest()

        assert build() == build()

    def test_different_runs_different_digest(self):
        a, b = Simulator(), Simulator()
        a.schedule_at(0.0, lambda: a.record("e", "one"))
        b.schedule_at(0.0, lambda: b.record("e", "two"))
        a.run()
        b.run()
        assert a.trace_digest() != b.trace_digest()

    def test_digest_readable_mid_run(self):
        sim = Simulator()
        sim.schedule_at(0.0, lambda: sim.record("e", "x"))
        before = sim.trace_digest()
        sim.run()
        assert sim.trace_digest() != before
