"""Unit tests for the discovery layer (registry + SLP agents)."""

from __future__ import annotations

import pytest

from repro.discovery.advertisement import Advertisement
from repro.discovery.registry import DiscoveryRegistry, ServiceQuery
from repro.discovery.slp import DirectoryAgent, ServiceAgent, SrvRqst, UserAgent
from repro.errors import DiscoveryError
from repro.network.topology import NetworkTopology
from repro.services.descriptor import ServiceDescriptor, ServiceKind


def service(service_id="T1", inputs=("F1",), outputs=("F2",), cost=1.0, provider=""):
    return ServiceDescriptor(
        service_id=service_id,
        input_formats=inputs,
        output_formats=outputs,
        cost=cost,
        provider=provider,
    )


class TestAdvertisement:
    def test_validation(self):
        with pytest.raises(DiscoveryError):
            Advertisement(service(), node_id="")
        with pytest.raises(DiscoveryError):
            Advertisement(service(), node_id="n", ttl=0.0)

    def test_only_transcoders(self):
        sender = ServiceDescriptor(
            service_id="s", output_formats=("F1",), kind=ServiceKind.SENDER
        )
        with pytest.raises(DiscoveryError):
            Advertisement(sender, node_id="n")

    def test_expiry(self):
        ad = Advertisement(service(), node_id="n", ttl=10.0, registered_at=5.0)
        assert ad.expires_at() == 15.0
        assert not ad.is_expired(14.9)
        assert ad.is_expired(15.0)

    def test_renewed(self):
        ad = Advertisement(service(), node_id="n", ttl=10.0)
        renewed = ad.renewed(100.0)
        assert renewed.registered_at == 100.0
        assert renewed.ttl == 10.0


class TestDiscoveryRegistry:
    def test_advertise_and_query_all(self):
        registry = DiscoveryRegistry()
        registry.advertise(service("T2"), "n2")
        registry.advertise(service("T1"), "n1")
        ads = registry.query()
        assert [a.service_id for a in ads] == ["T1", "T2"]  # natural order
        assert len(registry) == 2

    def test_query_by_formats(self):
        registry = DiscoveryRegistry()
        registry.advertise(service("T1", inputs=("F1",), outputs=("F2",)), "n1")
        registry.advertise(service("T2", inputs=("F2",), outputs=("F3",)), "n1")
        hits = registry.query(ServiceQuery(input_format="F2"))
        assert [a.service_id for a in hits] == ["T2"]
        hits = registry.query(ServiceQuery(output_format="F2"))
        assert [a.service_id for a in hits] == ["T1"]

    def test_query_by_cost_and_node(self):
        registry = DiscoveryRegistry()
        registry.advertise(service("T1", cost=1.0), "n1")
        registry.advertise(service("T2", cost=5.0), "n2")
        assert [a.service_id for a in registry.query(ServiceQuery(max_cost=2.0))] == ["T1"]
        assert [a.service_id for a in registry.query(ServiceQuery(node_id="n2"))] == ["T2"]

    def test_ttl_expiry_on_clock_advance(self):
        registry = DiscoveryRegistry()
        registry.advertise(service("T1"), "n1", ttl=10.0)
        registry.advance(9.0)
        assert "T1" in registry
        registry.advance(1.0)
        assert "T1" not in registry

    def test_renew_extends_life(self):
        registry = DiscoveryRegistry()
        registry.advertise(service("T1"), "n1", ttl=10.0)
        registry.advance(8.0)
        registry.renew("T1")
        registry.advance(8.0)
        assert "T1" in registry

    def test_renew_unknown_raises(self):
        with pytest.raises(DiscoveryError):
            DiscoveryRegistry().renew("ghost")

    def test_clock_cannot_go_backwards(self):
        with pytest.raises(DiscoveryError):
            DiscoveryRegistry().advance(-1.0)

    def test_conflicting_node_rejected(self):
        registry = DiscoveryRegistry()
        registry.advertise(service("T1"), "n1")
        with pytest.raises(DiscoveryError):
            registry.advertise(service("T1"), "n2")

    def test_deregister(self):
        registry = DiscoveryRegistry()
        registry.advertise(service("T1"), "n1")
        registry.deregister("T1")
        assert "T1" not in registry
        with pytest.raises(DiscoveryError):
            registry.deregister("T1")

    def test_intermediary_profiles_group_by_node(self):
        registry = DiscoveryRegistry()
        registry.advertise(service("T1"), "n1")
        registry.advertise(service("T2"), "n1")
        registry.advertise(service("T3"), "n2")
        profiles = registry.intermediary_profiles()
        assert [p.node_id for p in profiles] == ["n1", "n2"]
        assert profiles[0].service_ids() == ["T1", "T2"]

    def test_intermediary_profiles_report_topology_resources(self):
        topology = NetworkTopology()
        topology.node("n1", cpu_mips=321.0, memory_mb=77.0)
        registry = DiscoveryRegistry()
        registry.advertise(service("T1"), "n1")
        profile = registry.intermediary_profiles(topology)[0]
        assert profile.available_cpu_mips == 321.0
        assert profile.available_memory_mb == 77.0


class TestSlpAgents:
    def test_register_and_find(self):
        directory = DirectoryAgent()
        agent = ServiceAgent("n1", directory)
        agent.register(service("T1", inputs=("F1",), outputs=("F2",)))
        reply = UserAgent("alice", directory).find(input_format="F1")
        assert reply.urls == ["service:transcoder:T1@n1"]
        assert len(reply) == 1

    def test_heartbeat_renews(self):
        directory = DirectoryAgent()
        agent = ServiceAgent("n1", directory, default_ttl=10.0)
        agent.register(service("T1"))
        directory.registry.advance(8.0)
        assert agent.heartbeat() == 1
        directory.registry.advance(8.0)
        assert "T1" in directory.registry

    def test_heartbeat_drops_expired(self):
        directory = DirectoryAgent()
        agent = ServiceAgent("n1", directory, default_ttl=5.0)
        agent.register(service("T1"))
        directory.registry.advance(6.0)  # expired before any heartbeat
        assert agent.heartbeat() == 0
        assert agent.registered_ids == []

    def test_withdraw(self):
        directory = DirectoryAgent()
        agent = ServiceAgent("n1", directory)
        agent.register(service("T1"))
        agent.withdraw("T1")
        assert "T1" not in directory.registry
        with pytest.raises(DiscoveryError):
            agent.withdraw("T1")

    def test_find_with_no_matches(self):
        directory = DirectoryAgent()
        reply = UserAgent("bob", directory).find(input_format="F404")
        assert reply.urls == []

    def test_agent_requires_node(self):
        with pytest.raises(DiscoveryError):
            ServiceAgent("", DirectoryAgent())

    def test_discovery_to_graph_pipeline(self):
        """Advertisements end up as intermediary profiles usable by the
        graph builder glue (merge_intermediaries)."""
        from repro.profiles.intermediary import merge_intermediaries

        topology = NetworkTopology()
        topology.node("n1")
        topology.node("n2")
        directory = DirectoryAgent()
        ServiceAgent("n1", directory).register(service("T1"))
        ServiceAgent("n2", directory).register(service("T2"))
        profiles = directory.registry.intermediary_profiles(topology)
        catalog, placement = merge_intermediaries(profiles, topology)
        assert catalog.ids() == ["T1", "T2"]
        assert placement.node_of("T2") == "n2"
