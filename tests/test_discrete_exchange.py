"""Dedicated tests for the optimizer's discrete-exchange phase (phase 4).

The proportional quality ray can park below a large discrete step; the
exchange phase trades continuous headroom for higher discrete values when
the combined satisfaction profits.  These tests pin the behaviour with
hand-computed optima.
"""

from __future__ import annotations

import pytest

from repro.core.configuration import Configuration
from repro.core.optimizer import ConfigurationOptimizer, OptimizationConstraints
from repro.core.parameters import (
    COLOR_DEPTH,
    FRAME_RATE,
    RESOLUTION,
    ContinuousDomain,
    DiscreteDomain,
    Parameter,
    ParameterSet,
)
from repro.core.satisfaction import (
    CombinedSatisfaction,
    HarmonicCombiner,
    LinearSatisfaction,
)
from repro.formats.format import MediaFormat

FMT = MediaFormat(name="xchg", compression_ratio=10.0)


def two_preference_optimizer():
    parameters = ParameterSet(
        [
            Parameter(FRAME_RATE, "fps", ContinuousDomain(0.0, 60.0)),
            Parameter(RESOLUTION, "pixels", DiscreteDomain([100.0, 500.0, 1000.0])),
            Parameter(COLOR_DEPTH, "bits", DiscreteDomain([8.0])),
        ]
    )
    satisfaction = CombinedSatisfaction(
        {
            FRAME_RATE: LinearSatisfaction(0.0, 30.0),
            RESOLUTION: LinearSatisfaction(0.0, 1000.0),
        },
        HarmonicCombiner(),
    )
    return ConfigurationOptimizer(parameters, satisfaction)


def constraints(bandwidth):
    return OptimizationConstraints(
        upstream=Configuration(
            {FRAME_RATE: 30.0, RESOLUTION: 1000.0, COLOR_DEPTH: 8.0}
        ),
        caps={},
        fmt=FMT,
        bandwidth_bps=bandwidth,
    )


class TestDiscreteExchange:
    def test_steps_up_to_full_resolution(self):
        """The seed-14 regression, distilled.

        Bandwidth 20125 bps; frame bits at depth 8 / res R: 0.8*R.  The
        proportional ray parks at (fps~30, res 500) -> harmonic(1.0, 0.5)
        = 0.667.  The exchange finds (fps 25.16, res 1000) -> 0.912.
        """
        optimizer = two_preference_optimizer()
        choice = optimizer.optimize(constraints(20_124.88))
        assert choice.configuration[RESOLUTION] == 1000.0
        assert choice.configuration[FRAME_RATE] == pytest.approx(25.156, abs=0.01)
        assert choice.satisfaction == pytest.approx(0.912, abs=0.002)

    def test_no_exchange_when_ray_already_optimal(self):
        """With generous bandwidth the upper corner already wins and the
        exchange changes nothing."""
        optimizer = two_preference_optimizer()
        choice = optimizer.optimize(constraints(1e9))
        assert choice.configuration[FRAME_RATE] == 30.0
        assert choice.configuration[RESOLUTION] == 1000.0
        assert choice.satisfaction == pytest.approx(1.0)

    def test_exchange_never_violates_bandwidth(self):
        optimizer = two_preference_optimizer()
        for bandwidth in (5_000.0, 10_000.0, 20_000.0, 50_000.0):
            choice = optimizer.optimize(constraints(bandwidth))
            assert choice.required_bandwidth_bps <= bandwidth * (1 + 1e-9)

    def test_exchange_is_monotone_in_bandwidth(self):
        optimizer = two_preference_optimizer()
        scores = [
            optimizer.optimize(constraints(b)).satisfaction
            for b in (2_000.0, 8_000.0, 16_000.0, 24_000.0, 48_000.0)
        ]
        assert scores == sorted(scores)

    def test_exchange_beats_or_matches_dense_grid(self):
        """The exchange-equipped analytic optimizer must never lose to a
        41-point grid on this family."""
        from repro.core.gridsearch import GridSearchOptimizer

        parameters = ParameterSet(
            [
                Parameter(FRAME_RATE, "fps", ContinuousDomain(0.0, 60.0)),
                Parameter(
                    RESOLUTION, "pixels", DiscreteDomain([100.0, 500.0, 1000.0])
                ),
                Parameter(COLOR_DEPTH, "bits", DiscreteDomain([8.0])),
            ]
        )
        satisfaction = CombinedSatisfaction(
            {
                FRAME_RATE: LinearSatisfaction(0.0, 30.0),
                RESOLUTION: LinearSatisfaction(0.0, 1000.0),
            },
            HarmonicCombiner(),
        )
        analytic = ConfigurationOptimizer(parameters, satisfaction)
        grid = GridSearchOptimizer(parameters, satisfaction, grid_points=41)
        for bandwidth in (4_000.0, 9_000.0, 15_000.0, 20_125.0, 33_000.0):
            a = analytic.optimize(constraints(bandwidth))
            g = grid.optimize(constraints(bandwidth))
            assert a.satisfaction >= g.satisfaction - 1e-9, bandwidth

    def test_exchange_respects_caps(self):
        """A service cap on the discrete parameter blocks the exchange."""
        optimizer = two_preference_optimizer()
        choice = optimizer.optimize(
            OptimizationConstraints(
                upstream=Configuration(
                    {FRAME_RATE: 30.0, RESOLUTION: 1000.0, COLOR_DEPTH: 8.0}
                ),
                caps={RESOLUTION: 500.0},
                fmt=FMT,
                bandwidth_bps=20_125.0,
            )
        )
        assert choice.configuration[RESOLUTION] <= 500.0
