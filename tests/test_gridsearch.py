"""Tests for the grid-search reference optimizer, incl. cross-validation
against the analytic three-phase optimizer."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.configuration import Configuration
from repro.core.gridsearch import GridSearchOptimizer
from repro.core.optimizer import ConfigurationOptimizer, OptimizationConstraints
from repro.core.parameters import (
    COLOR_DEPTH,
    FRAME_RATE,
    RESOLUTION,
    ContinuousDomain,
    DiscreteDomain,
    Parameter,
    ParameterSet,
)
from repro.core.satisfaction import (
    CombinedSatisfaction,
    HarmonicCombiner,
    LinearSatisfaction,
)
from repro.errors import ValidationError
from repro.formats.format import MediaFormat

FMT = MediaFormat(name="grid-fmt", compression_ratio=10.0)


def parameters() -> ParameterSet:
    return ParameterSet(
        [
            Parameter(FRAME_RATE, "fps", ContinuousDomain(0.0, 60.0)),
            Parameter(RESOLUTION, "pixels", DiscreteDomain([100.0, 500.0, 1000.0])),
            Parameter(COLOR_DEPTH, "bits", DiscreteDomain([8.0, 16.0, 24.0])),
        ]
    )


def satisfaction(two_params: bool = False) -> CombinedSatisfaction:
    functions = {FRAME_RATE: LinearSatisfaction(0.0, 30.0)}
    if two_params:
        functions[RESOLUTION] = LinearSatisfaction(0.0, 1000.0)
    return CombinedSatisfaction(functions, HarmonicCombiner())


def constraints(upstream, caps=None, bandwidth=math.inf) -> OptimizationConstraints:
    return OptimizationConstraints(
        upstream=Configuration(upstream),
        caps=caps or {},
        fmt=FMT,
        bandwidth_bps=bandwidth,
    )


FULL = {FRAME_RATE: 30.0, RESOLUTION: 1000.0, COLOR_DEPTH: 24.0}


class TestGridBasics:
    def test_unconstrained_matches_analytic(self):
        grid = GridSearchOptimizer(parameters(), satisfaction())
        analytic = ConfigurationOptimizer(parameters(), satisfaction())
        c = constraints(FULL)
        assert grid.optimize(c).configuration == analytic.optimize(c).configuration

    def test_single_parameter_fit_recovered_exactly(self):
        pinned = ParameterSet(
            [
                Parameter(FRAME_RATE, "fps", ContinuousDomain(0.0, 60.0)),
                Parameter(RESOLUTION, "pixels", DiscreteDomain([1000.0])),
                Parameter(COLOR_DEPTH, "bits", DiscreteDomain([24.0])),
            ]
        )
        grid = GridSearchOptimizer(pinned, satisfaction())
        # 19.75 fps * 1000 px * 24 bits / 10 = 47_400 bps.
        choice = grid.optimize(constraints(FULL, bandwidth=47_400.0))
        assert choice.configuration[FRAME_RATE] == pytest.approx(19.75)

    def test_respects_bandwidth(self):
        grid = GridSearchOptimizer(parameters(), satisfaction(two_params=True))
        bandwidth = 20_000.0
        choice = grid.optimize(constraints(FULL, bandwidth=bandwidth))
        assert choice is not None
        assert choice.required_bandwidth_bps <= bandwidth * (1 + 1e-9)

    def test_respects_caps(self):
        grid = GridSearchOptimizer(parameters(), satisfaction())
        choice = grid.optimize(constraints(FULL, caps={FRAME_RATE: 12.0}))
        assert choice.configuration[FRAME_RATE] <= 12.0

    def test_infeasible_region_is_none(self):
        grid = GridSearchOptimizer(parameters(), satisfaction())
        assert (
            grid.optimize(constraints(FULL, caps={RESOLUTION: 50.0})) is None
        )

    def test_grid_points_validated(self):
        with pytest.raises(ValidationError):
            GridSearchOptimizer(parameters(), satisfaction(), grid_points=1)


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(20))
    def test_analytic_matches_grid_single_preference(self, seed):
        """With one preference parameter the analytic optimizer is exact,
        so it must never lose to the grid (and may beat coarse grids)."""
        rng = random.Random(seed)
        analytic = ConfigurationOptimizer(parameters(), satisfaction())
        grid = GridSearchOptimizer(parameters(), satisfaction(), grid_points=25)
        c = constraints(
            {
                FRAME_RATE: rng.uniform(5.0, 60.0),
                RESOLUTION: rng.choice([100.0, 500.0, 1000.0]),
                COLOR_DEPTH: rng.choice([8.0, 16.0, 24.0]),
            },
            caps={FRAME_RATE: rng.uniform(10.0, 40.0)} if rng.random() < 0.5 else None,
            bandwidth=rng.uniform(5_000.0, 200_000.0),
        )
        a = analytic.optimize(c)
        g = grid.optimize(c)
        assert (a is None) == (g is None)
        if a is not None:
            assert a.satisfaction >= g.satisfaction - 1e-9

    @pytest.mark.parametrize("seed", range(20))
    def test_analytic_close_to_grid_two_preferences(self, seed):
        """With two preference parameters the ray+polish heuristic must
        stay within a small margin of the dense grid optimum."""
        rng = random.Random(100 + seed)
        analytic = ConfigurationOptimizer(parameters(), satisfaction(True))
        grid = GridSearchOptimizer(parameters(), satisfaction(True), grid_points=41)
        c = constraints(
            FULL,
            bandwidth=rng.uniform(5_000.0, 500_000.0),
        )
        a = analytic.optimize(c)
        g = grid.optimize(c)
        assert a is not None and g is not None
        assert a.satisfaction >= g.satisfaction - 0.05


@settings(max_examples=40, deadline=None)
@given(
    bandwidth=st.floats(min_value=1_000.0, max_value=1e6, allow_nan=False),
    fps=st.floats(min_value=0.0, max_value=60.0, allow_nan=False),
    cap=st.floats(min_value=0.0, max_value=60.0, allow_nan=False),
)
def test_property_both_optimizers_feasible_and_bounded(bandwidth, fps, cap):
    """Whatever the constraints, both optimizers return configurations
    inside the feasible region (or None consistently)."""
    c = constraints(
        {FRAME_RATE: fps, RESOLUTION: 1000.0, COLOR_DEPTH: 24.0},
        caps={FRAME_RATE: cap},
        bandwidth=bandwidth,
    )
    for optimizer in (
        ConfigurationOptimizer(parameters(), satisfaction()),
        GridSearchOptimizer(parameters(), satisfaction()),
    ):
        choice = optimizer.optimize(c)
        if choice is None:
            continue
        config = choice.configuration
        assert config[FRAME_RATE] <= min(fps, cap) + 1e-9
        assert config.required_bandwidth(FMT) <= bandwidth * (1 + 1e-6)
        assert 0.0 <= choice.satisfaction <= 1.0
