"""Smoke tests: every shipped example runs to completion.

The examples are part of the public deliverable; each must execute
end-to-end on a clean checkout.  Output is captured and spot-checked for
the one fact each example exists to demonstrate.
"""

from __future__ import annotations

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

EXPECTED_SNIPPETS = {
    "quickstart.py": "sender,T7,receiver",
    "mobile_news_delivery.py": "delivery report",
    "context_aware_conference.py": "driving (video dropped)",
    "heterogeneous_devices.py": "Proxy p1's encoder goes offline",
    "adaptive_streaming.py": "re-planning recovered",
    "web_image_adaptation.py": "two-stage composition",
    "algorithm_comparison.py": "QoS greedy",
    "failover_storm.py": "same seed, same digest: True",
    "gateway_quickstart.py": "drained cleanly",
    "policy_fastpath.py": "zero-hop fast path",
}


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTED_SNIPPETS), (
        "examples directory and smoke-test table disagree"
    )


@pytest.mark.parametrize("name", sorted(EXPECTED_SNIPPETS))
def test_example_runs(name, capsys):
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    output = capsys.readouterr().out.lower()
    assert EXPECTED_SNIPPETS[name].lower() in output
