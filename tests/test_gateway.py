"""End-to-end tests for the asyncio planning gateway.

Each test boots a real :class:`~repro.serve.gateway.PlanningGateway` on an
ephemeral port inside ``asyncio.run`` (this repo has no pytest-asyncio)
and speaks actual HTTP/1.1 to it through the shared codec.  The load
tests use the ``service_floor_ms`` knob so saturation is a function of
configuration, not of how fast the host machine plans.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.profiles.serialization import profile_to_dict
from repro.serve import (
    GatewayConfig,
    LoadgenConfig,
    PlanningGateway,
    run_loadgen,
)
from repro.serve.http11 import read_response, render_request
from repro.serve.protocol import encode_payload
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

SCENARIO = generate_scenario(
    SyntheticConfig(seed=7, n_services=10, n_formats=6, n_nodes=6)
)


def gateway_config(**overrides) -> GatewayConfig:
    defaults = dict(port=0, workers=2)
    defaults.update(overrides)
    return GatewayConfig(**defaults)


async def request(
    port: int,
    method: str,
    path: str,
    payload=None,
    keep_alive: bool = False,
):
    """One raw round-trip; returns (status, decoded body, headers)."""
    body = encode_payload(payload) if payload is not None else b""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(render_request(method, path, body, keep_alive=keep_alive))
        await writer.drain()
        response = await asyncio.wait_for(read_response(reader), timeout=10.0)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    decoded = json.loads(response.body) if response.body else {}
    return response.status, decoded, response.headers


def run_against_gateway(coro_factory, **config_overrides):
    """Boot a gateway, run ``coro_factory(gateway)``, always drain."""

    async def scenario():
        gateway = PlanningGateway(SCENARIO, gateway_config(**config_overrides))
        await gateway.start()
        try:
            return await coro_factory(gateway)
        finally:
            await gateway.drain()

    return asyncio.run(scenario())


class TestPlanEndpoint:
    def test_plan_succeeds_and_caches(self):
        async def scenario(gateway):
            first = await request(gateway.port, "POST", "/plan", {})
            second = await request(gateway.port, "POST", "/plan", {})
            return first, second

        first, second = run_against_gateway(scenario)
        status, payload, _ = first
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["success"] is True
        assert payload["path"]
        assert payload["generation"] == 1
        assert payload["cache_hit"] is False
        assert second[1]["cache_hit"] is True

    def test_inline_device_profile_is_honored(self):
        async def scenario(gateway):
            body = {"device": profile_to_dict(SCENARIO.device),
                    "deadline_ms": 2000}
            return await request(gateway.port, "POST", "/plan", body)

        status, payload, _ = run_against_gateway(scenario)
        assert status == 200
        assert payload["status"] in ("ok", "infeasible")

    def test_malformed_body_is_400(self):
        async def scenario(gateway):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gateway.port
            )
            writer.write(render_request("POST", "/plan", b"not json",
                                        keep_alive=False))
            await writer.drain()
            response = await read_response(reader)
            writer.close()
            return response.status, json.loads(response.body)

        status, payload = run_against_gateway(scenario)
        assert status == 400
        assert payload["status"] == "invalid"

    def test_mistyped_nested_profile_fields_are_400(self):
        # Valid JSON whose nested profile fields carry the wrong types used
        # to escape decode_plan_request as AttributeError/TypeError and
        # kill the connection task without a response.
        async def scenario(gateway):
            bad = {
                "user": {
                    "profile": "user",
                    "user_id": "u",
                    "combiner": "minimum",
                    "preferences": [],
                },
                "content": None,
            }
            first = await request(gateway.port, "POST", "/plan", bad)
            bad_content = {
                "content": {"profile": "content", "content_id": "c",
                            "variants": 5}
            }
            second = await request(gateway.port, "POST", "/plan", bad_content)
            # The gateway must still serve after both rejections.
            after = await request(gateway.port, "POST", "/plan", {})
            metrics = await request(gateway.port, "GET", "/metrics")
            return first, second, after, metrics

        first, second, after, metrics = run_against_gateway(scenario)
        assert first[0] == second[0] == 400
        assert first[1]["status"] == second[1]["status"] == "invalid"
        assert after[0] == 200
        counters = metrics[1]["metrics"]["counters"]
        assert counters["invalid"] == 2
        assert counters["errors"] == 0

    def test_dispatch_crash_is_answered_500_not_dropped(self):
        # Anything the typed error paths miss must still produce a
        # response: the connection handler's catch-all meters it and
        # answers 500.
        async def scenario(gateway):
            original = gateway._dispatch

            async def exploding_dispatch(request):
                raise RuntimeError("forced failure")

            gateway._dispatch = exploding_dispatch
            crashed = await request(gateway.port, "GET", "/healthz")
            del gateway.__dict__["_dispatch"]
            assert gateway._dispatch.__func__ is original.__func__
            after = await request(gateway.port, "GET", "/healthz")
            metrics = await request(gateway.port, "GET", "/metrics")
            return crashed, after, metrics

        crashed, after, metrics = run_against_gateway(scenario)
        assert crashed[0] == 500
        assert crashed[1]["status"] == "error"
        assert "RuntimeError" in crashed[1]["detail"]
        assert after[0] == 200
        assert metrics[1]["metrics"]["counters"]["errors"] == 1

    def test_unknown_route_404_and_wrong_method_405(self):
        async def scenario(gateway):
            missing = await request(gateway.port, "GET", "/nope")
            wrong = await request(gateway.port, "GET", "/plan")
            return missing[0], wrong[0]

        assert run_against_gateway(scenario) == (404, 405)

    def test_http_garbage_gets_400_not_a_crash(self):
        async def scenario(gateway):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gateway.port
            )
            writer.write(b"COMPLETE GARBAGE\r\n\r\n")
            await writer.drain()
            response = await read_response(reader)
            writer.close()
            # The gateway must still serve after the bad connection.
            after = await request(gateway.port, "GET", "/healthz")
            return response.status, after[0]

        assert run_against_gateway(scenario) == (400, 200)

    def test_keep_alive_serves_multiple_requests(self):
        async def scenario(gateway):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gateway.port
            )
            statuses = []
            for _ in range(3):
                writer.write(render_request("POST", "/plan",
                                            encode_payload({})))
                await writer.drain()
                response = await read_response(reader)
                statuses.append(response.status)
            writer.close()
            return statuses

        assert run_against_gateway(scenario) == [200, 200, 200]


class TestAdmission:
    def test_rate_limited_client_gets_429_with_retry_after(self):
        async def scenario(gateway):
            outcomes = []
            for _ in range(4):
                outcomes.append(
                    await request(gateway.port, "POST", "/plan",
                                  {"client": "greedy", "deadline_ms": 2000})
                )
            return outcomes

        outcomes = run_against_gateway(
            scenario, rate_per_s=0.001, burst=2, workers=1
        )
        statuses = [status for status, _, _ in outcomes]
        assert statuses[:2] == [200, 200]
        assert statuses[2] == statuses[3] == 429
        _, payload, headers = outcomes[2]
        assert payload["status"] == "rate_limited"
        assert float(headers["retry-after"]) > 0

    def test_queue_overflow_sheds_429(self):
        async def scenario(gateway):
            tasks = [
                asyncio.create_task(
                    request(gateway.port, "POST", "/plan",
                            {"deadline_ms": 2000})
                )
                for _ in range(10)
            ]
            return await asyncio.gather(*tasks)

        outcomes = run_against_gateway(
            scenario, workers=1, queue_depth=2, service_floor_ms=50.0
        )
        statuses = sorted(status for status, _, _ in outcomes)
        assert 429 in statuses  # some were shed at the bounded queue
        assert 200 in statuses  # and the gateway kept serving the rest
        shed = next(p for s, p, _ in outcomes if s == 429)
        assert shed["status"] == "shed"

    def test_saturated_planner_pool_sheds_instead_of_queueing(self):
        # A planning thread abandoned past its deadline cannot be
        # cancelled; while such work saturates the pool, new submissions
        # are shed (429 shed_busy) instead of queueing invisibly inside
        # the executor, and serving resumes once the pool frees up.
        async def scenario(gateway):
            with gateway._executor_lock:
                gateway._executor_outstanding = gateway.config.workers
            shed = await request(gateway.port, "POST", "/plan",
                                 {"deadline_ms": 2000})
            with gateway._executor_lock:
                gateway._executor_outstanding = 0
            recovered = await request(gateway.port, "POST", "/plan", {})
            metrics = await request(gateway.port, "GET", "/metrics")
            return shed, recovered, metrics

        shed, recovered, metrics = run_against_gateway(scenario, workers=1)
        status, payload, headers = shed
        assert status == 429
        assert payload["status"] == "shed"
        assert float(headers["retry-after"]) > 0
        assert recovered[0] == 200
        assert metrics[1]["metrics"]["counters"]["shed_busy"] == 1

    def test_deadline_expiry_in_queue_is_504(self):
        async def scenario(gateway):
            tasks = [
                asyncio.create_task(
                    request(gateway.port, "POST", "/plan",
                            {"deadline_ms": 40})
                )
                for _ in range(8)
            ]
            return await asyncio.gather(*tasks)

        outcomes = run_against_gateway(
            scenario, workers=1, queue_depth=64, service_floor_ms=60.0
        )
        statuses = [status for status, _, _ in outcomes]
        assert 504 in statuses
        timed_out = next(p for s, p, _ in outcomes if s == 504)
        assert timed_out["status"] == "timeout"


class TestOperationalEndpoints:
    def test_healthz_readyz_metrics(self):
        async def scenario(gateway):
            await request(gateway.port, "POST", "/plan", {})
            health = await request(gateway.port, "GET", "/healthz")
            ready = await request(gateway.port, "GET", "/readyz")
            metrics = await request(gateway.port, "GET", "/metrics")
            return health, ready, metrics

        health, ready, metrics = run_against_gateway(scenario)
        assert health[0] == ready[0] == metrics[0] == 200
        assert health[1]["status"] == "alive"
        assert ready[1]["status"] == "ready"
        document = metrics[1]
        assert document["schema"] == "repro.metrics/1"
        assert document["section"] == "gateway"
        counters = document["metrics"]["counters"]
        assert counters["received"] == 1
        assert counters["planned"] == 1
        assert document["metrics"]["latency_ms"]["count"] == 1

    def test_metrics_counters_track_every_outcome_class(self):
        async def scenario(gateway):
            await request(gateway.port, "POST", "/plan", {})
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gateway.port
            )
            writer.write(render_request("POST", "/plan", b"broken",
                                        keep_alive=False))
            await writer.drain()
            await read_response(reader)
            writer.close()
            await request(gateway.port, "GET", "/nope")
            metrics = await request(gateway.port, "GET", "/metrics")
            return metrics[1]["metrics"]["counters"]

        counters = run_against_gateway(scenario)
        assert counters["planned"] == 1
        assert counters["invalid"] == 1
        assert counters["connections"] >= 3


class TestHotSwap:
    def test_reload_bumps_generation_and_clears_cache(self):
        async def scenario(gateway):
            before = await request(gateway.port, "POST", "/plan", {})
            reload_body = {
                "synthetic": {"seed": 11, "n_services": 6, "n_formats": 5,
                              "n_nodes": 4}
            }
            reloaded = await request(gateway.port, "POST", "/admin/reload",
                                     reload_body)
            after = await request(gateway.port, "POST", "/plan", {})
            metrics = await request(gateway.port, "GET", "/metrics")
            return before, reloaded, after, metrics

        before, reloaded, after, metrics = run_against_gateway(scenario)
        assert before[1]["generation"] == 1
        assert reloaded[0] == 200
        assert reloaded[1]["status"] == "reloaded"
        assert reloaded[1]["generation"] == 2
        assert reloaded[1]["invalidated"] >= 1
        # Plans after the swap come from the new world: generation 2 and a
        # cold cache (the old entry was for the old scenario anyway).
        assert after[1]["generation"] == 2
        assert after[1]["cache_hit"] is False
        assert metrics[1]["metrics"]["counters"]["reloads"] == 1

    def test_swap_scenario_api_is_atomic_per_request(self):
        replacement = generate_scenario(
            SyntheticConfig(seed=20, n_services=6, n_formats=5, n_nodes=4)
        )

        async def scenario(gateway):
            summary = gateway.swap_scenario(replacement)
            response = await request(gateway.port, "POST", "/plan", {})
            return summary, response

        summary, response = run_against_gateway(scenario)
        assert summary["generation"] == 2
        assert response[1]["generation"] == 2

    def test_reload_rejects_malformed_bodies(self):
        async def scenario(gateway):
            bad_json = await request(gateway.port, "POST", "/admin/reload",
                                     {"synthetic": {"seed": 1, "bogus": 2}})
            not_a_doc = await request(gateway.port, "POST", "/admin/reload",
                                      {"unrelated": True})
            still_up = await request(gateway.port, "POST", "/plan", {})
            return bad_json[0], not_a_doc[0], still_up[0]

        assert run_against_gateway(scenario) == (400, 400, 200)


class TestDrain:
    def test_drain_answers_everything_and_reports_metrics(self):
        async def scenario():
            gateway = PlanningGateway(SCENARIO, gateway_config())
            await gateway.start()
            port = gateway.port
            served = await request(port, "POST", "/plan", {})
            final = await gateway.drain()
            assert gateway.draining
            return served, final

        served, final = asyncio.run(scenario())
        assert served[0] == 200
        assert final["schema"] == "repro.metrics/1"
        assert final["metrics"]["draining"] is True
        assert final["metrics"]["counters"]["planned"] == 1
        assert final["metrics"]["queue_depth"] == 0

    def test_metrics_document_works_after_the_loop_exits(self):
        # Inspecting a gateway after asyncio.run returned must not touch
        # asyncio.get_event_loop() (warns/raises without a running loop);
        # uptime comes from the loop start() pinned.
        async def scenario():
            gateway = PlanningGateway(SCENARIO, gateway_config())
            await gateway.start()
            await request(gateway.port, "POST", "/plan", {})
            await gateway.drain()
            return gateway

        gateway = asyncio.run(scenario())
        document = gateway.metrics_document()
        assert document["schema"] == "repro.metrics/1"
        assert document["metrics"]["uptime_s"] >= 0.0
        assert document["metrics"]["counters"]["planned"] == 1
        # A never-started gateway reports zero uptime rather than raising.
        cold = PlanningGateway(SCENARIO, gateway_config())
        assert cold.metrics_document()["metrics"]["uptime_s"] == 0.0

    def test_draining_gateway_rejects_new_plans_503(self):
        async def scenario():
            gateway = PlanningGateway(SCENARIO, gateway_config())
            await gateway.start()
            port = gateway.port
            # Open a keep-alive connection before the listener closes.
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            drain_task = asyncio.create_task(gateway.drain())
            await asyncio.sleep(0.05)  # listener now closed, draining set
            writer.write(render_request("POST", "/plan", encode_payload({})))
            await writer.drain()
            response = await read_response(reader)
            writer.close()
            await drain_task
            return response.status, json.loads(response.body)

        status, payload = asyncio.run(scenario())
        assert status == 503
        assert payload["status"] == "draining"

    def test_request_drain_unblocks_run(self):
        async def scenario():
            gateway = PlanningGateway(SCENARIO, gateway_config())
            run_task = asyncio.create_task(
                gateway.run(install_signals=False)
            )
            for _ in range(100):
                await asyncio.sleep(0.01)
                try:
                    gateway.port
                    break
                except Exception:
                    continue
            served = await request(gateway.port, "POST", "/plan", {})
            gateway.request_drain()
            final = await asyncio.wait_for(run_task, timeout=10.0)
            return served, final

        served, final = asyncio.run(scenario())
        assert served[0] == 200
        assert final["metrics"]["counters"]["planned"] == 1


class TestLoadgenDeterminism:
    LOADGEN = dict(requests=30, rate_per_s=300.0, seed=9, distinct=6)

    def run_campaign(self):
        async def scenario():
            gateway = PlanningGateway(SCENARIO, gateway_config())
            await gateway.start()
            try:
                return await run_loadgen(
                    SCENARIO, LoadgenConfig(port=gateway.port, **self.LOADGEN)
                )
            finally:
                await gateway.drain()

        return asyncio.run(scenario())

    def test_same_seed_fresh_daemons_identical_outcomes(self):
        first = self.run_campaign()
        second = self.run_campaign()
        assert first.outcome_digest() == second.outcome_digest()
        assert [o.digest_key() for o in first.outcomes] == [
            o.digest_key() for o in second.outcomes
        ]

    def test_report_accounting_is_consistent(self):
        report = self.run_campaign()
        assert report.requests == 30
        assert report.completed == 30
        assert report.failed == 0
        assert report.client_failures == 0
        percentiles = report.latency_percentiles()
        assert percentiles["p50"] <= percentiles["p95"] <= percentiles["p99"]
        document = report.to_dict()
        assert document["schema"] == "repro.metrics/1"
        assert document["section"] == "loadgen"
        assert document["metrics"]["outcome_digest"] == report.outcome_digest()
        assert "outcome digest:" in report.summary()

    def test_different_seed_changes_the_arrival_process(self):
        # Outcomes may coincide, but the request bodies/offsets are a pure
        # function of the seed — verify the campaign plumbing honors it.
        base = self.run_campaign()
        assert base.rate_per_s == 300.0
        assert base.seed == 9

    def test_standalone_gateway_reports_no_worker_distribution(self):
        report = self.run_campaign()
        assert report.worker_distribution() == {}
        assert "per worker" not in report.summary()


class TestLoadgenGroupMode:
    GROUP = dict(
        requests=12, rate_per_s=300.0, seed=9, distinct=8, group_size=4,
        deadline_ms=5000.0,
    )

    def run_campaign(self, **overrides):
        options = dict(self.GROUP)
        options.update(overrides)

        async def scenario():
            gateway = PlanningGateway(SCENARIO, gateway_config())
            await gateway.start()
            try:
                return await run_loadgen(
                    SCENARIO, LoadgenConfig(port=gateway.port, **options)
                )
            finally:
                await gateway.drain()

        return asyncio.run(scenario())

    def test_group_campaign_serves_and_reports(self):
        report = self.run_campaign()
        assert report.completed == 12
        assert report.group_size == 4
        served = [o for o in report.outcomes if o.status == 200]
        assert all(len(o.class_satisfactions) == 4 for o in served)
        percentiles = report.class_satisfaction_percentiles()
        assert percentiles["p10"] <= percentiles["p50"] <= percentiles["p95"]
        document = report.to_dict()
        group = document["metrics"]["group"]
        assert group["size"] == 4
        assert group["saved_bps_total"] >= 0.0
        assert "class satisfaction:" in report.summary()
        assert "bandwidth saved:" in report.summary()

    def test_same_seed_identical_group_outcomes(self):
        first = self.run_campaign()
        second = self.run_campaign()
        assert first.outcome_digest() == second.outcome_digest()

    def test_group_size_cannot_exceed_distinct(self):
        with pytest.raises(Exception) as excinfo:
            self.run_campaign(group_size=16)
        assert "cannot exceed distinct" in str(excinfo.value)

    def test_per_session_reports_omit_the_group_block(self):
        report = self.run_campaign(group_size=0)
        assert "group" not in report.to_dict()["metrics"]
        assert "class satisfaction" not in report.summary()


class TestWorkerIdentity:
    """A gateway configured as a cluster member stamps and meters."""

    def test_worker_id_header_on_every_response_class(self):
        async def scenario(gateway):
            plan = await request(gateway.port, "POST", "/plan", {})
            metrics = await request(gateway.port, "GET", "/metrics")
            missing = await request(gateway.port, "GET", "/nope")
            return plan, metrics, missing

        responses = run_against_gateway(
            scenario, worker_id=3, cluster_size=4
        )
        for status, _, headers in responses:
            assert headers["x-worker-id"] == "3"

    def test_standalone_gateway_adds_no_identity(self):
        async def scenario(gateway):
            return await request(gateway.port, "POST", "/plan", {})

        _, _, headers = run_against_gateway(scenario)
        assert "x-worker-id" not in headers

    def test_protocol_error_response_carries_identity(self):
        async def scenario(gateway):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gateway.port
            )
            writer.write(b"BOGUS\r\n\r\n")
            await writer.drain()
            response = await read_response(reader)
            writer.close()
            return response

        response = run_against_gateway(scenario, worker_id=1, cluster_size=2)
        assert response.status == 400
        assert response.headers["x-worker-id"] == "1"

    def test_hinted_requests_meter_hits_and_misses(self):
        from repro.serve import ShardRouter

        router = ShardRouter.for_cluster(2)
        owned = next(
            f"hint-{i}" for i in range(100) if router.route(f"hint-{i}") == 0
        )
        foreign = next(
            f"hint-{i}" for i in range(100) if router.route(f"hint-{i}") == 1
        )

        async def scenario(gateway):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", gateway.port
            )
            for hint in (owned, owned, foreign):
                writer.write(
                    render_request(
                        "POST", "/plan", encode_payload({}),
                        headers={"x-shard-hint": hint},
                    )
                )
                await writer.drain()
                await read_response(reader)
            writer.close()
            return gateway.metrics.counters

        counters = run_against_gateway(scenario, worker_id=0, cluster_size=2)
        assert counters["shard_hits"] == 2
        assert counters["shard_misses"] == 1

    def test_unhinted_requests_meter_nothing(self):
        async def scenario(gateway):
            await request(gateway.port, "POST", "/plan", {})
            return gateway.metrics.counters

        counters = run_against_gateway(scenario, worker_id=0, cluster_size=2)
        assert counters["shard_hits"] == 0
        assert counters["shard_misses"] == 0

    def test_private_port_serves_the_same_dispatch(self):
        async def scenario(gateway):
            assert gateway.private_port is not None
            assert gateway.private_port != gateway.port
            plan = await request(gateway.private_port, "POST", "/plan", {})
            metrics = await request(gateway.private_port, "GET", "/metrics")
            return plan, metrics

        plan, metrics = run_against_gateway(
            scenario, worker_id=0, cluster_size=2, private_port=0
        )
        assert plan[0] == 200
        assert metrics[0] == 200
        assert metrics[1]["metrics"]["worker_id"] == 0


class TestPlanGroupEndpoint:
    """``POST /plan-group``: shared adaptation trees over the wire."""

    @staticmethod
    def _receivers(n, sessions=1):
        from repro.planner import device_variants

        return [
            {
                "class_id": f"class-{i}",
                "device": profile_to_dict(variant),
                "sessions": sessions,
            }
            for i, variant in enumerate(
                device_variants(SCENARIO.device, n)
            )
        ]

    def test_group_plans_and_caches(self):
        async def scenario(gateway):
            body = {"receivers": self._receivers(4, sessions=5),
                    "deadline_ms": 5000}
            first = await request(gateway.port, "POST", "/plan-group", body)
            second = await request(gateway.port, "POST", "/plan-group", body)
            return first, second, dict(gateway.metrics.counters)

        first, second, counters = run_against_gateway(scenario)
        status, payload, _ = first
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["success"] is True
        assert payload["degraded"] is False
        assert payload["classes"] == 4
        assert payload["sessions"] == 20
        assert len(payload["branches"]) == 4
        assert payload["fallbacks"] == []
        assert payload["tree"]["edges"] >= 1
        assert payload["cache_hit"] is False
        assert second[1]["cache_hit"] is True
        assert second[1]["tree"]["digest"] == payload["tree"]["digest"]
        assert counters["groups"] == 2
        assert counters["group_sessions"] == 40
        assert counters["group_branches"] == 8
        assert counters["group_fallbacks"] == 0

    def test_duplicate_receivers_are_400(self):
        async def scenario(gateway):
            receivers = self._receivers(2)
            dup = {"receivers": receivers + [receivers[0]]}
            return await request(gateway.port, "POST", "/plan-group", dup)

        status, payload, _ = run_against_gateway(scenario)
        assert status == 400
        assert payload["status"] == "invalid"
        assert "duplicate receiver class" in payload["detail"]

    def test_missing_and_empty_receivers_are_400(self):
        async def scenario(gateway):
            missing = await request(gateway.port, "POST", "/plan-group", {})
            empty = await request(
                gateway.port, "POST", "/plan-group", {"receivers": []}
            )
            return missing, empty

        missing, empty = run_against_gateway(scenario)
        assert missing[0] == 400
        assert "receivers" in missing[1]["detail"]
        assert empty[0] == 400

    def test_top_level_device_is_400(self):
        async def scenario(gateway):
            body = {
                "receivers": self._receivers(2),
                "device": profile_to_dict(SCENARIO.device),
            }
            return await request(gateway.port, "POST", "/plan-group", body)

        status, payload, _ = run_against_gateway(scenario)
        assert status == 400
        assert "receivers" in payload["detail"]

    def test_get_is_405(self):
        async def scenario(gateway):
            return await request(gateway.port, "GET", "/plan-group")

        status, _, _ = run_against_gateway(scenario)
        assert status == 405

    def test_infeasible_class_is_a_fallback_not_an_error(self):
        async def scenario(gateway):
            receivers = self._receivers(2)
            receivers.append({
                "class_id": "zz-brick",
                "device": {
                    "profile": "device",
                    "device_id": "brick",
                    "decoders": ["no-such-codec"],
                },
            })
            return await request(
                gateway.port, "POST", "/plan-group",
                {"receivers": receivers, "deadline_ms": 5000},
            )

        status, payload, _ = run_against_gateway(scenario)
        assert status == 200
        assert payload["success"] is True
        assert len(payload["branches"]) == 2
        assert [f["class_id"] for f in payload["fallbacks"]] == ["zz-brick"]
        assert payload["fallbacks"][0]["reason"]

    def test_hot_swap_invalidates_group_trees(self):
        async def scenario(gateway):
            body = {"receivers": self._receivers(3), "deadline_ms": 5000}
            first = await request(gateway.port, "POST", "/plan-group", body)
            gateway.swap_scenario(SCENARIO)
            second = await request(gateway.port, "POST", "/plan-group", body)
            return first, second

        first, second = run_against_gateway(scenario)
        assert first[1]["generation"] == 1
        assert second[1]["generation"] == 2
        assert second[1]["cache_hit"] is False
