"""Unit tests for the baseline selectors and the shared path evaluator."""

from __future__ import annotations

import math

import pytest

from repro.core.baselines import (
    CheapestPathSelector,
    ExhaustiveSelector,
    FewestHopsSelector,
    RandomPathSelector,
    WidestPathSelector,
    evaluate_path,
)
from repro.core.optimizer import ConfigurationOptimizer
from repro.core.selection import QoSPathSelector
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

from tests.test_selection import fps_satisfaction, pinned_parameters, tiny_world


def all_baselines(graph, registry, parameters, satisfaction, budget=math.inf):
    return {
        "exhaustive": ExhaustiveSelector(graph, registry, parameters, satisfaction, budget),
        "fewest-hops": FewestHopsSelector(graph, registry, parameters, satisfaction, budget),
        "widest": WidestPathSelector(graph, registry, parameters, satisfaction, budget),
        "cheapest": CheapestPathSelector(graph, registry, parameters, satisfaction, budget),
        "random": RandomPathSelector(graph, registry, parameters, satisfaction, budget, seed=3),
    }


class TestEvaluatePath:
    def test_matches_selector_on_winning_path(self, fig6):
        graph = fig6.build_graph()
        satisfaction = fig6.user.satisfaction()
        optimizer = ConfigurationOptimizer(fig6.parameters, satisfaction)
        greedy = fig6.selector(graph=graph).run()
        # Reconstruct the winning path's edges.
        edges = []
        for source, target, fmt in zip(
            greedy.path, greedy.path[1:], greedy.formats
        ):
            edges.append(
                next(
                    e
                    for e in graph.out_edges(source)
                    if e.target == target and e.format_name == fmt
                )
            )
        evaluation = evaluate_path(graph, edges, fig6.registry, optimizer)
        assert evaluation is not None
        _, satisfaction_value, cost = evaluation
        assert satisfaction_value == pytest.approx(greedy.satisfaction)
        assert cost == pytest.approx(greedy.accumulated_cost)

    def test_empty_path_is_none(self, fig6):
        graph = fig6.build_graph()
        optimizer = ConfigurationOptimizer(
            fig6.parameters, fig6.user.satisfaction()
        )
        assert evaluate_path(graph, [], fig6.registry, optimizer) is None

    def test_budget_violation_is_none(self, fig6):
        graph = fig6.build_graph()
        optimizer = ConfigurationOptimizer(
            fig6.parameters, fig6.user.satisfaction()
        )
        edges = [graph.out_edges("sender")[0]]
        assert (
            evaluate_path(graph, edges, fig6.registry, optimizer, budget=0.0)
            is None
        )


class TestExhaustive:
    def test_equals_greedy_on_the_paper_graph(self, fig6):
        graph = fig6.build_graph()
        satisfaction = fig6.user.satisfaction()
        greedy = fig6.selector(graph=graph).run()
        exhaustive = ExhaustiveSelector(
            graph, fig6.registry, fig6.parameters, satisfaction, fig6.user.budget
        )
        result = exhaustive.run()
        assert result.success
        assert result.satisfaction == pytest.approx(greedy.satisfaction)
        assert result.path == greedy.path

    def test_reports_paths_examined(self, fig6):
        graph = fig6.build_graph()
        exhaustive = ExhaustiveSelector(
            graph, fig6.registry, fig6.parameters, fig6.user.satisfaction()
        )
        exhaustive.run()
        assert exhaustive.paths_examined > 0
        assert not exhaustive.hit_enumeration_bound

    def test_enumeration_bound_flag(self, fig6):
        graph = fig6.build_graph()
        exhaustive = ExhaustiveSelector(
            graph,
            fig6.registry,
            fig6.parameters,
            fig6.user.satisfaction(),
            max_paths=2,
        )
        exhaustive.run()
        assert exhaustive.hit_enumeration_bound

    def test_failure_without_path(self):
        registry, graph = tiny_world(decoders=("F9",))
        result = ExhaustiveSelector(
            graph, registry, pinned_parameters(), fps_satisfaction()
        ).run()
        assert not result.success


class TestClassicBaselines:
    def test_fewest_hops_finds_a_shortest_route(self, fig6):
        graph = fig6.build_graph()
        result = FewestHopsSelector(
            graph, fig6.registry, fig6.parameters, fig6.user.satisfaction()
        ).run()
        assert result.success
        assert len(result.path) == 3  # sender, one transcoder, receiver

    def test_widest_path_maximizes_bottleneck(self):
        registry, graph = tiny_world(t1_bw_fps=25.0, t2_bw_fps=15.0)
        result = WidestPathSelector(
            graph, registry, pinned_parameters(), fps_satisfaction()
        ).run()
        assert result.success
        # F1 has smaller frames, so the T1 route carries more frames/sec;
        # bit-bandwidth is identical, so either route may win — the widest
        # selector only promises *a* max-bottleneck path.
        assert result.path[0] == "sender" and result.path[-1] == "receiver"

    def test_cheapest_path_minimizes_cost(self):
        registry, graph = tiny_world(t1_cost=5.0, t2_cost=0.5)
        result = CheapestPathSelector(
            graph, registry, pinned_parameters(), fps_satisfaction()
        ).run()
        assert result.success
        assert "T2" in result.path
        assert result.accumulated_cost == pytest.approx(0.5)

    def test_random_is_deterministic_per_seed(self, fig6):
        graph = fig6.build_graph()
        a = RandomPathSelector(
            graph, fig6.registry, fig6.parameters, fig6.user.satisfaction(), seed=11
        ).run()
        b = RandomPathSelector(
            graph, fig6.registry, fig6.parameters, fig6.user.satisfaction(), seed=11
        ).run()
        assert a.path == b.path

    def test_all_baselines_fail_gracefully(self):
        registry, graph = tiny_world(decoders=("F9",))
        for name, selector in all_baselines(
            graph, registry, pinned_parameters(), fps_satisfaction()
        ).items():
            result = selector.run()
            assert not result.success, name


class TestGreedyDominatesBaselines:
    @pytest.mark.parametrize("seed", range(8))
    def test_greedy_at_least_as_good_as_every_baseline(self, seed):
        scenario = generate_scenario(SyntheticConfig(seed=seed, n_services=16))
        graph = scenario.build_graph()
        satisfaction = scenario.user.satisfaction()
        greedy = QoSPathSelector.for_user(
            graph, scenario.registry, scenario.parameters, scenario.user
        ).run()
        for name, selector in all_baselines(
            graph,
            scenario.registry,
            scenario.parameters,
            satisfaction,
            scenario.user.budget,
        ).items():
            result = selector.run()
            if result.success:
                assert greedy.satisfaction >= result.satisfaction - 1e-9, name

    @pytest.mark.parametrize("seed", range(8))
    def test_greedy_equals_exhaustive(self, seed):
        """The Figure 5 optimality claim, checked against brute force."""
        scenario = generate_scenario(SyntheticConfig(seed=seed, n_services=16))
        graph = scenario.build_graph()
        greedy = QoSPathSelector.for_user(
            graph, scenario.registry, scenario.parameters, scenario.user
        ).run()
        exhaustive = ExhaustiveSelector(
            graph,
            scenario.registry,
            scenario.parameters,
            scenario.user.satisfaction(),
            scenario.user.budget,
        ).run()
        assert greedy.success == exhaustive.success
        if greedy.success:
            assert greedy.satisfaction == pytest.approx(exhaustive.satisfaction)
