"""Property-based round-trip tests: serialization and chain execution.

Hypothesis generates random service descriptors and chain/cap structures;
the properties assert that

- WSDL and dict serialization are lossless for any valid descriptor;
- executing a chain applies exactly the composition of its caps (quality
  monotonicity end to end);
- scenario JSON persistence preserves selection behaviour on random
  synthetic scenarios.
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.core.configuration import Configuration
from repro.core.parameters import COLOR_DEPTH, FRAME_RATE, RESOLUTION
from repro.discovery.wsdl import descriptor_from_wsdl, descriptor_to_wsdl
from repro.formats.format import MediaFormat
from repro.formats.registry import FormatRegistry
from repro.formats.variants import ContentVariant
from repro.profiles.serialization import descriptor_from_dict, descriptor_to_dict
from repro.services.chains import chain_from_services
from repro.services.descriptor import (
    ServiceDescriptor,
    receiver_descriptor,
    sender_descriptor,
)
from repro.workloads.io import scenario_from_dict, scenario_to_dict
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

format_names = st.lists(
    st.from_regex(r"F[0-9]{1,3}", fullmatch=True),
    min_size=1,
    max_size=4,
    unique=True,
)

cap_values = st.dictionaries(
    st.sampled_from([FRAME_RATE, RESOLUTION, COLOR_DEPTH]),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    max_size=3,
)


@st.composite
def descriptors(draw):
    inputs = draw(format_names)
    outputs = draw(
        format_names.filter(lambda names: not set(names) & set(inputs))
    )
    return ServiceDescriptor(
        service_id=draw(st.from_regex(r"T[0-9]{1,3}", fullmatch=True)),
        input_formats=tuple(inputs),
        output_formats=tuple(outputs),
        output_caps=draw(cap_values),
        cost=draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False)),
        cpu_factor=draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False)),
        memory_mb=draw(st.floats(min_value=0.0, max_value=4096.0, allow_nan=False)),
        provider=draw(st.sampled_from(["", "acme", "globex"])),
        description=draw(st.sampled_from(["", "a transcoder"])),
    )


@settings(max_examples=60, deadline=None)
@given(descriptor=descriptors())
def test_wsdl_round_trip_lossless(descriptor):
    assert descriptor_from_wsdl(descriptor_to_wsdl(descriptor)) == descriptor


@settings(max_examples=60, deadline=None)
@given(descriptor=descriptors())
def test_dict_round_trip_lossless_through_json(descriptor):
    data = json.loads(json.dumps(descriptor_to_dict(descriptor)))
    assert descriptor_from_dict(data) == descriptor


# ----------------------------------------------------------------------
# Chain execution = composition of caps
# ----------------------------------------------------------------------

chain_caps = st.lists(
    st.dictionaries(
        st.sampled_from([FRAME_RATE, RESOLUTION, COLOR_DEPTH]),
        st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
        max_size=3,
    ),
    min_size=1,
    max_size=4,
)

source_values = st.fixed_dictionaries(
    {
        FRAME_RATE: st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        RESOLUTION: st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        COLOR_DEPTH: st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    }
)


@settings(max_examples=60, deadline=None)
@given(caps_list=chain_caps, values=source_values)
def test_chain_execution_composes_caps(caps_list, values):
    """Executing an n-stage chain caps every parameter by the minimum of
    the source value and every stage's cap (no more, no less)."""
    registry = FormatRegistry()
    names = [f"C{i}" for i in range(len(caps_list) + 1)]
    for name in names:
        registry.define(name, compression_ratio=10.0)

    services = [sender_descriptor("sender", (names[0],))]
    for index, caps in enumerate(caps_list):
        services.append(
            ServiceDescriptor(
                service_id=f"S{index}",
                input_formats=(names[index],),
                output_formats=(names[index + 1],),
                output_caps=caps,
            )
        )
    services.append(receiver_descriptor("receiver", (names[-1],)))
    chain = chain_from_services(services, names)

    variant = ContentVariant(
        format=registry.get(names[0]),
        configuration=Configuration(values),
    )
    delivered = chain.execute(variant, registry)

    for parameter, source in values.items():
        expected = source
        for caps in caps_list:
            if parameter in caps:
                expected = min(expected, caps[parameter])
        assert delivered.configuration[parameter] == expected
    assert delivered.format.name == names[-1]


# ----------------------------------------------------------------------
# Scenario persistence preserves behaviour
# ----------------------------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_scenario_persistence_preserves_selection(seed):
    original = generate_scenario(SyntheticConfig(seed=seed, n_services=10))
    rebuilt = scenario_from_dict(
        json.loads(json.dumps(scenario_to_dict(original)))
    )
    a = original.select(record_trace=False)
    b = rebuilt.select(record_trace=False)
    assert a.success == b.success
    if a.success:
        assert a.path == b.path
        assert abs(a.satisfaction - b.satisfaction) < 1e-12
