"""Wire-format tests for policy documents.

Round trips must be exact (document -> dict -> document preserves every
field), and every malformed input must surface as a typed
:class:`ValidationError` — never a bare ``KeyError``/``TypeError``
traceback — because the gateway converts exactly that type into a 400.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ValidationError
from repro.policy import (
    BitrateUnder,
    CodecMatch,
    Decodes,
    DeviceIn,
    FormatIn,
    PolicyDocument,
    PolicyRule,
    ResolutionWithin,
    load_policy,
    policy_from_dict,
    policy_to_dict,
    save_policy,
)
from repro.policy.serialization import (
    POLICY_DOCUMENT,
    POLICY_VERSION,
    predicate_from_dict,
    predicate_to_dict,
    rule_from_dict,
    rule_to_dict,
)

FULL_DOCUMENT = PolicyDocument(
    name="edge-policy",
    description="every predicate and action once",
    rules=(
        PolicyRule(
            rule_id="skip-native",
            action="skip",
            predicates=(
                CodecMatch("h264"),
                FormatIn(("mp4", "webm")),
                BitrateUnder(2_000_000.0),
                ResolutionWithin(640.0 * 480.0),
                DeviceIn(("tv-1", "tv-2")),
                Decodes("mp4"),
            ),
            tolerance=0.05,
        ),
        PolicyRule(rule_id="pin-hw", action="force_tier", tier="hw"),
        PolicyRule(rule_id="block", action="deny", reason="region locked"),
    ),
)


class TestRoundTrips:
    def test_document_round_trip_is_exact(self):
        assert policy_from_dict(policy_to_dict(FULL_DOCUMENT)) == FULL_DOCUMENT

    def test_document_survives_json(self):
        encoded = json.dumps(policy_to_dict(FULL_DOCUMENT), sort_keys=True)
        assert policy_from_dict(json.loads(encoded)) == FULL_DOCUMENT

    def test_every_predicate_round_trips(self):
        for predicate in FULL_DOCUMENT.rules[0].predicates:
            assert predicate_from_dict(predicate_to_dict(predicate)) == predicate

    def test_rule_round_trip_omits_empty_fields(self):
        rule = PolicyRule(rule_id="r", action="skip")
        payload = rule_to_dict(rule)
        assert "tier" not in payload
        assert "reason" not in payload
        assert "tolerance" not in payload
        assert rule_from_dict(payload) == rule

    def test_file_round_trip(self, tmp_path):
        path = save_policy(FULL_DOCUMENT, tmp_path / "policy.json")
        assert load_policy(path) == FULL_DOCUMENT

    def test_document_tag_and_version(self):
        payload = policy_to_dict(FULL_DOCUMENT)
        assert payload["document"] == POLICY_DOCUMENT == "repro-policy"
        assert payload["version"] == POLICY_VERSION


class TestMalformedInputs:
    def _expect_validation_error(self, payload, fragment):
        with pytest.raises(ValidationError) as excinfo:
            policy_from_dict(payload)
        assert fragment in str(excinfo.value)

    def test_wrong_document_tag(self):
        self._expect_validation_error({"document": "repro-scenario"},
                                      "not a policy document")

    def test_wrong_version(self):
        self._expect_validation_error(
            {"document": POLICY_DOCUMENT, "version": 99}, "version"
        )

    def test_missing_name(self):
        self._expect_validation_error(
            {"document": POLICY_DOCUMENT, "version": 1}, "name"
        )

    def test_rules_must_be_a_sequence(self):
        self._expect_validation_error(
            {"document": POLICY_DOCUMENT, "version": 1, "name": "d",
             "rules": "nope"},
            "rules",
        )

    def test_unknown_action(self):
        with pytest.raises(ValidationError) as excinfo:
            rule_from_dict({"rule_id": "r", "action": "explode"})
        assert "explode" in str(excinfo.value)
        assert "skip" in str(excinfo.value)  # names the valid choices

    def test_unknown_predicate_kind(self):
        with pytest.raises(ValidationError) as excinfo:
            predicate_from_dict({"kind": "moon_phase"})
        assert "moon_phase" in str(excinfo.value)
        assert "codec_match" in str(excinfo.value)

    def test_mistyped_numbers_never_traceback(self):
        for payload in (
            {"kind": "bitrate_under", "bps": "fast"},
            {"kind": "bitrate_under", "bps": True},
            {"kind": "resolution_within", "max_pixels": [640]},
        ):
            with pytest.raises(ValidationError):
                predicate_from_dict(payload)

    def test_mistyped_tolerance(self):
        with pytest.raises(ValidationError):
            rule_from_dict({"rule_id": "r", "action": "skip",
                            "tolerance": "tight"})

    def test_predicate_list_entries_must_be_mappings(self):
        with pytest.raises(ValidationError):
            rule_from_dict({"rule_id": "r", "action": "skip",
                            "predicates": ["not a dict"]})

    def test_non_mapping_document(self):
        with pytest.raises(ValidationError):
            policy_from_dict(["not", "a", "mapping"])

    def test_malformed_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValidationError) as excinfo:
            load_policy(path)
        assert "malformed policy file" in str(excinfo.value)

    def test_invalid_rule_payloads_stay_typed(self):
        # Structurally valid JSON whose values violate rule invariants
        # must still come back as ValidationError.
        for payload in (
            {"rule_id": "r", "action": "force_tier"},           # no tier
            {"rule_id": "r", "action": "force_tier", "tier": "quantum"},
            {"rule_id": "r", "action": "skip", "tier": "hw"},   # stray tier
            {"rule_id": "", "action": "deny"},                  # empty id
        ):
            with pytest.raises(ValidationError):
                rule_from_dict(payload)
