"""Reproduction tests: every figure and table of the paper.

These tests are the authoritative check that the reconstruction in
``repro.workloads.paper`` regenerates the paper's printed artifacts —
EXPERIMENTS.md cites them.
"""

from __future__ import annotations

import pytest

from repro.core.parameters import FRAME_RATE
from repro.core.selection import TieBreakPolicy
from repro.workloads.paper import (
    figure1_satisfaction,
    figure2_service,
    figure3_scenario,
    figure6_scenario,
    table1_expected_rows,
)


class TestFigure1:
    """Figure 1: a possible satisfaction function for the frame rate."""

    def test_minimum_and_ideal_match_the_drawing(self):
        fn = figure1_satisfaction()
        assert fn.minimum == 5.0
        assert fn.ideal == 20.0

    def test_range_and_endpoints(self):
        fn = figure1_satisfaction()
        assert fn(0.0) == 0.0
        assert fn(5.0) == 0.0
        assert fn(20.0) == 1.0
        assert fn(25.0) == 1.0

    def test_monotone_over_the_axis(self):
        fn = figure1_satisfaction()
        fn.validate_monotone()
        series = fn.series(0.0, 20.0, 81)
        values = [s for _, s in series]
        assert values == sorted(values)

    def test_concave_rise_like_the_drawing(self):
        fn = figure1_satisfaction()
        # Early fps gains matter more than late ones.
        early_gain = fn(10.0) - fn(5.0)
        late_gain = fn(20.0) - fn(15.0)
        assert early_gain > late_gain


class TestFigure2:
    """Figure 2: trans-coding service with multiple input and output links."""

    def test_t1_has_the_papers_links(self):
        service = figure2_service()
        assert set(service.input_formats) == {"F5", "F6"}
        assert set(service.output_formats) == {"F10", "F11", "F12", "F13"}


class TestFigure3:
    """Figure 3: the directed trans-coding graph construction example."""

    def test_one_sender_one_receiver_seven_intermediates(self):
        graph = figure3_scenario().build_graph()
        transcoders = [
            v for v in graph.vertices() if v.service.is_transcoder
        ]
        assert len(transcoders) == 7
        assert graph.sender.is_sender
        assert graph.receiver.is_receiver

    def test_sender_output_links_are_the_content_variants(self):
        scenario = figure3_scenario()
        graph = scenario.build_graph()
        sender_formats = {e.format_name for e in graph.out_edges("sender")}
        assert sender_formats == {"F3", "F4", "F5"}

    def test_sender_connects_to_t1_via_f5(self):
        """'The sender node is connected to the trans-coding service T1
        along the edge labeled F5.'"""
        graph = figure3_scenario().build_graph()
        assert any(
            e.target == "T1" and e.format_name == "F5"
            for e in graph.out_edges("sender")
        )

    def test_receiver_input_links_are_the_decoders(self):
        graph = figure3_scenario().build_graph()
        receiver_formats = {e.format_name for e in graph.in_edges("receiver")}
        assert receiver_formats == {"F14", "F15", "F16"}

    def test_all_paths_obey_distinct_formats(self):
        graph = figure3_scenario().build_graph()
        paths = list(graph.enumerate_paths())
        assert paths, "the example graph must be connected"
        for path in paths:
            formats = [e.format_name for e in path]
            assert len(formats) == len(set(formats))

    def test_selection_succeeds_on_the_example(self):
        result = figure3_scenario().select()
        assert result.success


class TestTable1:
    """Table 1: the 15-round selection trace, cell by cell."""

    @pytest.fixture(scope="class")
    def trace_rows(self):
        result = figure6_scenario().select()
        assert result.success
        return result.trace.rounds

    def test_fifteen_rounds(self, trace_rows):
        assert len(trace_rows) == 15

    @pytest.mark.parametrize("index", range(15))
    def test_round_matches_paper(self, trace_rows, index):
        expected = table1_expected_rows()[index]
        row = trace_rows[index]
        assert row.considered_set == expected["vt"], "VT column"
        assert row.candidate_set == expected["cs"], "CS column"
        assert row.selected == expected["selected"], "Selected column"
        assert row.path == expected["path"], "Path column"
        assert row.displayed_frame_rate() == expected["frame_rate"], "FPS column"
        assert row.displayed_satisfaction() == expected["satisfaction"], (
            "Satisfaction column"
        )

    def test_final_row_is_the_delivered_result(self, trace_rows):
        final = trace_rows[-1]
        assert final.selected == "receiver"
        assert final.path == ("sender", "T7", "receiver")
        assert final.displayed_frame_rate() == "20"
        assert final.displayed_satisfaction() == "0.66"

    def test_underlying_satisfactions_strictly_decrease(self, trace_rows):
        values = [r.satisfaction for r in trace_rows]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_trace_independent_of_tie_break(self):
        """The reconstruction has no exact ties, so every policy replays
        the identical table."""
        reference = figure6_scenario().select().trace.paper_rows()
        for policy in TieBreakPolicy:
            rows = (
                figure6_scenario()
                .select(tie_break=policy)
                .trace.paper_rows()
            )
            assert rows == reference, policy


class TestFigure6:
    """Figure 6: the selected path with and without T7."""

    def test_with_t7(self):
        result = figure6_scenario(include_t7=True).select()
        assert result.path == ("sender", "T7", "receiver")
        assert f"{result.satisfaction:.2f}" == "0.66"

    def test_without_t7(self):
        result = figure6_scenario(include_t7=False).select()
        assert result.success
        assert result.path == ("sender", "T8", "receiver")
        assert result.satisfaction < 0.66 - 1e-6

    def test_removing_t7_costs_satisfaction(self):
        with_t7 = figure6_scenario(include_t7=True).select().satisfaction
        without = figure6_scenario(include_t7=False).select().satisfaction
        assert with_t7 > without

    def test_graph_shape(self):
        graph = figure6_scenario().build_graph()
        # sender + receiver + 17 services (T1..T15, T19, T20).
        assert len(graph) == 19
        assert graph.successors("sender") == [
            "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9", "T10",
        ]
        assert graph.successors("T10") == ["T19", "T20", "receiver"]
        assert graph.successors("T2") == ["T12", "T13"]

    def test_greedy_optimality_on_figure6(self):
        """Figure 5's claim on the paper's own graph: greedy = optimum."""
        from repro.core.baselines import ExhaustiveSelector

        scenario = figure6_scenario()
        graph = scenario.build_graph()
        greedy = scenario.selector(graph=graph).run()
        exhaustive = ExhaustiveSelector(
            graph,
            scenario.registry,
            scenario.parameters,
            scenario.user.satisfaction(),
            scenario.user.budget,
        ).run()
        assert greedy.satisfaction == pytest.approx(exhaustive.satisfaction)
        assert greedy.path == exhaustive.path
