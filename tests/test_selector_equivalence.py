"""Equivalence of the heap-based selector and the seed linear-scan seed.

The tentpole contract: the production :class:`QoSPathSelector` (lazy
settle heap, dominance pre-filter, cached edge order, optional optimize
memo) must return **bit-identical** :class:`SelectionResult`\\ s — path,
formats, configuration, satisfaction, cost, rounds, and full trace — to
the seed implementation preserved in
:mod:`tests.reference_selector`, under every :class:`TieBreakPolicy`.

Hypothesis generates random scenarios; the fixed-seed sweep pins the
policies × scenario grid deterministically on every run.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.optimizer import OptimizeMemo
from repro.core.selection import QoSPathSelector, TieBreakPolicy
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

from tests.reference_selector import SeedReferenceSelector

ALL_POLICIES = list(TieBreakPolicy)

scenario_configs = st.builds(
    SyntheticConfig,
    seed=st.integers(min_value=0, max_value=10_000),
    n_services=st.integers(min_value=4, max_value=16),
    n_formats=st.integers(min_value=5, max_value=10),
    n_nodes=st.integers(min_value=3, max_value=8),
    backbone_hops=st.integers(min_value=1, max_value=3),
    preference_mode=st.sampled_from(["single", "rich"]),
)


def _run(selector_cls, scenario, graph, policy, memo=None):
    return selector_cls.for_user(
        graph=graph,
        registry=scenario.registry,
        parameters=scenario.parameters,
        user=scenario.user,
        tie_break=policy,
        record_trace=True,
        optimize_memo=memo,
    ).run()


def _assert_identical(production, reference):
    # SelectionResult.stats is compare=False, so dataclass equality is
    # exactly the paper-defined outcome: success flag, path, formats,
    # configuration, satisfaction, cost, delay, rounds, and trace.
    assert production == reference
    # Spell out the load-bearing fields anyway so a failure names the
    # divergence instead of dumping two whole results.
    assert production.path == reference.path
    assert production.formats == reference.formats
    assert production.configuration == reference.configuration
    assert production.satisfaction == reference.satisfaction
    assert production.accumulated_cost == reference.accumulated_cost
    assert production.rounds_run == reference.rounds_run
    assert production.trace == reference.trace


@settings(max_examples=30, deadline=None)
@given(config=scenario_configs, data=st.data())
def test_heap_selector_matches_seed_reference(config, data):
    policy = data.draw(st.sampled_from(ALL_POLICIES))
    scenario = generate_scenario(config)
    graph = scenario.build_graph()
    production = _run(QoSPathSelector, scenario, graph, policy)
    reference = _run(SeedReferenceSelector, scenario, graph, policy)
    _assert_identical(production, reference)


@settings(max_examples=15, deadline=None)
@given(config=scenario_configs, data=st.data())
def test_memoized_selector_matches_seed_reference(config, data):
    """A shared, pre-warmed memo must not change any result bit."""
    policy = data.draw(st.sampled_from(ALL_POLICIES))
    scenario = generate_scenario(config)
    graph = scenario.build_graph()
    memo = OptimizeMemo()
    first = _run(QoSPathSelector, scenario, graph, policy, memo=memo)
    warmed = _run(QoSPathSelector, scenario, graph, policy, memo=memo)
    reference = _run(SeedReferenceSelector, scenario, graph, policy)
    _assert_identical(first, reference)
    _assert_identical(warmed, reference)
    if warmed.stats is not None and warmed.stats.optimize_calls:
        assert warmed.stats.optimize_memo_hits == warmed.stats.optimize_calls


@pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.value)
@pytest.mark.parametrize("seed", [0, 7, 42])
def test_policy_grid_equivalence(policy, seed):
    """Deterministic policy × scenario grid (no Hypothesis shrink noise)."""
    scenario = generate_scenario(
        SyntheticConfig(seed=seed, n_services=24, n_formats=8, n_nodes=6)
    )
    graph = scenario.build_graph()
    production = _run(QoSPathSelector, scenario, graph, policy)
    reference = _run(SeedReferenceSelector, scenario, graph, policy)
    _assert_identical(production, reference)


def test_stats_counters_are_populated():
    scenario = generate_scenario(SyntheticConfig(seed=3, n_services=20))
    graph = scenario.build_graph()
    result = _run(QoSPathSelector, scenario, graph, TieBreakPolicy.PAPER)
    assert result.stats is not None
    assert result.stats.rounds == result.rounds_run
    assert result.stats.heap_settled_pops == result.stats.rounds
    assert result.stats.heap_pushes >= result.stats.heap_settled_pops
    assert result.stats.optimize_calls > 0
    assert result.stats.optimize_memo_hits == 0  # no memo attached
    assert "optimize" in result.describe()
