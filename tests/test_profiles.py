"""Unit tests for the six Section-3 profile types."""

from __future__ import annotations

import math

import pytest

from repro.core.configuration import Configuration
from repro.core.parameters import AUDIO_QUALITY, COLOR_DEPTH, FRAME_RATE, RESOLUTION
from repro.core.satisfaction import (
    HarmonicCombiner,
    LinearSatisfaction,
    WeightedHarmonicCombiner,
)
from repro.errors import ValidationError
from repro.formats.format import MediaFormat
from repro.formats.variants import ContentVariant
from repro.network.topology import NetworkTopology
from repro.profiles.content import ContentProfile
from repro.profiles.context import ContextProfile
from repro.profiles.device import DeviceProfile
from repro.profiles.intermediary import IntermediaryProfile, merge_intermediaries
from repro.profiles.network import LinkMeasurement, NetworkProfile
from repro.profiles.user import AdaptationPolicy, UserProfile
from repro.services.descriptor import ServiceDescriptor, ServiceKind


def make_variant(format_name: str, fps: float = 30.0) -> ContentVariant:
    return ContentVariant(
        format=MediaFormat(name=format_name, compression_ratio=10.0),
        configuration=Configuration({FRAME_RATE: fps}),
    )


class TestUserProfile:
    def _user(self, **kwargs):
        defaults = dict(
            user_id="alice",
            satisfaction_functions={FRAME_RATE: LinearSatisfaction(0, 30)},
        )
        defaults.update(kwargs)
        return UserProfile(**defaults)

    def test_requires_id_and_preferences(self):
        with pytest.raises(ValidationError):
            UserProfile(user_id="", satisfaction_functions={FRAME_RATE: LinearSatisfaction(0, 30)})
        with pytest.raises(ValidationError):
            UserProfile(user_id="a", satisfaction_functions={})

    def test_negative_budget_rejected(self):
        with pytest.raises(ValidationError):
            self._user(budget=-1.0)

    def test_default_budget_unbounded(self):
        assert math.isinf(self._user().budget)

    def test_default_combiner_is_harmonic(self):
        assert isinstance(self._user().combiner, HarmonicCombiner)

    def test_satisfaction_bundles_functions(self):
        model = self._user().satisfaction()
        assert model.evaluate({FRAME_RATE: 15.0}) == pytest.approx(0.5)

    def test_peer_override_replaces_function(self):
        base = LinearSatisfaction(0, 30)
        strict = LinearSatisfaction(0, 60)  # harder to satisfy
        user = self._user(
            satisfaction_functions={FRAME_RATE: base},
            peer_overrides={"boss": {FRAME_RATE: strict}},
        )
        casual = user.satisfaction().evaluate({FRAME_RATE: 30.0})
        formal = user.satisfaction(peer="boss").evaluate({FRAME_RATE: 30.0})
        assert casual == pytest.approx(1.0)
        assert formal == pytest.approx(0.5)

    def test_unknown_peer_uses_base(self):
        user = self._user()
        assert user.satisfaction(peer="stranger").evaluate({FRAME_RATE: 30.0}) == 1.0

    def test_policies_sorted_by_priority(self):
        user = self._user(
            policies=[
                AdaptationPolicy("frame_rate", 2),
                AdaptationPolicy("audio_quality", 0),
            ]
        )
        assert [p.parameter for p in user.policies] == ["audio_quality", "frame_rate"]

    def test_duplicate_policies_rejected(self):
        with pytest.raises(ValidationError):
            self._user(
                policies=[
                    AdaptationPolicy("x", 0),
                    AdaptationPolicy("x", 1),
                ]
            )

    def test_degrade_order_policies_first(self):
        user = self._user(
            policies=[
                AdaptationPolicy(AUDIO_QUALITY, 0),
                AdaptationPolicy(FRAME_RATE, 1),
            ]
        )
        order = user.degrade_order([FRAME_RATE, RESOLUTION, AUDIO_QUALITY])
        assert order == [AUDIO_QUALITY, FRAME_RATE, RESOLUTION]


class TestContentProfile:
    def test_requires_variants(self):
        with pytest.raises(ValidationError):
            ContentProfile(content_id="c", variants=[])

    def test_duplicate_variant_formats_rejected(self):
        with pytest.raises(ValidationError):
            ContentProfile(
                content_id="c",
                variants=[make_variant("F1"), make_variant("F1", fps=10)],
            )

    def test_variant_lookup(self):
        profile = ContentProfile("c", [make_variant("F1"), make_variant("F2")])
        assert profile.variant_for("F2").format.name == "F2"
        assert profile.has_format("F1")
        assert not profile.has_format("F3")

    def test_missing_variant_raises(self):
        profile = ContentProfile("c", [make_variant("F1")])
        with pytest.raises(ValidationError):
            profile.variant_for("F9")

    def test_sender_descriptor_shape(self):
        profile = ContentProfile("c", [make_variant("F1"), make_variant("F2")])
        sender = profile.sender_descriptor()
        assert sender.kind is ServiceKind.SENDER
        assert set(sender.output_formats) == {"F1", "F2"}
        assert sender.input_formats == ()


class TestDeviceProfile:
    def test_requires_decoders(self):
        with pytest.raises(ValidationError):
            DeviceProfile(device_id="d", decoders=[])

    def test_duplicate_decoders_rejected(self):
        with pytest.raises(ValidationError):
            DeviceProfile(device_id="d", decoders=["F1", "F1"])

    def test_rendering_caps_only_include_stated_limits(self):
        device = DeviceProfile(
            device_id="d", decoders=["F1"], max_frame_rate=15.0
        )
        caps = device.rendering_caps()
        assert caps == {FRAME_RATE: 15.0}

    def test_rendering_caps_full(self):
        device = DeviceProfile(
            device_id="d",
            decoders=["F1"],
            max_frame_rate=15.0,
            max_resolution=76800.0,
            max_color_depth=8.0,
            max_audio_kbps=64.0,
        )
        caps = device.rendering_caps()
        assert caps[RESOLUTION] == 76800.0
        assert caps[COLOR_DEPTH] == 8.0
        assert caps[AUDIO_QUALITY] == 64.0

    def test_receiver_descriptor(self):
        device = DeviceProfile(device_id="d", decoders=["F1", "F2"])
        receiver = device.receiver_descriptor()
        assert receiver.kind is ServiceKind.RECEIVER
        assert set(receiver.input_formats) == {"F1", "F2"}
        assert receiver.output_formats == ()

    def test_can_decode(self):
        device = DeviceProfile(device_id="d", decoders=["F1"])
        assert device.can_decode("F1")
        assert not device.can_decode("F2")

    def test_negative_limits_rejected(self):
        with pytest.raises(ValidationError):
            DeviceProfile(device_id="d", decoders=["F1"], max_frame_rate=-1.0)


class TestContextProfile:
    def test_unknown_activity_rejected(self):
        with pytest.raises(ValidationError):
            ContextProfile(activity="skydiving")

    def test_driving_kills_video(self):
        caps = ContextProfile(activity="driving").parameter_caps()
        assert caps[FRAME_RATE] == 0.0

    def test_meeting_mutes_audio(self):
        caps = ContextProfile(activity="meeting").parameter_caps()
        assert caps[AUDIO_QUALITY] == 0.0

    def test_darkness_caps_color_depth(self):
        caps = ContextProfile(illumination_lux=2.0).parameter_caps()
        assert caps[COLOR_DEPTH] == 8.0

    def test_idle_daylight_has_no_caps(self):
        assert ContextProfile().parameter_caps() == {}

    def test_noise_devalues_audio(self):
        weights = ContextProfile(noise_level_db=80.0).preference_weights()
        assert weights[AUDIO_QUALITY] < 1.0

    def test_moderate_noise_intermediate_weight(self):
        loud = ContextProfile(noise_level_db=80.0).preference_weights()[AUDIO_QUALITY]
        moderate = ContextProfile(noise_level_db=65.0).preference_weights()[AUDIO_QUALITY]
        assert loud < moderate < 1.0

    def test_business_hours(self):
        assert ContextProfile(local_time_hour=10).is_business_hours()
        assert not ContextProfile(local_time_hour=22).is_business_hours()
        assert not ContextProfile().is_business_hours()

    def test_invalid_hour_rejected(self):
        with pytest.raises(ValidationError):
            ContextProfile(local_time_hour=25)


class TestNetworkProfile:
    def _topology(self):
        topology = NetworkTopology()
        topology.node("a", cpu_mips=100.0, memory_mb=10.0)
        topology.node("b")
        topology.node("c")
        topology.link("a", "b", 1e6, delay_ms=3.0, loss_rate=0.01, cost=0.5)
        topology.link("b", "c", 2e6)
        return topology

    def test_round_trip_through_profile(self):
        original = self._topology()
        profile = NetworkProfile.from_topology(original)
        rebuilt = profile.to_topology()
        assert sorted(rebuilt.node_ids()) == sorted(original.node_ids())
        link = rebuilt.get_link("a", "b")
        assert link.bandwidth_bps == 1e6
        assert link.delay_ms == 3.0
        assert link.loss_rate == 0.01
        assert link.cost == 0.5
        assert rebuilt.get_node("a").cpu_mips == 100.0

    def test_throughput_lookup(self):
        profile = NetworkProfile.from_topology(self._topology())
        assert profile.throughput("b", "a") == 1e6
        assert profile.throughput("a", "c") is None

    def test_duplicate_measurements_rejected(self):
        with pytest.raises(ValidationError):
            NetworkProfile(
                [
                    LinkMeasurement("a", "b", 1e6),
                    LinkMeasurement("b", "a", 2e6),
                ]
            )

    def test_measurement_validation(self):
        with pytest.raises(ValidationError):
            LinkMeasurement("a", "a", 1e6)
        with pytest.raises(ValidationError):
            LinkMeasurement("a", "b", -1.0)
        with pytest.raises(ValidationError):
            LinkMeasurement("a", "b", 1e6, loss_rate=1.0)


class TestIntermediaryProfile:
    def _service(self, service_id="T1"):
        return ServiceDescriptor(
            service_id=service_id,
            input_formats=("F1",),
            output_formats=("F2",),
            memory_mb=64.0,
        )

    def test_only_transcoders_allowed(self):
        receiver = ServiceDescriptor(
            service_id="r", input_formats=("F1",), kind=ServiceKind.RECEIVER
        )
        with pytest.raises(ValidationError):
            IntermediaryProfile(node_id="n", services=[receiver])

    def test_duplicate_service_ids_rejected(self):
        with pytest.raises(ValidationError):
            IntermediaryProfile(node_id="n", services=[self._service(), self._service()])

    def test_can_run_checks_resources(self):
        profile = IntermediaryProfile(
            node_id="n",
            services=[],
            available_cpu_mips=10.0,
            available_memory_mb=32.0,
        )
        assert not profile.can_run(self._service())  # needs 64 MB
        small = ServiceDescriptor(
            service_id="T2",
            input_formats=("F1",),
            output_formats=("F2",),
            memory_mb=16.0,
            cpu_factor=1.0,
        )
        assert profile.can_run(small)

    def test_merge_builds_catalog_and_placement(self):
        topology = NetworkTopology()
        topology.node("n1")
        topology.node("n2")
        profiles = [
            IntermediaryProfile(node_id="n1", services=[self._service("T1")]),
            IntermediaryProfile(node_id="n2", services=[self._service("T2")]),
        ]
        catalog, placement = merge_intermediaries(profiles, topology)
        assert catalog.ids() == ["T1", "T2"]
        assert placement.node_of("T1") == "n1"
        assert placement.node_of("T2") == "n2"

    def test_merge_rejects_duplicate_advertisements(self):
        topology = NetworkTopology()
        topology.node("n1")
        topology.node("n2")
        profiles = [
            IntermediaryProfile(node_id="n1", services=[self._service("T1")]),
            IntermediaryProfile(node_id="n2", services=[self._service("T1")]),
        ]
        with pytest.raises(ValidationError):
            merge_intermediaries(profiles, topology)
