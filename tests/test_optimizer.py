"""Unit tests for the configuration optimizer (Equation 2's Optimize)."""

from __future__ import annotations

import itertools
import math

import pytest

from repro.core.configuration import Configuration
from repro.core.optimizer import (
    ConfigurationOptimizer,
    OptimizationConstraints,
    OptimizedChoice,
)
from repro.core.parameters import (
    AUDIO_QUALITY,
    COLOR_DEPTH,
    FRAME_RATE,
    RESOLUTION,
    ContinuousDomain,
    DiscreteDomain,
    Parameter,
    ParameterSet,
)
from repro.core.satisfaction import (
    CombinedSatisfaction,
    HarmonicCombiner,
    LinearSatisfaction,
)
from repro.errors import UnknownParameterError
from repro.formats.format import MediaFormat


def make_optimizer(functions, parameters=None, degrade_order=None):
    parameters = parameters or ParameterSet(
        [
            Parameter(FRAME_RATE, "fps", ContinuousDomain(0.0, 60.0)),
            Parameter(RESOLUTION, "pixels", DiscreteDomain([100.0, 1000.0])),
            Parameter(COLOR_DEPTH, "bits", DiscreteDomain([8.0, 24.0])),
        ]
    )
    satisfaction = CombinedSatisfaction(
        functions=functions, combiner=HarmonicCombiner()
    )
    return ConfigurationOptimizer(parameters, satisfaction, degrade_order)


FMT = MediaFormat(name="opt-fmt", compression_ratio=10.0)


def constraints(upstream, caps=None, bandwidth=math.inf):
    return OptimizationConstraints(
        upstream=Configuration(upstream),
        caps=caps or {},
        fmt=FMT,
        bandwidth_bps=bandwidth,
    )


class TestUnconstrainedOptimum:
    def test_takes_upstream_when_bandwidth_ample(self):
        optimizer = make_optimizer({FRAME_RATE: LinearSatisfaction(0, 30)})
        choice = optimizer.optimize(
            constraints({FRAME_RATE: 25.0, RESOLUTION: 1000.0, COLOR_DEPTH: 24.0})
        )
        assert choice.configuration[FRAME_RATE] == 25.0
        assert choice.satisfaction == pytest.approx(25 / 30)

    def test_service_caps_bind(self):
        optimizer = make_optimizer({FRAME_RATE: LinearSatisfaction(0, 30)})
        choice = optimizer.optimize(
            constraints(
                {FRAME_RATE: 25.0, RESOLUTION: 1000.0, COLOR_DEPTH: 24.0},
                caps={FRAME_RATE: 15.0},
            )
        )
        assert choice.configuration[FRAME_RATE] == 15.0

    def test_discrete_values_snap_down(self):
        optimizer = make_optimizer({FRAME_RATE: LinearSatisfaction(0, 30)})
        choice = optimizer.optimize(
            constraints(
                {FRAME_RATE: 25.0, RESOLUTION: 999.0, COLOR_DEPTH: 20.0}
            )
        )
        assert choice.configuration[RESOLUTION] == 100.0  # snapped below 999
        assert choice.configuration[COLOR_DEPTH] == 8.0

    def test_cap_below_domain_minimum_is_infeasible(self):
        optimizer = make_optimizer({FRAME_RATE: LinearSatisfaction(0, 30)})
        assert (
            optimizer.optimize(
                constraints(
                    {FRAME_RATE: 25.0, RESOLUTION: 1000.0, COLOR_DEPTH: 24.0},
                    caps={RESOLUTION: 50.0},  # below the smallest domain value
                )
            )
            is None
        )

    def test_unknown_parameter_raises(self):
        optimizer = make_optimizer({FRAME_RATE: LinearSatisfaction(0, 30)})
        with pytest.raises(UnknownParameterError):
            optimizer.optimize(constraints({"bogus": 1.0}))


class TestBandwidthConstrained:
    def test_single_parameter_exact_inversion(self):
        """The paper's case: only frame rate can move -> closed-form fit.

        Resolution and depth are pinned to single-value domains (as in the
        Figure 6 scenario), so the optimizer must invert the bandwidth for
        frame rate exactly.
        """
        params = ParameterSet(
            [
                Parameter(FRAME_RATE, "fps", ContinuousDomain(0.0, 60.0)),
                Parameter(RESOLUTION, "pixels", DiscreteDomain([1000.0])),
                Parameter(COLOR_DEPTH, "bits", DiscreteDomain([24.0])),
            ]
        )
        optimizer = make_optimizer(
            {FRAME_RATE: LinearSatisfaction(0, 30)}, parameters=params
        )
        # frame bits = 1000 * 24 / 10 = 2400; 19.75 fps needs 47400 bps.
        choice = optimizer.optimize(
            constraints(
                {FRAME_RATE: 30.0, RESOLUTION: 1000.0, COLOR_DEPTH: 24.0},
                bandwidth=47_400.0,
            )
        )
        assert choice.configuration[FRAME_RATE] == pytest.approx(19.75)
        assert choice.satisfaction == pytest.approx(19.75 / 30)

    def test_result_respects_equation_2(self):
        optimizer = make_optimizer({FRAME_RATE: LinearSatisfaction(0, 30)})
        bandwidth = 30_000.0
        choice = optimizer.optimize(
            constraints(
                {FRAME_RATE: 30.0, RESOLUTION: 1000.0, COLOR_DEPTH: 24.0},
                bandwidth=bandwidth,
            )
        )
        assert choice.required_bandwidth_bps <= bandwidth * (1 + 1e-9)

    def test_free_parameters_reduced_before_preferences(self):
        """Color depth has no satisfaction function: it should be cut first."""
        optimizer = make_optimizer({FRAME_RATE: LinearSatisfaction(0, 30)})
        # Full quality needs 72000 bps; only a third is available.
        choice = optimizer.optimize(
            constraints(
                {FRAME_RATE: 30.0, RESOLUTION: 1000.0, COLOR_DEPTH: 24.0},
                bandwidth=24_000.0,
            )
        )
        # The frame rate (the only parameter with a preference) survives at
        # full value; some free parameter took the cut instead.
        assert choice.configuration[FRAME_RATE] == pytest.approx(30.0)
        assert choice.satisfaction == pytest.approx(1.0)
        assert (
            choice.configuration[RESOLUTION] < 1000.0
            or choice.configuration[COLOR_DEPTH] < 24.0
        )

    def test_zero_bandwidth_with_zero_floor_is_feasible_but_worthless(self):
        optimizer = make_optimizer({FRAME_RATE: LinearSatisfaction(0, 30)})
        choice = optimizer.optimize(
            constraints(
                {FRAME_RATE: 30.0, RESOLUTION: 1000.0, COLOR_DEPTH: 24.0},
                bandwidth=0.0,
            )
        )
        # fps can drop to 0 (domain minimum) so the edge is usable but the
        # satisfaction is 0 — the candidate ranks last, as the paper wants.
        assert choice is not None
        assert choice.satisfaction == 0.0

    def test_infeasible_when_floor_exceeds_bandwidth(self):
        params = ParameterSet(
            [
                Parameter(FRAME_RATE, "fps", ContinuousDomain(10.0, 60.0)),
                Parameter(RESOLUTION, "pixels", DiscreteDomain([1000.0])),
                Parameter(COLOR_DEPTH, "bits", DiscreteDomain([24.0])),
            ]
        )
        optimizer = make_optimizer(
            {FRAME_RATE: LinearSatisfaction(10, 30)}, parameters=params
        )
        # Even the 10 fps floor needs 24000 bps.
        result = optimizer.optimize(
            constraints(
                {FRAME_RATE: 30.0, RESOLUTION: 1000.0, COLOR_DEPTH: 24.0},
                bandwidth=1_000.0,
            )
        )
        assert result is None

    def test_two_preference_parameters_match_grid_search(self):
        """The ray+polish heuristic should match a fine grid search."""
        functions = {
            FRAME_RATE: LinearSatisfaction(0, 30),
            RESOLUTION: LinearSatisfaction(0, 1000),
        }
        optimizer = make_optimizer(functions)
        upstream = {FRAME_RATE: 30.0, RESOLUTION: 1000.0, COLOR_DEPTH: 8.0}
        bandwidth = 30_000.0
        choice = optimizer.optimize(constraints(upstream, bandwidth=bandwidth))

        # Grid search over the same feasible region.
        best = 0.0
        satisfaction = CombinedSatisfaction(
            functions=functions, combiner=HarmonicCombiner()
        )
        for fps_step in range(0, 301):
            fps = fps_step / 10.0
            for res in (100.0, 1000.0):
                config = Configuration(
                    {FRAME_RATE: fps, RESOLUTION: res, COLOR_DEPTH: 8.0}
                )
                if config.required_bandwidth(FMT) <= bandwidth:
                    best = max(best, satisfaction.evaluate(config))
        assert choice.satisfaction >= best - 1e-3

    def test_audio_parameter_inverts_linearly(self):
        params = ParameterSet(
            [
                Parameter(AUDIO_QUALITY, "kbps", ContinuousDomain(0.0, 256.0)),
            ]
        )
        optimizer = make_optimizer(
            {AUDIO_QUALITY: LinearSatisfaction(0, 256)}, parameters=params
        )
        choice = optimizer.optimize(
            OptimizationConstraints(
                upstream=Configuration({AUDIO_QUALITY: 256.0}),
                caps={},
                fmt=FMT,
                bandwidth_bps=128_000.0,
            )
        )
        assert choice.configuration[AUDIO_QUALITY] == pytest.approx(128.0)


class TestDegradeOrder:
    def test_policy_orders_free_reductions(self):
        """With two free parameters, the policy-listed one survives longer."""
        params = ParameterSet(
            [
                Parameter(FRAME_RATE, "fps", ContinuousDomain(0.0, 60.0)),
                Parameter(RESOLUTION, "pixels", ContinuousDomain(0.0, 1000.0)),
                Parameter(COLOR_DEPTH, "bits", ContinuousDomain(0.0, 24.0)),
            ]
        )
        # User only cares about frame rate; depth is listed in the degrade
        # order (degrade it *after* unlisted resolution).
        optimizer = make_optimizer(
            {FRAME_RATE: LinearSatisfaction(0, 30)},
            parameters=params,
            degrade_order=[COLOR_DEPTH],
        )
        # Needs 30*1000*24/10 = 72000 at full quality; give half.
        choice = optimizer.optimize(
            constraints(
                {FRAME_RATE: 30.0, RESOLUTION: 1000.0, COLOR_DEPTH: 24.0},
                bandwidth=36_000.0,
            )
        )
        # Resolution (unlisted, degraded first) should fall before depth.
        assert choice.configuration[COLOR_DEPTH] == pytest.approx(24.0)
        assert choice.configuration[RESOLUTION] < 1000.0
        assert choice.configuration[FRAME_RATE] == pytest.approx(30.0)


class TestEvaluate:
    def test_skips_absent_dimensions(self):
        optimizer = make_optimizer(
            {
                FRAME_RATE: LinearSatisfaction(0, 30),
                RESOLUTION: LinearSatisfaction(0, 1000),
            }
        )
        only_fps = Configuration({FRAME_RATE: 15.0})
        assert optimizer.evaluate(only_fps) == pytest.approx(0.5)

    def test_no_judgeable_dimension_is_zero(self):
        optimizer = make_optimizer({FRAME_RATE: LinearSatisfaction(0, 30)})
        assert optimizer.evaluate(Configuration({COLOR_DEPTH: 24.0})) == 0.0
