"""Tests for the WSDL-style service description documents."""

from __future__ import annotations

import pytest

from repro.core.parameters import FRAME_RATE, RESOLUTION
from repro.discovery.wsdl import (
    catalog_from_wsdl,
    catalog_to_wsdl,
    descriptor_from_wsdl,
    descriptor_to_wsdl,
)
from repro.errors import ValidationError
from repro.services.catalog import ServiceCatalog
from repro.services.descriptor import ServiceDescriptor, ServiceKind
from repro.workloads.paper import figure3_scenario, figure6_scenario


def full_descriptor() -> ServiceDescriptor:
    return ServiceDescriptor(
        service_id="T1",
        input_formats=("F5", "F6"),
        output_formats=("F10", "F11"),
        output_caps={FRAME_RATE: 25.0, RESOLUTION: 76800.0},
        cost=1.25,
        cpu_factor=2.5,
        memory_mb=64.0,
        provider="acme",
        description="downscaling transcoder",
    )


class TestDescriptorRoundTrip:
    def test_full_descriptor_round_trips(self):
        original = full_descriptor()
        document = descriptor_to_wsdl(original)
        rebuilt = descriptor_from_wsdl(document)
        assert rebuilt == original

    def test_document_is_wsdl_shaped(self):
        document = descriptor_to_wsdl(full_descriptor())
        assert document.startswith("<service ")
        assert '<port direction="input" format="F5"' in document
        assert '<port direction="output" format="F10"' in document
        assert "<qos " in document
        assert '<cap parameter="frame_rate"' in document

    def test_float_precision_survives(self):
        descriptor = ServiceDescriptor(
            service_id="X",
            input_formats=("A",),
            output_formats=("B",),
            output_caps={FRAME_RATE: 19.750000019749997},
            cost=1.0 / 3.0,
        )
        rebuilt = descriptor_from_wsdl(descriptor_to_wsdl(descriptor))
        assert rebuilt.output_caps[FRAME_RATE] == descriptor.output_caps[FRAME_RATE]
        assert rebuilt.cost == descriptor.cost

    def test_minimal_document_gets_defaults(self):
        document = (
            '<service name="S" kind="transcoder">'
            '<port direction="input" format="A"/>'
            '<port direction="output" format="B"/>'
            "</service>"
        )
        descriptor = descriptor_from_wsdl(document)
        assert descriptor.cost == 0.0
        assert descriptor.cpu_factor == 1.0
        assert descriptor.memory_mb == 16.0

    def test_malformed_xml_rejected(self):
        with pytest.raises(ValidationError):
            descriptor_from_wsdl("<service name='x'")

    def test_wrong_root_rejected(self):
        with pytest.raises(ValidationError):
            descriptor_from_wsdl("<thing/>")

    def test_bad_direction_rejected(self):
        document = (
            '<service name="S" kind="transcoder">'
            '<port direction="sideways" format="A"/>'
            '<port direction="output" format="B"/>'
            "</service>"
        )
        with pytest.raises(ValidationError):
            descriptor_from_wsdl(document)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            descriptor_from_wsdl('<service name="S" kind="oracle"/>')

    def test_port_without_format_rejected(self):
        document = (
            '<service name="S" kind="transcoder">'
            '<port direction="input"/>'
            '<port direction="output" format="B"/>'
            "</service>"
        )
        with pytest.raises(ValidationError):
            descriptor_from_wsdl(document)


class TestCatalogRoundTrip:
    def test_figure3_catalog_round_trips(self):
        catalog = figure3_scenario().catalog
        rebuilt = catalog_from_wsdl(catalog_to_wsdl(catalog))
        assert rebuilt.ids() == catalog.ids()
        for service_id in catalog.ids():
            assert rebuilt.get(service_id) == catalog.get(service_id)

    def test_figure6_catalog_round_trips(self):
        catalog = figure6_scenario().catalog
        rebuilt = catalog_from_wsdl(catalog_to_wsdl(catalog))
        assert len(rebuilt) == len(catalog)
        assert rebuilt.get("T7") == catalog.get("T7")

    def test_empty_catalog(self):
        rebuilt = catalog_from_wsdl(catalog_to_wsdl(ServiceCatalog()))
        assert len(rebuilt) == 0

    def test_wrong_root_rejected(self):
        with pytest.raises(ValidationError):
            catalog_from_wsdl("<services/>")

    def test_rebuilt_catalog_is_functional(self):
        """A catalog that went through XML still builds the same graph."""
        scenario = figure6_scenario()
        rebuilt_catalog = catalog_from_wsdl(catalog_to_wsdl(scenario.catalog))
        from repro.core.graph import AdaptationGraphBuilder

        graph = AdaptationGraphBuilder(rebuilt_catalog, scenario.placement).build(
            scenario.content,
            scenario.device,
            scenario.sender_node,
            scenario.receiver_node,
        )
        original = scenario.build_graph()
        assert graph.vertex_ids() == original.vertex_ids()
        assert graph.edge_count() == original.edge_count()
