"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.configuration import Configuration
from repro.core.parameters import (
    COLOR_DEPTH,
    FRAME_RATE,
    RESOLUTION,
    ContinuousDomain,
    DiscreteDomain,
    Parameter,
    ParameterSet,
)
from repro.core.satisfaction import (
    CombinedSatisfaction,
    HarmonicCombiner,
    LinearSatisfaction,
)
from repro.formats.format import MediaFormat, MediaType
from repro.formats.registry import FormatRegistry
from repro.workloads.paper import figure3_scenario, figure6_scenario
from repro.workloads.synthetic import SyntheticConfig, generate_scenario


@pytest.fixture(scope="session")
def fig6():
    """The Figure 6 / Table 1 scenario (session-scoped: it is immutable)."""
    return figure6_scenario()


@pytest.fixture(scope="session")
def fig6_no_t7():
    return figure6_scenario(include_t7=False)


@pytest.fixture(scope="session")
def fig3():
    return figure3_scenario()


@pytest.fixture
def simple_parameters() -> ParameterSet:
    """Frame rate free, resolution/depth in small discrete domains."""
    return ParameterSet(
        [
            Parameter(FRAME_RATE, "fps", ContinuousDomain(0.0, 60.0)),
            Parameter(RESOLUTION, "pixels", DiscreteDomain([76800.0, 307200.0])),
            Parameter(COLOR_DEPTH, "bits", DiscreteDomain([8.0, 24.0])),
        ]
    )


@pytest.fixture
def frame_rate_satisfaction() -> CombinedSatisfaction:
    """The paper's frame-rate-only preference: S(fps) = fps / 30."""
    return CombinedSatisfaction(
        functions={FRAME_RATE: LinearSatisfaction(0.0, 30.0)},
        combiner=HarmonicCombiner(),
    )


@pytest.fixture
def video_format() -> MediaFormat:
    return MediaFormat(
        name="test-video",
        media_type=MediaType.VIDEO,
        codec="test",
        compression_ratio=10.0,
    )


@pytest.fixture
def full_config() -> Configuration:
    return Configuration(
        {FRAME_RATE: 30.0, RESOLUTION: 76800.0, COLOR_DEPTH: 24.0}
    )


@pytest.fixture
def small_synthetic():
    """A small deterministic synthetic scenario."""
    return generate_scenario(SyntheticConfig(seed=7, n_services=12, n_formats=8))
