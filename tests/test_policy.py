"""Unit tests for the pre-planning policy engine (repro.policy).

Covers the typed predicates, document validation, hardware service
tiers, the three actions (skip / force_tier / deny), the decision cache,
hot swapping, and the policy-aware batch-planner entry point.
"""

from __future__ import annotations

import pytest

from repro.core.configuration import Configuration
from repro.core.parameters import COLOR_DEPTH, FRAME_RATE, RESOLUTION
from repro.errors import PolicyDeniedError, ValidationError
from repro.formats.format import MediaType
from repro.formats.registry import FormatRegistry
from repro.formats.variants import ContentVariant
from repro.planner.batch import BatchPlanner, PlanRequest
from repro.policy import (
    ACTIONS,
    BitrateUnder,
    CodecMatch,
    Decodes,
    DeviceIn,
    FormatIn,
    PolicyDocument,
    PolicyEngine,
    PolicyRule,
    PREDICATE_KINDS,
    ResolutionWithin,
)
from repro.policy.engine import PolicyPlan
from repro.profiles.device import DeviceProfile
from repro.services.descriptor import SERVICE_TIERS, ServiceDescriptor
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

SCENARIO = generate_scenario(
    SyntheticConfig(seed=7, n_services=12, n_formats=8, n_nodes=8,
                    hw_tier_fraction=0.5)
)
SOURCE = SCENARIO.content.format_names()[0]


def _request(device=None):
    return PlanRequest(
        content=SCENARIO.content,
        device=device if device is not None else SCENARIO.device,
        user=SCENARIO.user,
        sender_node=SCENARIO.sender_node,
        receiver_node=SCENARIO.receiver_node,
    )


def _compatible_device(device_id="compat"):
    """A device that decodes the source format natively (skip-eligible)."""
    return DeviceProfile(
        device_id=device_id,
        decoders=[SOURCE] + list(SCENARIO.device.decoders),
        max_resolution=SCENARIO.device.max_resolution,
        max_color_depth=SCENARIO.device.max_color_depth,
        max_frame_rate=SCENARIO.device.max_frame_rate,
    )


def _variant(fmt_name="V", codec="h264", frame_rate=30.0, resolution=None):
    registry = FormatRegistry()
    fmt = registry.define(
        fmt_name, MediaType.VIDEO, codec=codec, compression_ratio=20.0
    )
    values = {FRAME_RATE: frame_rate}
    if resolution is not None:
        values[RESOLUTION] = resolution
        values[COLOR_DEPTH] = 24.0
    return ContentVariant(format=fmt, configuration=Configuration(values))


class TestPredicates:
    def test_codec_match(self):
        assert CodecMatch("h264").matches_variant(_variant(codec="h264"))
        assert not CodecMatch("vp9").matches_variant(_variant(codec="h264"))

    def test_codec_match_rejects_empty(self):
        with pytest.raises(ValidationError):
            CodecMatch("")

    def test_format_in(self):
        predicate = FormatIn(("V", "W"))
        assert predicate.matches_variant(_variant("V"))
        assert not predicate.matches_variant(_variant("X"))

    def test_format_in_rejects_empty_and_duplicates(self):
        with pytest.raises(ValidationError):
            FormatIn(())
        with pytest.raises(ValidationError):
            FormatIn(("V", "V"))

    def test_bitrate_under(self):
        variant = _variant(frame_rate=30.0, resolution=320.0 * 240.0)
        budget = variant.required_bandwidth()
        assert budget > 0.0
        assert BitrateUnder(budget + 1.0).matches_variant(variant)
        assert not BitrateUnder(budget / 2.0).matches_variant(variant)
        with pytest.raises(ValidationError):
            BitrateUnder(0.0)

    def test_resolution_within(self):
        within = _variant(resolution=320.0 * 240.0)
        assert ResolutionWithin(640.0 * 480.0).matches_variant(within)
        assert not ResolutionWithin(160.0 * 120.0).matches_variant(within)
        # No resolution assigned counts as within any bound.
        assert ResolutionWithin(1.0).matches_variant(_variant())

    def test_device_in_and_decodes_are_request_scope(self):
        device = _compatible_device("tablet-9")
        assert DeviceIn(("tablet-9",)).matches_request(device)
        assert not DeviceIn(("phone-1",)).matches_request(device)
        assert Decodes(SOURCE).matches_request(device)
        assert not Decodes(SOURCE).matches_request(SCENARIO.device)
        assert DeviceIn(("tablet-9",)).scope == "request"
        assert Decodes(SOURCE).scope == "request"

    def test_registry_covers_every_predicate(self):
        assert set(PREDICATE_KINDS) == {
            "codec_match", "format_in", "bitrate_under",
            "resolution_within", "device_in", "decodes",
        }


class TestDocumentValidation:
    def test_actions_are_closed(self):
        assert ACTIONS == ("skip", "force_tier", "deny")
        with pytest.raises(ValidationError):
            PolicyRule(rule_id="r", action="explode")

    def test_duplicate_rule_ids_rejected(self):
        rule = PolicyRule(rule_id="r", action="deny")
        with pytest.raises(ValidationError):
            PolicyDocument(name="d", rules=(rule, rule))

    def test_force_tier_needs_a_known_tier(self):
        with pytest.raises(ValidationError):
            PolicyRule(rule_id="r", action="force_tier")
        with pytest.raises(ValidationError):
            PolicyRule(rule_id="r", action="force_tier", tier="quantum")
        rule = PolicyRule(rule_id="r", action="force_tier", tier="hw")
        assert rule.tier == "hw"

    def test_non_force_tier_rules_must_not_set_tier(self):
        with pytest.raises(ValidationError):
            PolicyRule(rule_id="r", action="skip", tier="hw")

    def test_tolerance_must_be_non_negative(self):
        with pytest.raises(ValidationError):
            PolicyRule(rule_id="r", action="skip", tolerance=-0.1)

    def test_deny_reason_defaults_to_naming_the_rule(self):
        rule = PolicyRule(rule_id="blocked", action="deny")
        assert "blocked" in rule.deny_reason()
        custom = PolicyRule(rule_id="b2", action="deny", reason="no service")
        assert custom.deny_reason() == "no service"


class TestServiceTiers:
    def test_tier_validated_and_in_cache_key(self):
        sw = ServiceDescriptor(
            service_id="t", input_formats=("A",), output_formats=("B",)
        )
        hw = ServiceDescriptor(
            service_id="t", input_formats=("A",), output_formats=("B",),
            tier="hw",
        )
        assert sw.tier == "sw" and hw.tier == "hw"
        assert sw.cache_key() != hw.cache_key()
        with pytest.raises(ValidationError):
            ServiceDescriptor(
                service_id="t", input_formats=("A",), output_formats=("B",),
                tier="cloud",
            )
        assert SERVICE_TIERS == ("sw", "hw")

    def test_synthetic_hw_siblings_share_placement(self):
        for descriptor in SCENARIO.catalog:
            if descriptor.tier != "hw":
                continue
            base_id = descriptor.service_id[: -len("-hw")]
            base = SCENARIO.catalog.get(base_id)
            assert descriptor.cost > base.cost
            assert descriptor.cpu_factor < base.cpu_factor
            assert SCENARIO.placement.node_of(
                descriptor.service_id
            ) == SCENARIO.placement.node_of(base_id)


class TestPolicyEngine:
    def test_no_document_is_no_decision(self):
        decision = PolicyEngine().evaluate(_request())
        assert decision.kind == "none"

    def test_deny_rule_fires_and_raises(self):
        document = PolicyDocument(
            name="d",
            rules=(PolicyRule(rule_id="block", action="deny",
                              reason="not allowed"),),
        )
        decision = PolicyEngine(document).evaluate(_request())
        assert decision.kind == "deny"
        assert decision.rule_id == "block"
        with pytest.raises(PolicyDeniedError) as excinfo:
            decision.raise_if_denied()
        assert excinfo.value.rule_id == "block"
        assert "not allowed" in str(excinfo.value)

    def test_skip_produces_a_sound_zero_hop_plan(self):
        document = PolicyDocument(
            name="d",
            rules=(PolicyRule(rule_id="native", action="skip",
                              predicates=(Decodes(SOURCE),)),),
        )
        engine = PolicyEngine(document)
        decision = engine.evaluate(_request(_compatible_device()))
        assert decision.kind == "skip"
        plan = decision.plan
        assert isinstance(plan, PolicyPlan)
        assert plan.success
        assert plan.result.path == ("sender", "receiver")
        assert plan.result.formats == (SOURCE,)
        assert plan.result.accumulated_cost == 0.0
        assert plan.result.rounds_run == 0
        # The zero-hop answer must not trail the selector's optimum.
        selector_best = SCENARIO.select(record_trace=False)
        assert plan.result.satisfaction >= selector_best.satisfaction - 1e-9
        assert any("native" in line for line in decision.trace)

    def test_unsound_skip_falls_through_to_selector(self):
        # The base device cannot decode the source format, so a catch-all
        # skip has no candidate variant and must not fire.
        document = PolicyDocument(
            name="d", rules=(PolicyRule(rule_id="always", action="skip"),)
        )
        decision = PolicyEngine(document).evaluate(_request())
        assert decision.kind == "none"

    def test_force_tier_decision(self):
        document = PolicyDocument(
            name="d",
            rules=(PolicyRule(rule_id="pin", action="force_tier",
                              tier="hw"),),
        )
        decision = PolicyEngine(document).evaluate(_request())
        assert decision.kind == "force_tier"
        assert decision.tier == "hw"

    def test_decision_cache_and_counters(self):
        document = PolicyDocument(
            name="d",
            rules=(PolicyRule(rule_id="native", action="skip",
                              predicates=(Decodes(SOURCE),)),),
        )
        engine = PolicyEngine(document)
        request = _request(_compatible_device())
        first = engine.evaluate(request)
        second = engine.evaluate(request)
        assert first.cached is False
        assert second.cached is True
        assert second.plan is first.plan  # same object, just re-labelled
        stats = engine.stats()
        assert stats["counters"]["evaluations"] == 2
        assert stats["counters"]["cache_hits"] == 1
        assert stats["counters"]["fast_path"] == 2  # fresh AND cached
        assert stats["cache_entries"] == 1

    def test_swap_bumps_generation_and_clears_only_this_cache(self):
        document = PolicyDocument(
            name="d",
            rules=(PolicyRule(rule_id="native", action="skip",
                              predicates=(Decodes(SOURCE),)),),
        )
        engine = PolicyEngine(document)
        engine.evaluate(_request(_compatible_device()))
        assert engine.stats()["cache_entries"] == 1
        invalidated = engine.swap(PolicyDocument(name="empty"))
        assert invalidated == 1
        assert engine.generation == 1
        assert engine.stats()["cache_entries"] == 0
        assert engine.evaluate(_request(_compatible_device())).kind == "none"

    def test_cache_bounded_by_clear_on_overflow(self):
        document = PolicyDocument(
            name="d", rules=(PolicyRule(rule_id="block", action="deny"),)
        )
        engine = PolicyEngine(document, cache_size=2)
        for index in range(5):
            engine.evaluate(_request(_compatible_device(f"dev-{index}")))
        assert engine.stats()["cache_entries"] <= 2


class TestPolicyAwarePlanner:
    def _planner(self, document):
        return BatchPlanner.for_scenario(
            SCENARIO, policy_engine=PolicyEngine(document), max_workers=1
        )

    def test_skip_answers_without_the_selector_cache(self):
        planner = self._planner(
            PolicyDocument(
                name="d",
                rules=(PolicyRule(rule_id="native", action="skip",
                                  predicates=(Decodes(SOURCE),)),),
            )
        )
        request = _request(_compatible_device())
        plan, hit, decision = planner.plan_with_policy_info(request)
        assert isinstance(plan, PolicyPlan)
        assert decision.kind == "skip"
        assert hit is False
        assert planner.cache.stats.misses == 0  # never touched
        _plan, hit2, decision2 = planner.plan_with_policy_info(request)
        assert hit2 is True and decision2.cached is True

    def test_deny_raises_from_the_planner(self):
        planner = self._planner(
            PolicyDocument(
                name="d", rules=(PolicyRule(rule_id="block", action="deny"),)
            )
        )
        with pytest.raises(PolicyDeniedError):
            planner.plan(_request())

    def test_force_tier_plans_against_a_filtered_catalog(self):
        planner = self._planner(
            PolicyDocument(
                name="d",
                rules=(PolicyRule(rule_id="pin", action="force_tier",
                                  tier="hw"),),
            )
        )
        plan, _hit, decision = planner.plan_with_policy_info(_request())
        assert decision.kind == "force_tier"
        intermediaries = [
            sid for sid in plan.result.path
            if sid not in ("sender", "receiver")
        ]
        for service_id in intermediaries:
            assert SCENARIO.catalog.get(service_id).tier == "hw"

    def test_incompatible_device_takes_the_selector_path(self):
        planner = self._planner(
            PolicyDocument(
                name="d",
                rules=(PolicyRule(rule_id="native", action="skip",
                                  predicates=(Decodes(SOURCE),)),),
            )
        )
        plan, _hit, decision = planner.plan_with_policy_info(_request())
        assert decision is None
        assert not isinstance(plan, PolicyPlan)
        assert plan.success
