"""Tests for adaptation-graph analytics."""

from __future__ import annotations

import pytest

from repro.core.analysis import GraphAnalysis
from repro.workloads.synthetic import SyntheticConfig, generate_scenario


class TestOnFigure6:
    @pytest.fixture(scope="class")
    def analysis(self, fig6):
        return GraphAnalysis(fig6.build_graph())

    def test_format_usage_counts_edges(self, analysis, fig6):
        usage = analysis.format_usage()
        # F0 labels all ten sender edges; F10 labels T10's three out-edges.
        assert usage["F0"] == 10
        assert usage["F10"] == 3
        assert sum(usage.values()) == fig6.build_graph().edge_count()

    def test_format_usage_sorted_descending(self, analysis):
        counts = list(analysis.format_usage().values())
        assert counts == sorted(counts, reverse=True)

    def test_reachable_formats_exclude_nothing_in_figure6(self, analysis):
        reachable = analysis.reachable_formats()
        assert "F0" in reachable
        assert "F7" in reachable
        # Dead-end outputs still appear (they sit on edges from reachable
        # vertices)... except formats with no edges at all:
        assert "F9" not in reachable  # T9's output feeds nobody
        assert "F15o" not in reachable

    def test_dead_services(self, analysis):
        dead = set(analysis.dead_services())
        # T9 and T15 cannot reach the receiver; T4/T5 only feed T15.
        assert dead == {"T4", "T5", "T9", "T15"}

    def test_degree_stats(self, analysis):
        stats = analysis.degree_stats()
        assert stats is not None
        assert stats.min_in >= 1  # every Figure 6 transcoder is fed
        assert stats.max_out == 3  # T10 feeds T19, T20, receiver

    def test_path_count_matches_enumeration(self, analysis, fig6):
        graph = fig6.build_graph()
        assert analysis.path_count() == len(list(graph.enumerate_paths()))

    def test_widest_chain_bottleneck(self, analysis):
        widest = analysis.widest_chain()
        assert widest is not None
        _, bottleneck = widest
        # Every chain ends on a 2 Mbit/s access link.
        assert bottleneck == pytest.approx(2_000_000.0)

    def test_bottleneck_edges_are_sorted(self, analysis):
        edges = analysis.bottleneck_edges(top=4)
        bandwidths = [e.bandwidth_bps for e in edges]
        assert bandwidths == sorted(bandwidths)
        assert len(edges) == 4

    def test_summary_mentions_key_facts(self, analysis):
        text = analysis.summary()
        assert "vertices:" in text
        assert "17 transcoders" in text
        assert "T9" in text  # dead service named
        assert "F0 x10" in text


class TestOnSynthetic:
    def test_runs_on_generated_scenarios(self):
        for seed in range(3):
            scenario = generate_scenario(SyntheticConfig(seed=seed, n_services=15))
            analysis = GraphAnalysis(scenario.build_graph())
            summary = analysis.summary()
            assert "vertices:" in summary
            assert analysis.path_count(max_paths=500) >= 1

    def test_dead_services_really_are_unusable(self):
        scenario = generate_scenario(SyntheticConfig(seed=6, n_services=20))
        graph = scenario.build_graph()
        dead = set(GraphAnalysis(graph).dead_services())
        for path in graph.enumerate_paths(max_paths=2_000):
            for edge in path:
                assert edge.target not in dead
                assert edge.source not in dead
