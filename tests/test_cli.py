"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv: str):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestTable1Command:
    def test_prints_the_trace(self):
        code, text = run_cli("table1")
        assert code == 0
        assert "Round" in text
        assert "sender,T7,receiver" in text
        assert text.count("0.76") >= 7  # the seven 0.76 rounds


class TestFigure6Command:
    def test_with_t7(self):
        code, text = run_cli("figure6")
        assert code == 0
        assert "sender,T7,receiver" in text
        assert "0.6583" in text

    def test_without_t7(self):
        code, text = run_cli("figure6", "--without-t7")
        assert code == 0
        assert "sender,T8,receiver" in text


class TestSyntheticCommand:
    def test_select_only(self):
        code, text = run_cli("synthetic", "--seed", "3", "--services", "12")
        assert code == 0
        assert "12 services" in text
        assert "satisfaction" in text

    def test_with_delivery(self):
        code, text = run_cli(
            "synthetic", "--seed", "3", "--services", "12", "--deliver", "3"
        )
        assert code == 0
        assert "startup latency" in text
        assert "frames:" in text

    def test_deterministic(self):
        _, first = run_cli("synthetic", "--seed", "5")
        _, second = run_cli("synthetic", "--seed", "5")
        assert first == second


class TestAnalyzeCommand:
    def test_paper_scenario(self):
        code, text = run_cli("analyze", "figure6")
        assert code == 0
        assert "17 transcoders" in text
        assert "dead services" in text

    def test_synthetic_seed(self):
        code, text = run_cli("analyze", "4")
        assert code == 0
        assert "vertices:" in text

    def test_bad_scenario_exits(self):
        with pytest.raises(SystemExit):
            run_cli("analyze", "not-a-thing")


class TestCatalogCommand:
    def test_paper_catalog_is_xml(self):
        code, text = run_cli("catalog", "--paper", "figure3")
        assert code == 0
        assert text.startswith("<catalog>")
        assert 'name="T1"' in text

    def test_synthetic_catalog_round_trips(self):
        from repro.discovery.wsdl import catalog_from_wsdl

        code, text = run_cli("catalog", "--seed", "2")
        assert code == 0
        catalog = catalog_from_wsdl(text.strip())
        assert len(catalog) > 0


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])


class TestExportSolveCommands:
    def test_export_then_solve(self, tmp_path):
        import io as _io
        from repro.cli import main as _main

        path = str(tmp_path / "fig6.json")
        out = _io.StringIO()
        assert _main(["export", path, "--paper", "figure6"], out=out) == 0
        assert "figure6" in out.getvalue()

        out = _io.StringIO()
        assert _main(["solve", path], out=out) == 0
        assert "sender,T7,receiver" in out.getvalue()

    def test_solve_with_trace(self, tmp_path):
        import io as _io
        from repro.cli import main as _main

        path = str(tmp_path / "fig6.json")
        _main(["export", path, "--paper", "figure6"], out=_io.StringIO())
        out = _io.StringIO()
        assert _main(["solve", path, "--trace"], out=out) == 0
        assert "Round" in out.getvalue()

    def test_export_synthetic_round_trips(self, tmp_path):
        import io as _io
        from repro.cli import main as _main

        path = str(tmp_path / "synth.json")
        assert _main(["export", path, "--seed", "5"], out=_io.StringIO()) == 0
        out = _io.StringIO()
        assert _main(["solve", path], out=out) == 0
        assert "satisfaction" in out.getvalue()


class TestSimulateCommand:
    ARGS = ("simulate", "--scenario", "steady", "--seed", "2", "--sessions", "8")

    def test_summary_output(self):
        code, text = run_cli(*self.ARGS)
        assert code == 0
        assert "scenario:          steady (seed 2)" in text
        assert "trace digest:" in text

    def test_deterministic_across_invocations(self):
        _, first = run_cli(*self.ARGS)
        _, second = run_cli(*self.ARGS)
        assert first == second

    def test_json_output(self):
        import json

        code, text = run_cli(*self.ARGS, "--json")
        assert code == 0
        payload = json.loads(text)
        assert payload["fleet"]["sessions"] == 8
        assert len(payload["sessions"]) == 8

    def test_fleet_only_json(self):
        import json

        code, text = run_cli(*self.ARGS, "--json", "--fleet-only")
        assert code == 0
        assert "sessions" not in json.loads(text)

    def test_markdown_output(self):
        code, text = run_cli(*self.ARGS, "--markdown")
        assert code == 0
        assert "| sessions | 8 |" in text

    def test_output_file(self, tmp_path):
        import json

        path = str(tmp_path / "report.json")
        code, text = run_cli(*self.ARGS, "--output", path)
        assert code == 0
        assert path in text
        with open(path, encoding="utf-8") as handle:
            assert json.load(handle)["fleet"]["sessions"] == 8

    def test_faults_and_no_faults_differ(self):
        base = ("simulate", "--scenario", "failover-storm", "--seed", "3",
                "--sessions", "8")
        _, with_faults = run_cli(*base)
        _, without = run_cli(*base, "--no-faults")
        assert with_faults != without

    def test_horizon_and_trace_capacity(self):
        code, text = run_cli(
            *self.ARGS, "--horizon", "10", "--trace-capacity", "4"
        )
        assert code == 0
        assert "virtual horizon:   10.0s" in text

    def test_unknown_scenario_fails(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            run_cli("simulate", "--scenario", "nope")


class TestScenarioFileErrors:
    """solve/export/lint report file problems as one-line errors, exit 2."""

    def one_line_error(self, text: str) -> str:
        lines = [line for line in text.splitlines() if line]
        assert len(lines) == 1, f"expected exactly one error line, got {text!r}"
        assert lines[0].startswith("error:")
        assert "Traceback" not in text
        return lines[0]

    def test_solve_missing_file(self, tmp_path):
        path = str(tmp_path / "does-not-exist.json")
        code, text = run_cli("solve", path)
        assert code == 2
        line = self.one_line_error(text)
        assert "cannot read scenario file" in line
        assert "does-not-exist.json" in line

    def test_solve_malformed_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        code, text = run_cli("solve", str(path))
        assert code == 2
        self.one_line_error(text)

    def test_solve_valid_json_wrong_document(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text('{"document": "something-else"}', encoding="utf-8")
        code, text = run_cli("solve", str(path))
        assert code == 2
        self.one_line_error(text)

    def test_lint_missing_file(self, tmp_path):
        code, text = run_cli("lint", str(tmp_path / "gone.json"))
        assert code == 2
        self.one_line_error(text)

    def test_lint_truncated_file(self, tmp_path):
        path = tmp_path / "truncated.json"
        path.write_text('{"document": "repro-scenario"', encoding="utf-8")
        code, text = run_cli("lint", str(path))
        assert code == 2
        self.one_line_error(text)

    def test_export_to_unwritable_path(self, tmp_path):
        path = str(tmp_path / "no-such-dir" / "out.json")
        code, text = run_cli("export", path, "--paper", "figure3")
        assert code == 2
        line = self.one_line_error(text)
        assert "cannot write scenario file" in line

    def test_loadgen_missing_scenario_file(self, tmp_path):
        code, text = run_cli(
            "loadgen", "--scenario", str(tmp_path / "gone.json")
        )
        assert code == 2
        self.one_line_error(text)

    def test_serve_missing_scenario_file(self, tmp_path):
        code, text = run_cli(
            "serve", "--scenario", str(tmp_path / "gone.json")
        )
        assert code == 2
        self.one_line_error(text)

    def test_serve_invalid_rate_limit_config(self):
        # Misconfiguration fails at daemon start with the one-line idiom,
        # not with a traceback (and never on the first request).
        code, text = run_cli(
            "serve", "--rate-limit", "10", "--burst", "0.5"
        )
        assert code == 2
        line = self.one_line_error(text)
        assert "burst" in line

    def test_serve_zero_workers(self):
        code, text = run_cli("serve", "--workers", "0")
        assert code == 2
        line = self.one_line_error(text)
        assert "--workers" in line

    def test_serve_negative_workers(self):
        code, text = run_cli("serve", "--workers", "-2")
        assert code == 2
        line = self.one_line_error(text)
        assert "-2" in line

    def test_loadgen_affinity_without_admin_port(self):
        code, text = run_cli(
            "loadgen", "--shard-affinity", "--requests", "5"
        )
        assert code == 2
        line = self.one_line_error(text)
        assert "admin" in line

    def test_loadgen_affinity_with_unreachable_cluster(self):
        # Nothing listens on this admin port: operational failure, not a
        # traceback.
        code, text = run_cli(
            "loadgen", "--shard-affinity", "--admin-port", "1",
            "--requests", "5",
        )
        assert code == 2
        self.one_line_error(text)


class TestServeLoadgenParsers:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 8077
        assert args.queue_depth == 256
        # --workers counts processes (1 = the classic single daemon);
        # --threads carries the old planning-thread meaning.
        assert args.workers == 1
        assert args.threads == 4
        assert args.admin_port is None
        assert args.rate_limit == 0.0
        assert args.service_floor_ms == 0.0
        assert args.scenario is None

    def test_serve_cluster_flags(self):
        args = build_parser().parse_args([
            "serve", "--workers", "4", "--threads", "2",
            "--admin-port", "9100",
        ])
        assert args.workers == 4
        assert args.threads == 2
        assert args.admin_port == 9100

    def test_loadgen_flags(self):
        args = build_parser().parse_args([
            "loadgen", "--port", "9000", "--requests", "100",
            "--rate", "250", "--seed-arrivals", "4", "--json",
        ])
        assert args.command == "loadgen"
        assert args.port == 9000
        assert args.requests == 100
        assert args.rate == 250.0
        assert args.seed_arrivals == 4
        assert args.json is True
        assert args.shard_affinity is False
        assert args.admin_port is None

    def test_loadgen_affinity_flags(self):
        args = build_parser().parse_args([
            "loadgen", "--shard-affinity", "--admin-port", "8078",
        ])
        assert args.shard_affinity is True
        assert args.admin_port == 8078


class TestLintCommand:
    def test_clean_scenario(self, tmp_path):
        import io as _io
        from repro.cli import main as _main

        path = str(tmp_path / "fig3.json")
        _main(["export", path, "--paper", "figure3"], out=_io.StringIO())
        out = _io.StringIO()
        assert _main(["lint", path], out=out) == 0
        assert "clean" in out.getvalue()

    def test_scenario_with_warnings_still_passes(self, tmp_path):
        import io as _io
        from repro.cli import main as _main

        path = str(tmp_path / "fig6.json")
        _main(["export", path, "--paper", "figure6"], out=_io.StringIO())
        out = _io.StringIO()
        # Figure 6 has dead-end services -> warnings, but no errors.
        assert _main(["lint", path], out=out) == 0
        assert "[warning]" in out.getvalue()


class TestPlanGroupCommand:
    ARGS = ("plan-group", "--seed", "7", "--sessions", "40", "--classes", "8")

    def test_summary_output(self):
        code, text = run_cli(*self.ARGS)
        assert code == 0
        assert "40 sessions, 8 receiver classes" in text
        assert "tree:" in text
        assert "saved:" in text
        assert "digest:" in text

    def test_deterministic_across_invocations(self):
        _, first = run_cli(*self.ARGS)
        _, second = run_cli(*self.ARGS)
        first_digest = [l for l in first.splitlines() if "digest" in l]
        second_digest = [l for l in second.splitlines() if "digest" in l]
        assert first_digest == second_digest

    def test_compare_prints_the_baseline(self):
        code, text = run_cli(*self.ARGS, "--compare")
        assert code == 0
        assert "per-session baseline:" in text
        assert "speedup:" in text

    def test_more_classes_than_sessions_is_an_error(self):
        code, text = run_cli(
            "plan-group", "--sessions", "4", "--classes", "8"
        )
        assert code == 2
        assert "error:" in text
