"""Unit tests for Configuration (values, dominance, bandwidth)."""

from __future__ import annotations

import pytest

from repro.core.configuration import Configuration
from repro.core.parameters import AUDIO_QUALITY, COLOR_DEPTH, FRAME_RATE, RESOLUTION
from repro.errors import UnknownParameterError, ValidationError
from repro.formats.format import MediaFormat, MediaType


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            Configuration({})

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            Configuration({FRAME_RATE: -1.0})

    def test_values_coerced_to_float(self):
        config = Configuration({FRAME_RATE: 30})
        assert isinstance(config[FRAME_RATE], float)


class TestMappingProtocol:
    def test_getitem_unknown_raises(self):
        with pytest.raises(UnknownParameterError):
            Configuration({FRAME_RATE: 1.0})["missing"]

    def test_len_iter_contains(self):
        config = Configuration({FRAME_RATE: 1.0, RESOLUTION: 2.0})
        assert len(config) == 2
        assert set(config) == {FRAME_RATE, RESOLUTION}
        assert FRAME_RATE in config

    def test_equality_with_configuration_and_mapping(self):
        a = Configuration({FRAME_RATE: 1.0})
        b = Configuration({FRAME_RATE: 1.0})
        assert a == b
        assert a == {FRAME_RATE: 1.0}
        assert a != Configuration({FRAME_RATE: 2.0})

    def test_hashable(self):
        a = Configuration({FRAME_RATE: 1.0})
        b = Configuration({FRAME_RATE: 1.0})
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_as_dict_is_a_copy(self):
        config = Configuration({FRAME_RATE: 1.0})
        mutable = config.as_dict()
        mutable[FRAME_RATE] = 99.0
        assert config[FRAME_RATE] == 1.0

    def test_get_value_default(self):
        config = Configuration({FRAME_RATE: 1.0})
        assert config.get_value("missing") is None
        assert config.get_value("missing", 7.0) == 7.0


class TestQualityOrdering:
    def test_dominates_componentwise(self):
        high = Configuration({FRAME_RATE: 30.0, RESOLUTION: 100.0})
        low = Configuration({FRAME_RATE: 20.0, RESOLUTION: 100.0})
        assert high.dominates(low)
        assert not low.dominates(high)

    def test_dominates_ignores_disjoint_parameters(self):
        a = Configuration({FRAME_RATE: 30.0})
        b = Configuration({RESOLUTION: 100.0})
        assert a.dominates(b)
        assert b.dominates(a)

    def test_capped_by_reduces(self):
        config = Configuration({FRAME_RATE: 30.0, RESOLUTION: 100.0})
        capped = config.capped_by({FRAME_RATE: 10.0})
        assert capped[FRAME_RATE] == 10.0
        assert capped[RESOLUTION] == 100.0

    def test_capped_by_never_raises_values(self):
        config = Configuration({FRAME_RATE: 5.0})
        capped = config.capped_by({FRAME_RATE: 50.0})
        assert capped[FRAME_RATE] == 5.0

    def test_capped_result_is_dominated(self):
        config = Configuration({FRAME_RATE: 30.0, RESOLUTION: 100.0})
        capped = config.capped_by({FRAME_RATE: 1.0, RESOLUTION: 2.0})
        assert config.dominates(capped)

    def test_with_value_replaces_without_mutation(self):
        config = Configuration({FRAME_RATE: 30.0})
        other = config.with_value(FRAME_RATE, 10.0)
        assert config[FRAME_RATE] == 30.0
        assert other[FRAME_RATE] == 10.0


class TestBandwidth:
    def _fmt(self, ratio=10.0):
        return MediaFormat(name="f", compression_ratio=ratio)

    def test_required_bandwidth_formula(self):
        config = Configuration(
            {FRAME_RATE: 10.0, RESOLUTION: 1000.0, COLOR_DEPTH: 24.0}
        )
        assert config.required_bandwidth(self._fmt()) == pytest.approx(
            10.0 * 1000.0 * 24.0 / 10.0
        )

    def test_missing_parameters_default_to_zero(self):
        config = Configuration({AUDIO_QUALITY: 64.0})
        assert config.required_bandwidth(self._fmt()) == pytest.approx(64_000.0)

    def test_fits_bandwidth_boundary(self):
        config = Configuration(
            {FRAME_RATE: 10.0, RESOLUTION: 1000.0, COLOR_DEPTH: 24.0}
        )
        needed = config.required_bandwidth(self._fmt())
        assert config.fits_bandwidth(self._fmt(), needed)
        assert not config.fits_bandwidth(self._fmt(), needed * 0.99)

    def test_monotone_in_each_parameter(self):
        base = Configuration({FRAME_RATE: 10.0, RESOLUTION: 1000.0, COLOR_DEPTH: 24.0})
        fmt = self._fmt()
        for name in base:
            raised = base.with_value(name, base[name] * 2)
            assert raised.required_bandwidth(fmt) >= base.required_bandwidth(fmt)
