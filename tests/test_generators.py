"""Tests for the structured topology generators."""

from __future__ import annotations

import math

import pytest

from repro.errors import ValidationError
from repro.network.generators import (
    chain_topology,
    dumbbell_topology,
    random_geometric_topology,
    star_topology,
    tree_topology,
)


class TestStar:
    def test_shape(self):
        topology = star_topology(5)
        assert len(topology) == 6
        assert len(topology.links()) == 5
        assert sorted(topology.neighbors("core")) == [f"leaf{i}" for i in range(5)]

    def test_leaf_to_leaf_routes_through_core(self):
        topology = star_topology(3)
        assert topology.widest_path("leaf0", "leaf2") == ["leaf0", "core", "leaf2"]

    def test_validation(self):
        with pytest.raises(ValidationError):
            star_topology(0)


class TestChain:
    def test_shape(self):
        topology = chain_topology(4)
        assert len(topology) == 4
        assert len(topology.links()) == 3

    def test_end_to_end_delay_accumulates(self):
        topology = chain_topology(5, delay_ms=10.0)
        path = topology.shortest_path("hop0", "hop4")
        assert topology.path_delay_ms(path) == pytest.approx(40.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            chain_topology(1)


class TestTree:
    def test_node_count_binary(self):
        topology = tree_topology(depth=3, fanout=2)
        assert len(topology) == 1 + 2 + 4 + 8

    def test_node_count_ternary(self):
        topology = tree_topology(depth=2, fanout=3)
        assert len(topology) == 1 + 3 + 9

    def test_leaves_route_through_root(self):
        topology = tree_topology(depth=2, fanout=2)
        # n3 and n6 are in different subtrees; the path crosses n0.
        path = topology.shortest_path("n3", "n6")
        assert "n0" in path

    def test_validation(self):
        with pytest.raises(ValidationError):
            tree_topology(depth=0)
        with pytest.raises(ValidationError):
            tree_topology(depth=1, fanout=0)


class TestDumbbell:
    def test_bottleneck_dominates_cross_traffic(self):
        topology = dumbbell_topology(3, bottleneck_bps=1e6, edge_bps=10e6)
        assert topology.available_bandwidth("left0", "right0") == 1e6

    def test_same_side_avoids_bottleneck(self):
        topology = dumbbell_topology(3, bottleneck_bps=1e6, edge_bps=10e6)
        assert topology.available_bandwidth("left0", "left1") == 10e6

    def test_validation(self):
        with pytest.raises(ValidationError):
            dumbbell_topology(0)


class TestRandomGeometric:
    def test_deterministic_per_seed(self):
        a = random_geometric_topology(12, seed=3)
        b = random_geometric_topology(12, seed=3)
        assert sorted(a.node_ids()) == sorted(b.node_ids())
        assert len(a.links()) == len(b.links())
        assert [l.bandwidth_bps for l in a.links()] == [
            l.bandwidth_bps for l in b.links()
        ]

    def test_always_connected(self):
        for seed in range(6):
            # A tiny radius forces the stitching logic to do the work.
            topology = random_geometric_topology(10, radius=0.15, seed=seed)
            nodes = topology.node_ids()
            for node in nodes[1:]:
                assert topology.widest_path(nodes[0], node) is not None

    def test_delay_grows_with_distance(self):
        topology = random_geometric_topology(15, radius=0.9, seed=1)
        delays = [link.delay_ms for link in topology.links()]
        assert min(delays) >= 1.0
        assert max(delays) <= 1.0 + 50.0 * math.sqrt(2.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            random_geometric_topology(1)
        with pytest.raises(ValidationError):
            random_geometric_topology(5, radius=0.0)


class TestGeneratorsWithSelection:
    def test_dumbbell_bottleneck_bounds_satisfaction(self):
        """Plumb a generated topology into a real selection: the dumbbell's
        bottleneck must cap the delivered frame rate."""
        from repro.core.configuration import Configuration
        from repro.core.graph import AdaptationGraphBuilder
        from repro.core.parameters import (
            COLOR_DEPTH,
            FRAME_RATE,
            RESOLUTION,
            ContinuousDomain,
            DiscreteDomain,
            Parameter,
            ParameterSet,
        )
        from repro.core.satisfaction import (
            CombinedSatisfaction,
            HarmonicCombiner,
            LinearSatisfaction,
        )
        from repro.core.selection import QoSPathSelector
        from repro.formats.registry import FormatRegistry
        from repro.formats.variants import ContentVariant
        from repro.network.placement import ServicePlacement
        from repro.profiles.content import ContentProfile
        from repro.profiles.device import DeviceProfile
        from repro.services.catalog import ServiceCatalog
        from repro.services.descriptor import ServiceDescriptor

        topology = dumbbell_topology(2, bottleneck_bps=1.2e6, edge_bps=50e6)
        registry = FormatRegistry()
        registry.define("src", compression_ratio=10.0)
        registry.define("dst", compression_ratio=10.0)
        catalog = ServiceCatalog(
            [
                ServiceDescriptor(
                    service_id="X",
                    input_formats=("src",),
                    output_formats=("dst",),
                )
            ]
        )
        placement = ServicePlacement(topology, {"X": "right-core"})
        pixels, depth = 1000.0, 24.0
        content = ContentProfile(
            "c",
            [
                ContentVariant(
                    format=registry.get("src"),
                    configuration=Configuration(
                        {FRAME_RATE: 60.0, RESOLUTION: pixels, COLOR_DEPTH: depth}
                    ),
                )
            ],
        )
        device = DeviceProfile("d", decoders=["dst"])
        graph = AdaptationGraphBuilder(catalog, placement).build(
            content, device, "left0", "right1"
        )
        parameters = ParameterSet(
            [
                Parameter(FRAME_RATE, "fps", ContinuousDomain(0.0, 120.0)),
                Parameter(RESOLUTION, "pixels", DiscreteDomain([pixels])),
                Parameter(COLOR_DEPTH, "bits", DiscreteDomain([depth])),
            ]
        )
        satisfaction = CombinedSatisfaction(
            {FRAME_RATE: LinearSatisfaction(0.0, 60.0)}, HarmonicCombiner()
        )
        result = QoSPathSelector(graph, registry, parameters, satisfaction).run()
        assert result.success
        # 1.2e6 bps / (1000*24/10 bits per frame) = 500 fps > 60: not
        # binding here... shrink: the bottleneck carries the src hop, so
        # the deliverable rate is min(60, 1.2e6/2400) = 60.  Use a fatter
        # frame to make it bind:
        frame_bits = pixels * depth / 10.0
        assert result.delivered_frame_rate <= 1.2e6 / frame_bits + 1e-6
