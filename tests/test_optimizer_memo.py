"""Unit tests for the bounded Optimize() memo and its wiring."""

from __future__ import annotations

import pytest

from repro.core.configuration import Configuration
from repro.core.optimizer import (
    ConfigurationOptimizer,
    OptimizationConstraints,
    OptimizeMemo,
)
from repro.core.parameters import (
    COLOR_DEPTH,
    FRAME_RATE,
    RESOLUTION,
    standard_parameters,
)
from repro.core.satisfaction import (
    CombinedSatisfaction,
    HarmonicCombiner,
    LinearSatisfaction,
)
from repro.errors import ValidationError
from repro.formats.format import MediaFormat


def make_optimizer(memo=None, ideal=30.0, degrade_order=None):
    satisfaction = CombinedSatisfaction(
        {FRAME_RATE: LinearSatisfaction(5.0, ideal)}, HarmonicCombiner()
    )
    return ConfigurationOptimizer(
        standard_parameters(), satisfaction, degrade_order, memo=memo
    )


def make_constraints(bandwidth_bps=2e6, frame_rate=30.0):
    return OptimizationConstraints(
        upstream=Configuration(
            {FRAME_RATE: frame_rate, RESOLUTION: 307_200.0, COLOR_DEPTH: 24.0}
        ),
        caps={FRAME_RATE: 60.0, RESOLUTION: 307_200.0, COLOR_DEPTH: 24.0},
        fmt=MediaFormat(name="memo-fmt", compression_ratio=50.0),
        bandwidth_bps=bandwidth_bps,
    )


class TestOptimizeMemo:
    def test_repeated_call_hits_and_returns_equal_choice(self):
        memo = OptimizeMemo()
        optimizer = make_optimizer(memo=memo)
        first = optimizer.optimize(make_constraints())
        second = optimizer.optimize(make_constraints())
        assert first == second
        assert optimizer.optimize_calls == 2
        assert optimizer.memo_hits == 1
        assert memo.stats.hits == 1 and memo.stats.misses == 1

    def test_memo_shared_across_optimizers_with_same_context(self):
        memo = OptimizeMemo()
        make_optimizer(memo=memo).optimize(make_constraints())
        other = make_optimizer(memo=memo)
        other.optimize(make_constraints())
        assert other.memo_hits == 1

    def test_different_context_never_collides(self):
        # Same constraints, different satisfaction function: the context
        # fingerprint must separate the entries.
        memo = OptimizeMemo()
        a = make_optimizer(memo=memo, ideal=30.0).optimize(make_constraints(5e5))
        b = make_optimizer(memo=memo, ideal=60.0).optimize(make_constraints(5e5))
        assert memo.stats.misses == 2 and memo.stats.hits == 0
        assert a is not None and b is not None
        assert a.satisfaction != b.satisfaction

    def test_degrade_order_is_part_of_the_context(self):
        memo = OptimizeMemo()
        make_optimizer(memo=memo, degrade_order=[RESOLUTION]).optimize(
            make_constraints()
        )
        other = make_optimizer(memo=memo, degrade_order=[COLOR_DEPTH])
        other.optimize(make_constraints())
        assert other.memo_hits == 0

    def test_none_result_is_memoized(self):
        # A resolution cap below the smallest discrete domain value leaves
        # no feasible configuration: optimize() returns None, and the
        # second call must hit the memo without recomputing.
        infeasible = OptimizationConstraints(
            upstream=Configuration(
                {FRAME_RATE: 30.0, RESOLUTION: 307_200.0, COLOR_DEPTH: 24.0}
            ),
            caps={RESOLUTION: 1.0},
            fmt=MediaFormat(name="memo-fmt", compression_ratio=50.0),
            bandwidth_bps=2e6,
        )
        memo = OptimizeMemo()
        optimizer = make_optimizer(memo=memo)
        assert optimizer.optimize(infeasible) is None
        assert optimizer.optimize(infeasible) is None
        assert optimizer.memo_hits == 1

    def test_lru_eviction_is_bounded(self):
        memo = OptimizeMemo(max_entries=2)
        optimizer = make_optimizer(memo=memo)
        for rate in (10.0, 20.0, 30.0):
            optimizer.optimize(make_constraints(frame_rate=rate))
        assert len(memo) == 2
        assert memo.stats.evictions == 1
        # The oldest entry (rate=10) was evicted: re-solving it misses.
        optimizer.optimize(make_constraints(frame_rate=10.0))
        assert optimizer.memo_hits == 0

    def test_clear_empties_entries(self):
        memo = OptimizeMemo()
        optimizer = make_optimizer(memo=memo)
        optimizer.optimize(make_constraints())
        memo.clear()
        assert len(memo) == 0
        optimizer.optimize(make_constraints())
        assert optimizer.memo_hits == 0

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValidationError):
            OptimizeMemo(max_entries=0)

    def test_no_memo_counts_calls_without_hits(self):
        optimizer = make_optimizer()
        optimizer.optimize(make_constraints())
        optimizer.optimize(make_constraints())
        assert optimizer.optimize_calls == 2
        assert optimizer.memo_hits == 0

    def test_memoized_equals_fresh(self):
        memo = OptimizeMemo()
        for bandwidth in (1e4, 1e5, 5e5, 2e6):
            fresh = make_optimizer().optimize(make_constraints(bandwidth))
            memoized = make_optimizer(memo=memo).optimize(
                make_constraints(bandwidth)
            )
            assert fresh == memoized

    def test_stats_hit_rate(self):
        memo = OptimizeMemo()
        assert memo.stats.hit_rate == 0.0
        optimizer = make_optimizer(memo=memo)
        optimizer.optimize(make_constraints())
        optimizer.optimize(make_constraints())
        optimizer.optimize(make_constraints())
        assert memo.stats.hit_rate == pytest.approx(2 / 3)
