"""Failure-injection tests: the framework under broken inputs.

Production systems meet half-broken worlds: unreachable hosts, overloaded
nodes, services that vanish between planning and delivery.  These tests
pin down how each layer fails — loudly, with the right exception, and
without corrupting shared state.
"""

from __future__ import annotations

import pytest

from repro.core.configuration import Configuration
from repro.core.parameters import COLOR_DEPTH, FRAME_RATE, RESOLUTION
from repro.errors import (
    ChainValidationError,
    NoPathError,
    PipelineError,
    UnknownNodeError,
    ValidationError,
)
from repro.formats.registry import FormatRegistry
from repro.network.placement import ServicePlacement
from repro.network.topology import NetworkTopology
from repro.runtime.pipeline import DeliveryPipeline
from repro.services.chains import chain_from_services
from repro.services.descriptor import (
    ServiceDescriptor,
    receiver_descriptor,
    sender_descriptor,
)
from repro.workloads.paper import figure6_scenario


class TestPipelineFailures:
    def _chain_pieces(self):
        registry = FormatRegistry()
        registry.define("A", compression_ratio=10.0)
        registry.define("B", compression_ratio=10.0)
        sender = sender_descriptor("sender", ("A",))
        transcoder = ServiceDescriptor(
            service_id="X",
            input_formats=("A",),
            output_formats=("B",),
            cpu_factor=1.0,
        )
        receiver = receiver_descriptor("receiver", ("B",))
        chain = chain_from_services(
            [sender, transcoder, receiver], ["A", "B"]
        )
        config = Configuration(
            {FRAME_RATE: 30.0, RESOLUTION: 1000.0, COLOR_DEPTH: 24.0}
        )
        return registry, chain, config

    def test_disconnected_host_raises_pipeline_error(self):
        registry, chain, config = self._chain_pieces()
        topology = NetworkTopology()
        topology.node("ns")
        topology.node("island")  # X's host has no links at all
        topology.node("nr")
        topology.link("ns", "nr", 1e6)
        placement = ServicePlacement(
            topology, {"sender": "ns", "X": "island", "receiver": "nr"}
        )
        pipeline = DeliveryPipeline(placement, registry)
        with pytest.raises(PipelineError) as exc:
            pipeline.stream(chain, config, lambda c: 1.0, duration_s=5.0)
        assert "disconnected" in str(exc.value)

    def test_overloaded_host_raises_pipeline_error(self):
        registry, chain, config = self._chain_pieces()
        topology = NetworkTopology()
        topology.node("ns")
        topology.node("weak", cpu_mips=0.0001)
        topology.node("nr")
        topology.link("ns", "weak", 10e6)
        topology.link("weak", "nr", 10e6)
        placement = ServicePlacement(
            topology, {"sender": "ns", "X": "weak", "receiver": "nr"}
        )
        pipeline = DeliveryPipeline(placement, registry)
        with pytest.raises(PipelineError) as exc:
            pipeline.stream(chain, config, lambda c: 1.0, duration_s=5.0)
        assert "MIPS" in str(exc.value)

    def test_unplaced_service_raises(self):
        registry, chain, config = self._chain_pieces()
        topology = NetworkTopology()
        topology.node("ns")
        topology.node("nr")
        topology.link("ns", "nr", 1e6)
        placement = ServicePlacement(topology, {"sender": "ns", "receiver": "nr"})
        pipeline = DeliveryPipeline(placement, registry)
        with pytest.raises(Exception):  # PlacementError for the X hop
            pipeline.stream(chain, config, lambda c: 1.0, duration_s=5.0)

    def test_zero_duration_rejected(self, fig6):
        session = fig6.session()
        plan = session.plan()
        with pytest.raises(PipelineError):
            session.deliver(plan, duration_s=-1.0)


class TestStaleStateAcrossLayers:
    def test_service_vanishing_between_plan_and_deliver(self):
        """Plan against a catalog, remove the winning service, rebuild:
        the new plan reroutes instead of crashing."""
        scenario = figure6_scenario()
        first = scenario.select(record_trace=False)
        assert "T7" in first.path
        scenario.catalog.remove("T7")
        scenario.placement.unplace("T7")
        second = scenario.select(record_trace=False)
        assert second.success
        assert "T7" not in second.path

    def test_admission_rollback_on_self_collision(self):
        """A chain whose hops share one thin link cannot double-book it:
        the admission rolls back atomically."""
        from repro.core.parameters import (
            ContinuousDomain,
            DiscreteDomain,
            Parameter,
            ParameterSet,
        )
        from repro.core.satisfaction import LinearSatisfaction
        from repro.formats.variants import ContentVariant
        from repro.profiles.content import ContentProfile
        from repro.profiles.device import DeviceProfile
        from repro.profiles.user import UserProfile
        from repro.runtime.admission import AdmissionController
        from repro.services.catalog import ServiceCatalog

        # sender(ns) -> X(back on ns side!) -> receiver(nr): both hops
        # cross the single ns--nr link.
        registry = FormatRegistry()
        registry.define("A", compression_ratio=10.0)
        registry.define("B", compression_ratio=10.0)
        topology = NetworkTopology()
        topology.node("ns")
        topology.node("nr")
        # Fits one crossing at 30 fps but not two.
        frame_bits = 1000.0 * 24.0 / 10.0
        topology.link("ns", "nr", 40.0 * frame_bits)
        catalog = ServiceCatalog(
            [
                ServiceDescriptor(
                    service_id="X",
                    input_formats=("A",),
                    output_formats=("B",),
                )
            ]
        )
        placement = ServicePlacement(topology, {"X": "nr"})
        # X sits on nr, so hop 1 (ns->nr) crosses the link and hop 2
        # (nr->nr ... receiver also on nr) does not: make the receiver sit
        # on ns instead so hop 2 crosses back.
        parameters = ParameterSet(
            [
                Parameter(FRAME_RATE, "fps", ContinuousDomain(0.0, 60.0)),
                Parameter(RESOLUTION, "pixels", DiscreteDomain([1000.0])),
                Parameter(COLOR_DEPTH, "bits", DiscreteDomain([24.0])),
            ]
        )
        controller = AdmissionController(
            registry=registry,
            parameters=parameters,
            catalog=catalog,
            placement=placement,
        )
        content = ContentProfile(
            "c",
            [
                ContentVariant(
                    format=registry.get("A"),
                    configuration=Configuration(
                        {FRAME_RATE: 30.0, RESOLUTION: 1000.0, COLOR_DEPTH: 24.0}
                    ),
                )
            ],
        )
        device = DeviceProfile("d", decoders=["B"])
        user = UserProfile(
            "u", {FRAME_RATE: LinearSatisfaction(0, 30)}, budget=10.0
        )
        session = controller.admit(content, device, user, "ns", "ns")
        # Either the admission succeeds with a consistent ledger, or it
        # is rejected with an EMPTY ledger — never a half-booked state.
        if session is None:
            assert len(controller.ledger) == 0
        else:
            assert len(controller.ledger) == len(session.reservations)
            controller.teardown(session.session_id)
            assert len(controller.ledger) == 0

    def test_unknown_node_in_topology_queries(self):
        topology = NetworkTopology()
        topology.node("a")
        with pytest.raises(UnknownNodeError):
            topology.available_bandwidth("a", "ghost")

    def test_chain_execute_with_missing_format_in_registry(self):
        registry = FormatRegistry()
        registry.define("A", compression_ratio=10.0)
        # "B" deliberately NOT registered.
        sender = sender_descriptor("sender", ("A",))
        transcoder = ServiceDescriptor(
            service_id="X", input_formats=("A",), output_formats=("B",)
        )
        receiver = receiver_descriptor("receiver", ("B",))
        chain = chain_from_services([sender, transcoder, receiver], ["A", "B"])
        from repro.formats.variants import ContentVariant

        variant = ContentVariant(
            format=registry.get("A"),
            configuration=Configuration({FRAME_RATE: 10.0}),
        )
        with pytest.raises(Exception):  # UnknownFormatError inside transcode
            chain.execute(variant, registry)
