"""End-to-end tests for the policy pass at the serving gateway.

Boots a real gateway whose scenario embeds a policy document covering
all three actions, then exercises ``GET /policy``, the zero-hop
``policy_skip`` answers, 403 denials, tier-forced planning, hot policy
swaps over ``/admin/reload``, and the loadgen ``policy_mix`` report.
"""

from __future__ import annotations

import asyncio
import json

from repro.policy import (
    Decodes,
    DeviceIn,
    PolicyDocument,
    PolicyRule,
    policy_to_dict,
)
from repro.profiles.device import DeviceProfile
from repro.profiles.serialization import profile_to_dict
from repro.serve import (
    GatewayConfig,
    LoadgenConfig,
    PlanningGateway,
    run_loadgen,
)
from repro.serve.http11 import read_response, render_request
from repro.serve.protocol import encode_payload
from repro.workloads.synthetic import SyntheticConfig, generate_scenario


def _scenario():
    scenario = generate_scenario(
        SyntheticConfig(seed=7, n_services=12, n_formats=8, n_nodes=8,
                        hw_tier_fraction=0.5)
    )
    source = scenario.content.format_names()[0]
    scenario.policy = PolicyDocument(
        name="gateway-policy",
        rules=(
            PolicyRule(rule_id="banned", action="deny",
                       predicates=(DeviceIn(("banned-device",)),),
                       reason="device class is blocked"),
            PolicyRule(rule_id="pinned", action="force_tier", tier="hw",
                       predicates=(DeviceIn(("pinned-device",)),)),
            PolicyRule(rule_id="native", action="skip",
                       predicates=(Decodes(source),), tolerance=0.05),
        ),
    )
    return scenario, source


SCENARIO, SOURCE = _scenario()


def _device(device_id, decoders):
    return DeviceProfile(
        device_id=device_id,
        decoders=decoders,
        max_resolution=SCENARIO.device.max_resolution,
        max_color_depth=SCENARIO.device.max_color_depth,
        max_frame_rate=SCENARIO.device.max_frame_rate,
    )


COMPATIBLE = _device("compat-device",
                     [SOURCE] + list(SCENARIO.device.decoders))
BANNED = _device("banned-device", list(SCENARIO.device.decoders))
PINNED = _device("pinned-device", list(SCENARIO.device.decoders))


async def request(port, method, path, payload=None):
    body = encode_payload(payload) if payload is not None else b""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(render_request(method, path, body, keep_alive=False))
        await writer.drain()
        response = await asyncio.wait_for(read_response(reader), timeout=10.0)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    decoded = json.loads(response.body) if response.body else {}
    return response.status, decoded


def run_against_gateway(coro_factory, scenario=None, **config_overrides):
    defaults = dict(port=0, workers=2)
    defaults.update(config_overrides)

    async def boot():
        gateway = PlanningGateway(
            scenario if scenario is not None else SCENARIO,
            GatewayConfig(**defaults),
        )
        await gateway.start()
        try:
            return await coro_factory(gateway)
        finally:
            await gateway.drain()

    return asyncio.run(boot())


class TestPolicyEndpoint:
    def test_get_policy_reports_document_and_stats(self):
        async def scenario(gateway):
            return await request(gateway.port, "GET", "/policy")

        status, payload = run_against_gateway(scenario)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["policy"] == "gateway-policy"
        assert payload["policy_generation"] == 0
        assert payload["rules"] == 3
        assert payload["document"]["document"] == "repro-policy"
        assert [r["rule_id"] for r in payload["document"]["rules"]] == [
            "banned", "pinned", "native",
        ]

    def test_get_policy_without_a_document(self):
        plain = generate_scenario(
            SyntheticConfig(seed=7, n_services=10, n_formats=6, n_nodes=6)
        )

        async def scenario(gateway):
            return await request(gateway.port, "GET", "/policy")

        status, payload = run_against_gateway(scenario, scenario=plain)
        assert status == 200
        assert payload["policy"] is None
        assert payload["document"] is None


class TestPolicyPlanPaths:
    def test_skip_answers_zero_hop_with_trace_and_counter(self):
        async def scenario(gateway):
            body = {"device": profile_to_dict(COMPATIBLE)}
            first = await request(gateway.port, "POST", "/plan", body)
            second = await request(gateway.port, "POST", "/plan", body)
            metrics = await request(gateway.port, "GET", "/metrics")
            return first, second, metrics

        first, second, metrics = run_against_gateway(scenario)
        status, payload = first
        assert status == 200
        assert payload["status"] == "policy_skip"
        assert payload["success"] is True
        assert payload["path"] == ["sender", "receiver"]
        assert payload["formats"] == [SOURCE]
        assert payload["cost"] == 0.0
        assert payload["rule"] == "native"
        assert any("native" in line for line in payload["policy_trace"])
        assert payload["cache_hit"] is False
        assert second[1]["cache_hit"] is True
        counters = metrics[1]["metrics"]["counters"]
        assert counters["policy_fast_path"] == 2
        # Fast-path answers never run the selector, so they do not count
        # as planned (mirrors how degraded answers are counted).
        assert counters["planned"] == 0

    def test_deny_is_403_with_rule_and_reason(self):
        async def scenario(gateway):
            body = {"device": profile_to_dict(BANNED)}
            response = await request(gateway.port, "POST", "/plan", body)
            metrics = await request(gateway.port, "GET", "/metrics")
            return response, metrics

        (status, payload), metrics = run_against_gateway(scenario)
        assert status == 403
        assert payload["status"] == "denied"
        assert payload["rule"] == "banned"
        assert "blocked" in payload["detail"]
        assert metrics[1]["metrics"]["counters"]["policy_denied"] == 1

    def test_force_tier_plans_and_labels_the_answer(self):
        async def scenario(gateway):
            body = {"device": profile_to_dict(PINNED), "deadline_ms": 2000}
            response = await request(gateway.port, "POST", "/plan", body)
            metrics = await request(gateway.port, "GET", "/metrics")
            return response, metrics

        (status, payload), metrics = run_against_gateway(scenario)
        assert status == 200
        assert payload["status"] in ("ok", "infeasible")
        assert payload["policy_rule"] == "pinned"
        assert payload["forced_tier"] == "hw"
        counters = metrics[1]["metrics"]["counters"]
        assert counters["policy_tier_forced"] == 1
        assert counters["planned"] == 1  # tier-forced answers DO plan
        if payload["status"] == "ok":
            for service_id in payload["path"]:
                if service_id in ("sender", "receiver"):
                    continue
                assert SCENARIO.catalog.get(service_id).tier == "hw"

    def test_unmatched_device_takes_the_selector_path(self):
        async def scenario(gateway):
            return await request(gateway.port, "POST", "/plan", {})

        status, payload = run_against_gateway(scenario)
        assert status == 200
        assert payload["status"] == "ok"  # base device matches no rule


class TestHotPolicySwap:
    def test_reload_swaps_policy_without_flushing_plan_cache(self):
        async def scenario(gateway):
            # Prime both caches: one selector plan, one fast-path answer.
            await request(gateway.port, "POST", "/plan", {})
            await request(gateway.port, "POST", "/plan",
                          {"device": profile_to_dict(COMPATIBLE)})
            swap_body = policy_to_dict(PolicyDocument(name="tightened"))
            status, summary = await request(
                gateway.port, "POST", "/admin/reload", swap_body
            )
            after_policy = await request(gateway.port, "GET", "/policy")
            # The selector plan cache survives a policy-only swap...
            replan = await request(gateway.port, "POST", "/plan", {})
            # ...while the old fast-path answer is gone: the compatible
            # device now runs the selector (empty document).
            compat = await request(gateway.port, "POST", "/plan",
                                   {"device": profile_to_dict(COMPATIBLE)})
            metrics = await request(gateway.port, "GET", "/metrics")
            return status, summary, after_policy, replan, compat, metrics

        status, summary, after_policy, replan, compat, metrics = (
            run_against_gateway(scenario)
        )
        assert status == 200
        assert summary["status"] == "reloaded"
        assert summary["policy"] == "tightened"
        assert summary["policy_generation"] == 1
        assert summary["generation"] == 1  # scenario generation unchanged
        # Both primed decisions are cached (the base device caches a
        # "none" decision alongside the compatible device's "skip").
        assert summary["invalidated"] == 2
        assert after_policy[1]["policy"] == "tightened"
        assert replan[1]["cache_hit"] is True
        assert compat[1]["status"] == "ok"
        assert metrics[1]["metrics"]["counters"]["reloads"] == 1

    def test_swapping_the_same_rules_back_restores_fast_path(self):
        async def scenario(gateway):
            await request(gateway.port, "POST", "/admin/reload",
                          policy_to_dict(PolicyDocument(name="off")))
            off = await request(gateway.port, "POST", "/plan",
                                {"device": profile_to_dict(COMPATIBLE)})
            await request(gateway.port, "POST", "/admin/reload",
                          policy_to_dict(SCENARIO.policy))
            back = await request(gateway.port, "POST", "/plan",
                                 {"device": profile_to_dict(COMPATIBLE)})
            return off, back

        off, back = run_against_gateway(scenario)
        assert off[1]["status"] == "ok"
        assert back[1]["status"] == "policy_skip"

    def test_malformed_policy_body_is_400_and_keeps_the_old_policy(self):
        async def scenario(gateway):
            bad = {"document": "repro-policy", "version": 1, "name": "x",
                   "rules": [{"rule_id": "r", "action": "frobnicate"}]}
            status, payload = await request(
                gateway.port, "POST", "/admin/reload", bad
            )
            policy = await request(gateway.port, "GET", "/policy")
            return status, payload, policy

        status, payload, policy = run_against_gateway(scenario)
        assert status == 400
        assert payload["status"] == "invalid"
        assert "frobnicate" in payload["detail"]
        assert policy[1]["policy"] == "gateway-policy"


class TestLoadgenPolicyMix:
    def test_policy_mix_report_splits_latency_by_path(self):
        async def scenario(gateway):
            config = LoadgenConfig(
                port=gateway.port, requests=40, rate_per_s=400.0,
                seed=3, distinct=8, deadline_ms=2000.0, policy_mix=0.7,
            )
            return await run_loadgen(SCENARIO, config)

        report = run_against_gateway(scenario)
        assert report.completed == 40
        assert report.policy_fast_path > 0
        assert 0.0 < report.policy_fast_path_rate <= 1.0
        document = report.to_dict()
        policy_section = document["metrics"]["policy"]
        assert policy_section["mix"] == 0.7
        assert policy_section["fast_path"] == report.policy_fast_path
        assert set(policy_section["latency_ms"]) == {"fast_path", "selector"}
        assert "policy fast path" in report.summary()

    def test_same_seed_campaigns_share_a_digest(self):
        async def scenario(gateway):
            config = LoadgenConfig(
                port=gateway.port, requests=30, rate_per_s=400.0,
                seed=11, distinct=8, deadline_ms=2000.0, policy_mix=0.5,
            )
            first = await run_loadgen(SCENARIO, config)
            second = await run_loadgen(SCENARIO, config)
            return first, second

        first, second = run_against_gateway(scenario)
        assert first.outcome_digest() == second.outcome_digest()
