"""Unit tests for QoS parameters and value domains."""

from __future__ import annotations

import pytest

from repro.core.parameters import (
    AUDIO_QUALITY,
    COLOR_DEPTH,
    FRAME_RATE,
    RESOLUTION,
    ContinuousDomain,
    DiscreteDomain,
    Parameter,
    ParameterSet,
    standard_parameters,
)
from repro.errors import UnknownParameterError, ValidationError


class TestContinuousDomain:
    def test_bounds(self):
        domain = ContinuousDomain(1.0, 5.0)
        assert domain.minimum == 1.0
        assert domain.maximum == 5.0

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValidationError):
            ContinuousDomain(5.0, 1.0)

    def test_contains(self):
        domain = ContinuousDomain(1.0, 5.0)
        assert domain.contains(1.0)
        assert domain.contains(5.0)
        assert domain.contains(3.3)
        assert not domain.contains(0.9)
        assert not domain.contains(5.1)

    def test_clamp_down_inside(self):
        assert ContinuousDomain(0.0, 10.0).clamp_down(7.5) == 7.5

    def test_clamp_down_above(self):
        assert ContinuousDomain(0.0, 10.0).clamp_down(42.0) == 10.0

    def test_clamp_down_below_returns_none(self):
        assert ContinuousDomain(5.0, 10.0).clamp_down(4.9) is None

    def test_sample_endpoints(self):
        samples = ContinuousDomain(0.0, 10.0).sample(5)
        assert samples[0] == 0.0
        assert samples[-1] == 10.0
        assert len(samples) == 5

    def test_sample_single_returns_maximum(self):
        assert ContinuousDomain(0.0, 10.0).sample(1) == [10.0]

    def test_sample_degenerate_interval(self):
        assert ContinuousDomain(3.0, 3.0).sample(4) == [3.0]

    def test_sample_rejects_zero(self):
        with pytest.raises(ValidationError):
            ContinuousDomain(0.0, 1.0).sample(0)


class TestDiscreteDomain:
    def test_sorts_and_dedupes(self):
        domain = DiscreteDomain([8, 2, 8, 4])
        assert domain.values == (2.0, 4.0, 8.0)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            DiscreteDomain([])

    def test_contains_exact_values_only(self):
        domain = DiscreteDomain([1, 2, 4])
        assert domain.contains(2.0)
        assert not domain.contains(3.0)

    def test_clamp_down_snaps_to_lower_value(self):
        domain = DiscreteDomain([1, 2, 4, 8])
        assert domain.clamp_down(7.9) == 4.0
        assert domain.clamp_down(8.0) == 8.0
        assert domain.clamp_down(100.0) == 8.0

    def test_clamp_down_below_minimum_returns_none(self):
        assert DiscreteDomain([2, 4]).clamp_down(1.0) is None

    def test_sample_includes_extremes(self):
        domain = DiscreteDomain(range(10))
        samples = domain.sample(3)
        assert samples[0] == 0.0
        assert samples[-1] == 9.0
        assert len(samples) == 3

    def test_sample_more_than_size_returns_all(self):
        domain = DiscreteDomain([1, 2, 3])
        assert domain.sample(10) == [1.0, 2.0, 3.0]

    def test_sample_single_returns_maximum(self):
        assert DiscreteDomain([1, 5]).sample(1) == [5.0]


class TestParameter:
    def test_requires_name(self):
        with pytest.raises(ValidationError):
            Parameter("", "fps", ContinuousDomain(0, 1))

    def test_min_max_delegate_to_domain(self):
        param = Parameter("p", "u", DiscreteDomain([3, 9]))
        assert param.minimum == 3.0
        assert param.maximum == 9.0

    def test_clamp_down_delegates(self):
        param = Parameter("p", "u", DiscreteDomain([3, 9]))
        assert param.clamp_down(5.0) == 3.0

    def test_str_shows_unit(self):
        assert str(Parameter("frame_rate", "fps", ContinuousDomain(0, 1))) == "frame_rate [fps]"


class TestParameterSet:
    def _params(self):
        return ParameterSet(
            [
                Parameter("a", "u", ContinuousDomain(0, 1)),
                Parameter("b", "u", DiscreteDomain([1, 2])),
            ]
        )

    def test_lookup(self):
        params = self._params()
        assert params.get("a").name == "a"
        assert params["b"].name == "b"
        assert "a" in params and "missing" not in params

    def test_unknown_raises(self):
        with pytest.raises(UnknownParameterError):
            self._params().get("missing")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            ParameterSet(
                [
                    Parameter("a", "u", ContinuousDomain(0, 1)),
                    Parameter("a", "u", ContinuousDomain(0, 2)),
                ]
            )

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            ParameterSet([])

    def test_order_preserved(self):
        assert self._params().names() == ["a", "b"]

    def test_subset(self):
        subset = self._params().subset(["b"])
        assert subset.names() == ["b"]

    def test_subset_unknown_raises(self):
        with pytest.raises(UnknownParameterError):
            self._params().subset(["zzz"])

    def test_len_and_iter(self):
        params = self._params()
        assert len(params) == 2
        assert [p.name for p in params] == ["a", "b"]


class TestStandardParameters:
    def test_contains_the_papers_examples(self):
        params = standard_parameters()
        for name in (FRAME_RATE, RESOLUTION, COLOR_DEPTH, AUDIO_QUALITY):
            assert name in params

    def test_frame_rate_is_continuous(self):
        domain = standard_parameters()[FRAME_RATE].domain
        assert isinstance(domain, ContinuousDomain)
        assert domain.minimum == 0.0

    def test_color_depth_values_are_the_usual_ones(self):
        domain = standard_parameters()[COLOR_DEPTH].domain
        assert isinstance(domain, DiscreteDomain)
        assert 24.0 in domain.values
        assert 1.0 in domain.values
