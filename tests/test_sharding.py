"""Unit tests for device-class shard hints and the consistent-hash ring.

The ring is pure arithmetic — no processes, no sockets — so these tests
pin the properties the cluster leans on: determinism in the worker-id
set, even-ish spread, bounded movement when the cluster resizes, and a
hint function that tracks the device profile's cache key exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.planner.workload import device_variants
from repro.serve.sharding import (
    SHARD_HINT_HEADER,
    WORKER_ID_HEADER,
    DEFAULT_REPLICAS,
    ShardRouter,
    device_shard_hint,
)
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

SCENARIO = generate_scenario(
    SyntheticConfig(seed=7, n_services=10, n_formats=6, n_nodes=6)
)


class TestDeviceShardHint:
    def test_stable_across_calls(self):
        assert device_shard_hint(SCENARIO.device) == device_shard_hint(
            SCENARIO.device
        )

    def test_distinct_device_classes_hint_distinctly(self):
        variants = device_variants(SCENARIO.device, 16)
        hints = {device_shard_hint(variant) for variant in variants}
        assert len(hints) == 16

    def test_tracks_the_cache_key(self):
        # Two profile objects with identical cache keys must produce
        # identical hints — the hint is a function of the fingerprint
        # component, not of object identity.
        variants_a = device_variants(SCENARIO.device, 4)
        variants_b = device_variants(SCENARIO.device, 4)
        for a, b in zip(variants_a, variants_b):
            assert a.cache_key() == b.cache_key()
            assert device_shard_hint(a) == device_shard_hint(b)

    def test_headers_are_lowercase_wire_safe(self):
        assert SHARD_HINT_HEADER == SHARD_HINT_HEADER.lower()
        assert WORKER_ID_HEADER == WORKER_ID_HEADER.lower()


class TestShardRouter:
    def test_deterministic_in_the_worker_set(self):
        a = ShardRouter.for_cluster(4)
        b = ShardRouter([0, 1, 2, 3])
        assert a == b
        hints = [f"hint-{i}" for i in range(100)]
        assert [a.route(h) for h in hints] == [b.route(h) for h in hints]

    def test_routes_within_the_worker_set(self):
        router = ShardRouter.for_cluster(3)
        for i in range(200):
            assert router.route(f"hint-{i}") in (0, 1, 2)

    def test_spread_is_roughly_even(self):
        router = ShardRouter.for_cluster(4)
        hints = [f"device-{i}" for i in range(2000)]
        counts = router.distribution(hints)
        assert set(counts) == {0, 1, 2, 3}
        # 64 vnodes keeps worst-case imbalance well under 2x on this
        # sample size; an uneven ring would fail loudly here.
        assert min(counts.values()) > 200
        assert max(counts.values()) < 1000

    def test_distribution_includes_idle_workers(self):
        router = ShardRouter.for_cluster(8)
        counts = router.distribution(["only-one-hint"])
        assert set(counts) == set(range(8))
        assert sum(counts.values()) == 1

    def test_resize_moves_a_minority_of_hints(self):
        # The consistent-hash property the cluster's restart story needs:
        # going 4 -> 5 workers must not reshuffle most of the hint space.
        before = ShardRouter.for_cluster(4)
        after = ShardRouter.for_cluster(5)
        hints = [f"device-{i}" for i in range(1000)]
        moved = sum(
            1 for hint in hints if before.route(hint) != after.route(hint)
        )
        assert moved < 500  # ideal ~1/5; far below a full reshuffle

    def test_wire_round_trip(self):
        router = ShardRouter.for_cluster(3)
        assert ShardRouter.from_dict(router.to_dict()) == router
        assert router.to_dict() == {
            "worker_ids": [0, 1, 2],
            "replicas": DEFAULT_REPLICAS,
        }

    def test_from_dict_rejects_malformed_documents(self):
        with pytest.raises(ValidationError):
            ShardRouter.from_dict({"worker_ids": "012"})
        with pytest.raises(ValidationError):
            ShardRouter.from_dict({"worker_ids": [0, True]})
        with pytest.raises(ValidationError):
            ShardRouter.from_dict({"worker_ids": [0, 1], "replicas": "many"})
        with pytest.raises(ValidationError):
            ShardRouter.from_dict({"worker_ids": []})

    def test_rejects_bad_construction(self):
        with pytest.raises(ValidationError):
            ShardRouter([])
        with pytest.raises(ValidationError):
            ShardRouter([1, 1])
        with pytest.raises(ValidationError):
            ShardRouter([0], replicas=0)
        with pytest.raises(ValidationError):
            ShardRouter.for_cluster(0)

    @given(
        workers=st.integers(min_value=1, max_value=8),
        hint=st.text(min_size=1, max_size=32),
    )
    @settings(max_examples=50, deadline=None)
    def test_route_is_total_and_stable(self, workers, hint):
        router = ShardRouter.for_cluster(workers)
        owner = router.route(hint)
        assert 0 <= owner < workers
        assert router.route(hint) == owner
        assert ShardRouter.for_cluster(workers).route(hint) == owner
