"""Property-based tests (hypothesis) on the circuit-breaker state machine.

The breaker guards the serving path, so its invariants are checked
adversarially rather than by example:

- only the four legal transitions ever appear in a trace, no matter what
  outcome/time stream drives the breaker (in particular CLOSED ->
  HALF_OPEN and OPEN -> CLOSED never occur);
- HALF_OPEN consumes at most ``probe_quota`` outcomes before reaching a
  verdict, and exhausting the quota without recovery re-opens;
- the hysteresis band keeps adversarial alternating outcome streams from
  ever flapping the breaker at the default thresholds;
- a fixed seed yields a bit-identical transition trace (including the
  jittered cooldown instants), which is what the sim's determinism gate
  and the E21 benchmark digests rely on;
- ``apply_remote`` always converges on the peer's verdict by walking
  legal intermediate states.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.serve.health import (
    BreakerState,
    CircuitBreaker,
    HealthConfig,
    HealthRegistry,
)

LEGAL = {
    ("closed", "open"),
    ("open", "half_open"),
    ("half_open", "closed"),
    ("half_open", "open"),
}

#: Outcome streams: (success, seconds since the previous report).
outcome_streams = st.lists(
    st.tuples(
        st.booleans(),
        st.floats(
            min_value=0.0,
            max_value=30.0,
            allow_nan=False,
            allow_infinity=False,
        ),
    ),
    max_size=200,
)


def drive(breaker: CircuitBreaker, stream) -> float:
    now = 0.0
    for success, dt in stream:
        now += dt
        breaker.report(success, now)
    return now


class TestLegalTransitionsOnly:
    @given(stream=outcome_streams, seed=st.integers(0, 2**16))
    @settings(max_examples=150, deadline=None)
    def test_any_stream_yields_only_legal_transitions(self, stream, seed):
        trace = []
        breaker = CircuitBreaker(
            "svc",
            HealthConfig(min_samples=2, cooldown_s=0.5, seed=seed),
            trace.append,
        )
        drive(breaker, stream)  # raises RuntimeError on an illegal jump
        for record in trace:
            assert (record.old, record.new) in LEGAL
        # The two forbidden edges, stated explicitly:
        assert ("closed", "half_open") not in {
            (r.old, r.new) for r in trace
        }
        assert ("open", "closed") not in {(r.old, r.new) for r in trace}

    @given(stream=outcome_streams)
    @settings(max_examples=100, deadline=None)
    def test_registry_quarantine_is_exactly_the_open_set(self, stream):
        registry = HealthRegistry(HealthConfig(min_samples=2, cooldown_s=0.5))
        now = 0.0
        for index, (success, dt) in enumerate(stream):
            now += dt
            registry.report(f"svc{index % 3}", success, now)
            open_set = registry.quarantined(now)
            states = registry.states()
            assert open_set == frozenset(
                sid
                for sid, state in states.items()
                if state is BreakerState.OPEN
            )


class TestProbeQuota:
    @given(
        quota=st.integers(1, 12),
        probes_to_close=st.integers(1, 12),
        extra_successes=st.integers(0, 30),
    )
    @settings(max_examples=150, deadline=None)
    def test_quota_bounds_probes_and_exhaustion_reopens(
        self, quota, probes_to_close, extra_successes
    ):
        if probes_to_close > quota:
            probes_to_close = quota
        # close_threshold so low that no probe run inside the quota can
        # drag the EWMA under it (0.5 * 0.7^12 ~ 0.007 >> 1e-9), so the
        # only way out of HALF_OPEN is quota exhaustion.
        config = HealthConfig(
            alpha=0.3,
            open_threshold=0.5,
            close_threshold=1e-9,
            min_samples=1,
            cooldown_s=1.0,
            cooldown_jitter=0.0,
            probe_quota=quota,
            probes_to_close=probes_to_close,
            seed=1,
        )
        trace = []
        breaker = CircuitBreaker("svc", config, trace.append)
        breaker.report(False, 0.0)
        breaker.report(False, 0.1)
        assert breaker.state is BreakerState.OPEN
        breaker.tick(2.0)
        assert breaker.state is BreakerState.HALF_OPEN
        for step in range(quota + extra_successes):
            breaker.report(True, 2.0 + 0.01 * step)
            assert breaker.probes_used <= quota
        # Exhausted without recovery: back to OPEN, never through CLOSED.
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 2
        assert ("half_open", "closed") not in {
            (r.old, r.new) for r in trace
        }

    def test_successful_probes_close_and_reset_the_detector(self):
        config = HealthConfig(
            min_samples=2, cooldown_s=1.0, cooldown_jitter=0.0, seed=9
        )
        breaker = CircuitBreaker("svc", config)
        for step in range(8):
            breaker.report(False, 0.1 * step)
        assert breaker.state is BreakerState.OPEN
        now = breaker.open_until + 0.001
        for step in range(config.probe_quota):
            if breaker.state is BreakerState.CLOSED:
                break
            breaker.report(True, now + 0.01 * step)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.ewma == 0.0  # fresh detector after recovery
        assert breaker.samples == 0


class TestHysteresis:
    @given(
        length=st.integers(0, 500),
        start_with_failure=st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_alternating_stream_never_flaps_at_defaults(
        self, length, start_with_failure
    ):
        # A strictly alternating stream's EWMA supremum at alpha=0.3 is
        # ~0.588 — strictly inside the (0.35, 0.7) hysteresis band, so
        # the breaker must never leave CLOSED however long the stream.
        trace = []
        breaker = CircuitBreaker("svc", HealthConfig(), trace.append)
        for index in range(length):
            success = (index % 2 == 0) != start_with_failure
            breaker.report(success, 0.5 * index)
        assert breaker.state is BreakerState.CLOSED
        assert trace == []

    def test_sustained_failures_do_open(self):
        breaker = CircuitBreaker("svc", HealthConfig())
        for index in range(10):
            breaker.report(False, 0.5 * index)
        assert breaker.state is BreakerState.OPEN

    def test_min_samples_guards_the_first_failures(self):
        breaker = CircuitBreaker("svc", HealthConfig(min_samples=5))
        for index in range(4):
            breaker.report(False, 0.1 * index)
        # EWMA is far over the threshold but the sample floor holds.
        assert breaker.ewma > HealthConfig().open_threshold
        assert breaker.state is BreakerState.CLOSED


class TestDeterminism:
    @given(
        stream=st.lists(
            st.tuples(
                st.integers(0, 2),
                st.booleans(),
                st.floats(
                    min_value=0.0,
                    max_value=10.0,
                    allow_nan=False,
                    allow_infinity=False,
                ),
            ),
            max_size=150,
        ),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=100, deadline=None)
    def test_fixed_seed_trace_is_bit_identical(self, stream, seed):
        def run():
            registry = HealthRegistry(
                HealthConfig(min_samples=2, cooldown_s=0.5, seed=seed)
            )
            now = 0.0
            for service, success, dt in stream:
                now += dt
                registry.report(f"svc{service}", success, now)
            return registry

        first, second = run(), run()
        assert first.trace_digest() == second.trace_digest()
        assert first.transitions() == second.transitions()
        # Jittered cooldowns are part of the determinism contract too.
        for sid in first.tracked():
            assert (
                first.breaker(sid).open_until
                == second.breaker(sid).open_until
            )

    def test_different_seeds_jitter_cooldowns_apart(self):
        def open_until(seed):
            breaker = CircuitBreaker(
                "svc", HealthConfig(min_samples=1, seed=seed)
            )
            for index in range(5):
                breaker.report(False, 0.0)
            return breaker.open_until

        assert open_until(1) != open_until(2)


class TestRemoteApply:
    targets = st.sampled_from(["closed", "open", "half_open"])

    @given(applies=st.lists(st.tuples(st.integers(0, 1), targets),
                            max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_apply_remote_always_converges_legally(self, applies):
        trace = []
        registry = HealthRegistry(
            HealthConfig(cooldown_s=1000.0, cooldown_jitter=0.0),
            on_transition=trace.append,
        )
        for index, (service, target) in enumerate(applies):
            sid = f"svc{service}"
            registry.apply_remote(sid, target, float(index))
            assert registry.breaker(sid).state.value == target
        # Remote applies converge silently: the registry must not have
        # re-broadcast any of them through its callback.
        assert trace == []
