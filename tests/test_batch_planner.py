"""Integration tests: batch planner, runtime wiring, and the CLI."""

from __future__ import annotations

import io

from repro.cli import main
from repro.planner import BatchPlanner, PlanCache, synthetic_requests
from repro.runtime.admission import AdmissionController
from repro.runtime.metrics import PlannerReport
from repro.workloads.synthetic import SyntheticConfig, generate_scenario


def _scenario(seed=7):
    return generate_scenario(
        SyntheticConfig(seed=seed, n_services=12, n_formats=8, n_nodes=8)
    )


# ----------------------------------------------------------------------
# BatchPlanner
# ----------------------------------------------------------------------


def test_batch_counts_misses_once_per_device_class():
    scenario = _scenario()
    planner = BatchPlanner.for_scenario(scenario, cache=PlanCache())
    requests = synthetic_requests(scenario, 60, 12)
    plans = planner.plan_batch(requests)
    assert len(plans) == 60
    assert all(plan.success for plan in plans)
    stats = planner.cache.stats
    assert stats.misses == 12
    assert stats.hits == 48


def test_batch_preserves_request_order():
    scenario = _scenario()
    planner = BatchPlanner.for_scenario(scenario, cache=PlanCache())
    requests = synthetic_requests(scenario, 30, 6)
    plans = planner.plan_batch(requests)
    for i, plan in enumerate(plans):
        # Round-robin workload: request i uses device class i % 6.
        assert plan.result == plans[i % 6].result


def test_batch_purges_stale_entries_after_mutation():
    scenario = _scenario()
    cache = PlanCache()
    planner = BatchPlanner.for_scenario(scenario, cache=cache)
    requests = synthetic_requests(scenario, 20, 4)
    planner.plan_batch(requests)
    assert len(cache) == 4
    scenario.topology.node("late-node")  # world moves on
    planner.plan_batch(requests)
    stats = cache.stats
    assert stats.invalidations == 4  # old generation purged up front
    assert stats.misses == 8  # recomputed once per class, per epoch
    assert len(cache) == 4


def test_uncached_batch_touches_no_cache():
    scenario = _scenario()
    cache = PlanCache()
    planner = BatchPlanner.for_scenario(scenario, cache=cache)
    plans = planner.plan_batch(synthetic_requests(scenario, 10, 5), use_cache=False)
    assert len(plans) == 10
    assert cache.stats.lookups == 0
    assert len(cache) == 0


def test_empty_batch_is_a_noop():
    planner = BatchPlanner.for_scenario(_scenario(), cache=PlanCache())
    assert planner.plan_batch([]) == []


def test_batch_traces_default_off_with_explicit_opt_in():
    scenario = _scenario()
    requests = synthetic_requests(scenario, 8, 4)
    silent = BatchPlanner.for_scenario(scenario, cache=PlanCache())
    plans = silent.plan_batch(requests)
    assert all(plan.result.trace is None for plan in plans)
    traced = BatchPlanner.for_scenario(
        scenario, cache=PlanCache(), record_trace=True
    )
    traced_plans = traced.plan_batch(requests)
    assert all(plan.result.trace is not None for plan in traced_plans)
    # Plan equality is unaffected by tracing: everything the algorithm
    # defines (path, formats, configuration, satisfaction, cost, rounds)
    # matches; only the trace observability differs.
    for silent_plan, traced_plan in zip(plans, traced_plans):
        bare = traced_plan.result.__class__(
            **{**traced_plan.result.__dict__, "trace": None, "stats": None}
        )
        silent_bare = silent_plan.result.__class__(
            **{**silent_plan.result.__dict__, "stats": None}
        )
        assert bare == silent_bare


def test_batch_shares_one_optimize_memo():
    scenario = _scenario()
    planner = BatchPlanner.for_scenario(scenario, cache=PlanCache())
    planner.plan_batch(synthetic_requests(scenario, 24, 8))
    memo_stats = planner.optimize_memo.stats
    # Eight distinct device classes over one infrastructure: later cache
    # misses replay relaxations solved by earlier ones.
    assert memo_stats.lookups > 0
    assert memo_stats.hits > 0
    assert memo_stats.entries <= memo_stats.misses


def test_plan_uncached_bypasses_optimize_memo():
    scenario = _scenario()
    planner = BatchPlanner.for_scenario(scenario, cache=PlanCache())
    planner.plan_batch(synthetic_requests(scenario, 10, 5), use_cache=False)
    # The from-scratch baseline must pay full cost: no memo traffic.
    assert planner.optimize_memo.stats.lookups == 0


def test_memoized_batch_equals_uncached_batch():
    scenario = _scenario()
    requests = synthetic_requests(scenario, 12, 6)
    planner = BatchPlanner.for_scenario(scenario, cache=PlanCache())
    cached = planner.plan_batch(requests)
    uncached = planner.plan_batch(requests, use_cache=False)
    for a, b in zip(cached, uncached):
        assert a.result == b.result


# ----------------------------------------------------------------------
# Runtime wiring
# ----------------------------------------------------------------------


def test_session_plan_accepts_cache(small_synthetic):
    cache = PlanCache()
    session = small_synthetic.session()
    first = session.plan(cache=cache)
    second = session.plan(cache=cache)
    assert second is first
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    # Without a cache the session still plans the same result.
    fresh = session.plan()
    assert fresh.result == first.result


def test_admission_controller_reuses_plans_until_reservation():
    scenario = _scenario(seed=11)
    cache = PlanCache()
    controller = AdmissionController(
        registry=scenario.registry,
        parameters=scenario.parameters,
        catalog=scenario.catalog,
        placement=scenario.placement,
        cache=cache,
    )

    def admit():
        return controller.admit(
            content=scenario.content,
            device=scenario.device,
            user=scenario.user,
            sender_node=scenario.sender_node,
            receiver_node=scenario.receiver_node,
        )

    first = admit()
    assert first is not None
    stats = cache.stats
    assert stats.misses == 1
    if first.reservations and any(
        r.bandwidth_bps > 0 and len(r.route) > 1 for r in first.reservations
    ):
        # The admission reserved bandwidth -> ledger generation moved ->
        # the next identical request must be planned fresh, never served
        # the pre-reservation plan.
        admit()
        assert cache.stats.misses == 2
        assert cache.stats.hits == 0


def test_planner_report_summary_and_rates():
    report = PlannerReport(
        sessions=100,
        successes=98,
        cache_hits=80,
        cache_misses=20,
        invalidations=3,
        evictions=1,
        elapsed_s=0.5,
    )
    assert report.hit_rate == 0.8
    assert report.throughput_per_s == 200.0
    text = report.summary()
    assert "100" in text
    assert "80.0% hit rate" in text
    zero = PlannerReport(0, 0, 0, 0, 0, 0, 0.0)
    assert zero.hit_rate == 0.0
    assert zero.throughput_per_s == 0.0
    assert zero.optimize_memo_hit_rate == 0.0


def test_planner_report_surfaces_optimize_counters():
    report = PlannerReport(
        sessions=10,
        successes=10,
        cache_hits=5,
        cache_misses=5,
        invalidations=0,
        evictions=0,
        elapsed_s=0.1,
        optimize_calls=400,
        optimize_memo_hits=300,
        settle_rounds=57,
    )
    assert report.optimize_memo_hit_rate == 0.75
    text = report.summary()
    assert "optimize calls:    400 (75.0% memoized)" in text
    assert "settle rounds:     57" in text


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_plan_batch_runs_and_reports():
    out = io.StringIO()
    code = main(
        ["plan-batch", "--sessions", "40", "--distinct", "8", "--seed", "7"],
        out=out,
    )
    assert code == 0
    text = out.getvalue()
    assert "40 sessions" in text
    assert "cache hits:        32" in text
    assert "cache misses:      8" in text


def test_cli_plan_batch_compare_prints_speedup():
    out = io.StringIO()
    code = main(
        [
            "plan-batch",
            "--sessions", "30",
            "--distinct", "6",
            "--compare",
            "--workers", "4",
        ],
        out=out,
    )
    assert code == 0
    text = out.getvalue()
    assert "uncached:" in text
    assert "speedup:" in text
