"""End-to-end tests for the gateway's health/resilience surface.

Boots real gateways on ephemeral ports (same idiom as
``test_gateway.py``: no pytest-asyncio, ``asyncio.run`` per test) and
drives the breaker lifecycle over the wire: ``POST /report`` outcome
feeds, quarantine overlays masking OPEN services out of planning,
degraded-mode passthrough answers, the ``/readyz`` majority-open rule,
and the loadgen's seeded retry schedule.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import ValidationError
from repro.serve import (
    GatewayConfig,
    HealthConfig,
    LoadgenConfig,
    PlanningGateway,
    run_loadgen,
)
from repro.serve.http11 import read_response, render_request
from repro.serve.loadgen import RequestOutcome, _retry_schedule
from repro.serve.protocol import encode_payload
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

SCENARIO = generate_scenario(
    SyntheticConfig(seed=7, n_services=10, n_formats=6, n_nodes=6)
)
ALL_SERVICES = [d.service_id for d in SCENARIO.catalog]


def health_config(**overrides) -> HealthConfig:
    defaults = dict(min_samples=3, cooldown_s=300.0, seed=1)
    defaults.update(overrides)
    return HealthConfig(**defaults)


def gateway_config(**overrides) -> GatewayConfig:
    defaults = dict(port=0, workers=2, health=health_config())
    defaults.update(overrides)
    return GatewayConfig(**defaults)


async def request(port: int, method: str, path: str, payload=None):
    body = encode_payload(payload) if payload is not None else b""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(render_request(method, path, body, keep_alive=False))
        await writer.drain()
        response = await asyncio.wait_for(read_response(reader), timeout=10.0)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    decoded = json.loads(response.body) if response.body else {}
    return response.status, decoded


def run_against_gateway(coro_factory, **config_overrides):
    async def scenario():
        gateway = PlanningGateway(SCENARIO, gateway_config(**config_overrides))
        await gateway.start()
        try:
            return await coro_factory(gateway)
        finally:
            await gateway.drain()

    return asyncio.run(scenario())


def failures(service_id: str, count: int = 8):
    return [{"service": service_id, "success": False}] * count


def successes(service_id: str, count: int = 8):
    return [{"service": service_id, "success": True}] * count


async def report(port: int, outcomes):
    return await request(
        port, "POST", "/report", {"client": "test", "outcomes": outcomes}
    )


class TestReportEndpoint:
    def test_disabled_health_answers_disabled(self):
        async def scenario(gateway):
            reported = await report(gateway.port, failures("S1"))
            health = await request(gateway.port, "GET", "/health")
            ready = await request(gateway.port, "GET", "/readyz")
            return reported, health, ready

        reported, health, ready = run_against_gateway(scenario, health=None)
        assert reported == (200, {"status": "disabled", "accepted": 0})
        assert health[1] == {"status": "disabled", "enabled": False}
        assert ready[0] == 200

    def test_accepts_catalog_services_and_ignores_strangers(self):
        async def scenario(gateway):
            status, payload = await report(
                gateway.port,
                failures("S1", 2) + [{"service": "ghost", "success": True}],
            )
            health = await request(gateway.port, "GET", "/health")
            return status, payload, health[1]

        status, payload, health = run_against_gateway(scenario)
        assert status == 200
        assert payload["accepted"] == 2
        assert payload["ignored"] == 1
        assert payload["open"] == []  # min_samples not reached yet
        assert health["enabled"] is True
        assert health["tracked"] == 1
        assert "ghost" not in health["services"]

    @pytest.mark.parametrize(
        "body",
        [
            {"outcomes": []},
            {"outcomes": "S1"},
            {"outcomes": [{"service": "S1"}]},
            {"outcomes": [{"service": "", "success": True}]},
            {"outcomes": [{"service": "S1", "success": "yes"}]},
            [],
        ],
    )
    def test_malformed_reports_are_400(self, body):
        async def scenario(gateway):
            return await request(gateway.port, "POST", "/report", body)

        status, payload = run_against_gateway(scenario)
        assert status == 400
        assert payload["status"] == "invalid"

    def test_report_get_is_405(self):
        async def scenario(gateway):
            return await request(gateway.port, "GET", "/report")

        status, _ = run_against_gateway(scenario)
        assert status == 405


class TestQuarantine:
    def test_open_breaker_masks_service_from_planning(self):
        async def scenario(gateway):
            _, baseline = await request(gateway.port, "POST", "/plan", {})
            victim = next(
                sid
                for sid in baseline["path"]
                if sid not in ("sender", "receiver")
            )
            await report(gateway.port, failures(victim))
            _, health = await request(gateway.port, "GET", "/health")
            _, replanned = await request(gateway.port, "POST", "/plan", {})
            metrics = (await request(gateway.port, "GET", "/metrics"))[1]
            return victim, baseline, health, replanned, metrics

        victim, baseline, health, replanned, metrics = run_against_gateway(
            scenario
        )
        assert baseline["status"] == "ok"
        assert baseline["degraded"] is False
        assert health["open"] == [victim]
        assert health["services"][victim]["state"] == "open"
        # The replanned answer routes around the quarantined service (or
        # degrades if nothing else is feasible); it never uses it.
        assert replanned["status"] in ("ok", "degraded")
        assert victim not in replanned["path"]
        assert metrics["metrics"]["counters"]["reports"] == 8
        assert metrics["metrics"]["counters"]["breaker_opens"] == 1
        assert metrics["metrics"]["counters"]["quarantine_rebuilds"] >= 1

    def test_quarantining_everything_degrades_not_500s(self):
        async def scenario(gateway):
            outcomes = []
            for sid in ALL_SERVICES:
                outcomes.extend(failures(sid))
            await report(gateway.port, outcomes)
            plan = await request(gateway.port, "POST", "/plan", {})
            metrics = (await request(gateway.port, "GET", "/metrics"))[1]
            return plan, metrics

        (status, payload), metrics = run_against_gateway(scenario)
        assert status == 200
        assert payload["status"] == "degraded"
        assert payload["degraded"] is True
        assert payload["success"] is True
        assert payload["path"] == ["sender", "receiver"]
        assert payload["satisfaction"] == 0.0
        assert payload["quarantined"] == sorted(ALL_SERVICES)
        assert metrics["metrics"]["counters"]["degraded"] == 1

    def test_spent_deadline_budget_answers_degraded(self):
        async def scenario(gateway):
            return await request(gateway.port, "POST", "/plan", {})

        # Budget >= the whole deadline: every request is "nearly spent".
        status, payload = run_against_gateway(
            scenario, degraded_budget_ms=10_000.0
        )
        assert status == 200
        assert payload["degraded"] is True
        assert payload["reason"] == "deadline budget nearly spent"

    def test_readyz_503_when_majority_of_breakers_open(self):
        async def scenario(gateway):
            await report(
                gateway.port,
                failures("S1") + failures("S2") + successes("S3"),
            )
            ready = await request(gateway.port, "GET", "/readyz")
            healthz = await request(gateway.port, "GET", "/healthz")
            return ready, healthz

        ready, healthz = run_against_gateway(scenario)
        assert ready[0] == 503
        assert ready[1]["status"] == "degraded"
        assert "2/3" in ready[1]["detail"]
        assert healthz[0] == 200  # liveness is not readiness

    def test_readyz_stays_ready_while_minority_open(self):
        async def scenario(gateway):
            await report(
                gateway.port,
                failures("S1") + successes("S2") + successes("S3"),
            )
            return await request(gateway.port, "GET", "/readyz")

        status, payload = run_against_gateway(scenario)
        assert status == 200
        assert payload["status"] == "ready"


class TestRecovery:
    def test_half_open_probes_close_the_breaker(self):
        async def scenario(gateway):
            _, baseline = await request(gateway.port, "POST", "/plan", {})
            victim = next(
                sid
                for sid in baseline["path"]
                if sid not in ("sender", "receiver")
            )
            await report(gateway.port, failures(victim))
            _, opened = await request(gateway.port, "GET", "/health")
            # Past the (jittered) cooldown the next report ticks the
            # breaker into HALF_OPEN; successes then close it.
            await asyncio.sleep(0.25)
            states = []
            for _ in range(10):
                await report(gateway.port, successes(victim, 1))
                _, health = await request(gateway.port, "GET", "/health")
                states.append(health["services"][victim]["state"])
                if states[-1] == "closed":
                    break
                await asyncio.sleep(0.02)
            _, final = await request(gateway.port, "POST", "/plan", {})
            return victim, opened, states, final

        victim, opened, states, final = run_against_gateway(
            scenario,
            health=health_config(cooldown_s=0.05, cooldown_jitter=0.0),
        )
        assert opened["services"][victim]["state"] == "open"
        assert states[-1] == "closed"
        assert "half_open" in states or states[-1] == "closed"
        assert final["status"] == "ok"
        assert final["degraded"] is False

    def test_reload_resets_overlay_but_keeps_breakers(self):
        async def scenario(gateway):
            await report(gateway.port, failures("S1"))
            status, payload = await request(
                gateway.port,
                "POST",
                "/admin/reload",
                {"synthetic": {"seed": 7, "n_services": 10,
                               "n_formats": 6, "n_nodes": 6}},
            )
            _, health = await request(gateway.port, "GET", "/health")
            _, plan = await request(gateway.port, "POST", "/plan", {})
            return (status, payload), health, plan

        reload_result, health, plan = run_against_gateway(scenario)
        assert reload_result[0] == 200
        assert health["open"] == ["S1"]  # breakers survive catalog swaps
        assert plan["status"] in ("ok", "degraded")
        assert "S1" not in plan["path"]


class TestLoadgenRetries:
    def test_schedule_is_a_pure_function_of_seed_and_index(self):
        config = LoadgenConfig(retries=4, seed=11)
        first = _retry_schedule(config, 3)
        second = _retry_schedule(config, 3)
        assert first == second
        assert len(first) == 4
        assert all(delay > 0 for delay in first)
        assert all(
            delay <= config.retry_backoff_max_s for delay in first
        )
        # Distinct requests back off on distinct jitter streams.
        assert _retry_schedule(config, 4) != first
        assert (
            _retry_schedule(LoadgenConfig(retries=4, seed=12), 3) != first
        )

    def test_attempts_and_retry_after_are_outside_the_digest(self):
        base = RequestOutcome(0, 200, "ok", True, ("sender",), 1.0, 5.0)
        retried = RequestOutcome(
            0, 200, "ok", True, ("sender",), 1.0, 9.0,
            attempts=3, retry_after_s=0.5,
        )
        assert base.digest_key() == retried.digest_key()

    def test_invalid_retry_settings_raise(self):
        with pytest.raises(ValidationError):
            asyncio.run(
                run_loadgen(SCENARIO, LoadgenConfig(retries=-1))
            )
        with pytest.raises(ValidationError):
            asyncio.run(
                run_loadgen(
                    SCENARIO,
                    LoadgenConfig(retries=1, retry_backoff_s=0.0),
                )
            )

    def test_retries_recover_shed_requests_against_rate_limit(self):
        async def scenario():
            gateway = PlanningGateway(
                SCENARIO,
                GatewayConfig(
                    port=0, workers=2, rate_per_s=30.0, burst=2.0
                ),
            )
            await gateway.start()
            try:
                base = dict(
                    port=gateway.port,
                    requests=12,
                    rate_per_s=400.0,
                    deadline_ms=2_000.0,
                    seed=5,
                )
                single = await run_loadgen(
                    SCENARIO, LoadgenConfig(**base)
                )
                retrying = await run_loadgen(
                    SCENARIO,
                    LoadgenConfig(
                        **base,
                        retries=3,
                        retry_backoff_s=0.02,
                        retry_backoff_max_s=0.2,
                    ),
                )
                return single, retrying
            finally:
                await gateway.drain()

        single, retrying = asyncio.run(scenario())
        # The burst of 12 at ~400/s against a bucket of 2 + 30/s refill
        # must shed without retries; with retries it recovers sheds.
        assert single.shed > 0
        assert single.retried == 0
        assert retrying.retried > 0
        assert retrying.retry_attempts >= retrying.retried
        assert retrying.completed > single.completed
        assert retrying.exhausted <= retrying.retried
        document = retrying.to_dict()["metrics"]
        assert document["retried"] == retrying.retried
        assert document["retry_attempts"] == retrying.retry_attempts
        assert document["exhausted"] == retrying.exhausted
        summary = retrying.summary()
        assert "retried" in summary
