"""Unit and integration tests for the runtime layer."""

from __future__ import annotations

import math

import pytest

from repro.errors import NoPathError, PipelineError, ValidationError
from repro.network.bandwidth import RandomWalkBandwidth, SinusoidalBandwidth
from repro.runtime.events import Event, EventLog
from repro.runtime.session import AdaptationSession
from repro.workloads.paper import figure6_scenario
from repro.workloads.synthetic import SyntheticConfig, generate_scenario


class TestEventLog:
    def test_record_and_read(self):
        log = EventLog()
        log.record(0.0, "setup", "graph built")
        log.record(1.5, "pipeline", "first frame")
        assert len(log) == 2
        assert log[0].category == "setup"
        assert log.last().message == "first frame"

    def test_time_must_not_go_backwards(self):
        log = EventLog()
        log.record(2.0, "a", "x")
        with pytest.raises(ValidationError):
            log.record(1.0, "a", "y")

    def test_category_required(self):
        with pytest.raises(ValidationError):
            EventLog().record(0.0, "", "x")

    def test_in_category(self):
        log = EventLog()
        log.record(0.0, "a", "1")
        log.record(1.0, "b", "2")
        log.record(2.0, "a", "3")
        assert [e.message for e in log.in_category("a")] == ["1", "3"]

    def test_render(self):
        log = EventLog()
        log.record(0.25, "pipeline", "hello")
        assert "pipeline" in log.render()
        assert "hello" in log.render()

    def test_empty_last_is_none(self):
        assert EventLog().last() is None


class TestEventLogRingBuffer:
    def test_unbounded_by_default(self):
        log = EventLog()
        assert log.capacity is None
        for i in range(100):
            log.record(float(i), "tick", str(i))
        assert len(log) == 100
        assert log.dropped == 0

    def test_bounded_log_drops_oldest(self):
        log = EventLog(capacity=3)
        assert log.capacity == 3
        for i in range(5):
            log.record(float(i), "tick", str(i))
        assert len(log) == 3
        assert log.dropped == 2
        assert [e.message for e in log] == ["2", "3", "4"]
        assert log.last().message == "4"

    def test_bounded_log_under_capacity_drops_nothing(self):
        log = EventLog(capacity=10)
        log.record(0.0, "a", "x")
        log.record(1.0, "a", "y")
        assert len(log) == 2
        assert log.dropped == 0

    def test_monotone_time_enforced_across_drops(self):
        # The floor is the last *recorded* time, not the oldest retained.
        log = EventLog(capacity=1)
        log.record(5.0, "a", "x")
        log.record(6.0, "a", "y")
        with pytest.raises(ValidationError):
            log.record(5.5, "a", "z")

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValidationError):
            EventLog(capacity=0)
        with pytest.raises(ValidationError):
            EventLog(capacity=-3)

    def test_in_category_sees_only_retained(self):
        log = EventLog(capacity=2)
        log.record(0.0, "a", "1")
        log.record(1.0, "b", "2")
        log.record(2.0, "a", "3")
        assert [e.message for e in log.in_category("a")] == ["3"]


class TestSessionPlanning:
    def test_plan_reproduces_selector_result(self, fig6):
        plan = fig6.session(prune=False).plan()
        assert plan.success
        assert plan.result.path == ("sender", "T7", "receiver")
        assert plan.result.satisfaction == pytest.approx(19.75 / 30.0, abs=1e-6)

    def test_pruned_plan_same_outcome(self, fig6):
        pruned_plan = fig6.session(prune=True).plan()
        full_plan = fig6.session(prune=False).plan()
        assert pruned_plan.result.path == full_plan.result.path
        assert pruned_plan.result.satisfaction == pytest.approx(
            full_plan.result.satisfaction
        )
        assert pruned_plan.pruning.vertices_removed > 0

    def test_chain_materialization(self, fig6):
        plan = fig6.session().plan()
        chain = plan.chain()
        assert chain.service_ids() == ["sender", "T7", "receiver"]

    def test_failed_plan_raises_on_chain(self):
        scenario = figure6_scenario(budget=0.0)  # nothing is affordable
        plan = scenario.session().plan()
        assert not plan.success
        with pytest.raises(NoPathError):
            plan.chain()


class TestDelivery:
    def test_steady_delivery_without_fluctuation(self, fig6):
        session = fig6.session()
        plan = session.plan()
        report = session.deliver(plan, duration_s=10.0)
        assert report.path == ("sender", "T7", "receiver")
        assert report.frames_sent == 200  # round(19.75) = 20 per second x 10
        assert report.loss_fraction == 0.0
        assert report.average_frame_rate == pytest.approx(19.8, abs=0.3)
        assert report.satisfaction == pytest.approx(19.75 / 30.0, abs=1e-6)
        assert report.startup_latency_s > 0.0
        assert report.total_cost == pytest.approx(1.0)

    def test_fluctuation_degrades_delivery(self, fig6):
        session = fig6.session()
        plan = session.plan()
        calm = session.deliver(plan, duration_s=20.0)
        stormy = session.deliver(
            plan,
            duration_s=20.0,
            fluctuation=SinusoidalBandwidth(amplitude=0.5, period_s=7.0),
        )
        assert stormy.frames_delivered < calm.frames_delivered
        assert stormy.frame_rate_jitter >= calm.frame_rate_jitter

    def test_delivery_deterministic_per_seed(self, fig6):
        session = fig6.session()
        plan = session.plan()
        model = RandomWalkBandwidth(seed=5, step=0.2, floor=0.4)
        a = session.deliver(plan, duration_s=10.0, fluctuation=model, seed=9)
        model_b = RandomWalkBandwidth(seed=5, step=0.2, floor=0.4)
        b = session.deliver(plan, duration_s=10.0, fluctuation=model_b, seed=9)
        assert a.frames_delivered == b.frames_delivered
        assert a.average_frame_rate == b.average_frame_rate

    def test_deliver_requires_success(self):
        scenario = figure6_scenario(budget=0.0)
        session = scenario.session()
        plan = session.plan()
        with pytest.raises(NoPathError):
            session.deliver(plan)

    def test_invalid_duration_rejected(self, fig6):
        session = fig6.session()
        plan = session.plan()
        with pytest.raises(PipelineError):
            session.deliver(plan, duration_s=0.0)

    def test_report_summary_renders(self, fig6):
        session = fig6.session()
        report = session.plan_and_deliver(duration_s=5.0)
        text = report.summary()
        assert "satisfaction" in text
        assert "sender,T7,receiver" in text

    def test_events_capture_pipeline_story(self, fig6):
        from repro.runtime.events import EventLog

        session = fig6.session()
        plan = session.plan()
        log = EventLog()
        session.deliver(plan, duration_s=5.0, events=log)
        categories = {event.category for event in log}
        assert "pipeline" in categories
        assert len(log) >= 3


class TestSessionOnSynthetic:
    @pytest.mark.parametrize("seed", [0, 3, 5])
    def test_plan_and_deliver_runs_end_to_end(self, seed):
        scenario = generate_scenario(SyntheticConfig(seed=seed, n_services=15))
        session = scenario.session()
        plan = session.plan()
        assert plan.success  # the backbone guarantees feasibility
        report = session.deliver(plan, duration_s=5.0)
        assert report.frames_sent >= report.frames_delivered
        assert report.satisfaction == pytest.approx(
            plan.result.satisfaction, abs=1e-9
        )

    def test_loss_reduces_delivery(self):
        """Synthetic topologies have lossy links; delivery reflects it."""
        scenario = generate_scenario(
            SyntheticConfig(seed=1, n_services=15)
        )
        session = scenario.session()
        plan = session.plan()
        report = session.deliver(plan, duration_s=30.0, seed=4)
        if plan.result.path != (plan.graph.sender_id, plan.graph.receiver_id):
            # Some hop crosses a lossy link with probability ~1 over 30 s.
            assert 0.0 <= report.loss_fraction < 0.5
