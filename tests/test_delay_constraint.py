"""Tests for the end-to-end delay bound (Section 3's 'maximum delay').

A delay-sensitive user (videoconferencing, live sports) bounds the
accumulated propagation delay of the chain; selection must trade
satisfaction for latency when the bound bites.
"""

from __future__ import annotations

import math

import pytest

from repro.core.configuration import Configuration
from repro.core.graph import AdaptationGraphBuilder
from repro.core.parameters import (
    COLOR_DEPTH,
    FRAME_RATE,
    RESOLUTION,
    ContinuousDomain,
    DiscreteDomain,
    Parameter,
    ParameterSet,
)
from repro.core.satisfaction import (
    CombinedSatisfaction,
    HarmonicCombiner,
    LinearSatisfaction,
)
from repro.core.selection import QoSPathSelector
from repro.errors import ValidationError
from repro.formats.registry import FormatRegistry
from repro.formats.variants import ContentVariant
from repro.network.placement import ServicePlacement
from repro.network.topology import NetworkTopology
from repro.profiles.content import ContentProfile
from repro.profiles.device import DeviceProfile
from repro.profiles.user import UserProfile
from repro.services.catalog import ServiceCatalog
from repro.services.descriptor import ServiceDescriptor
from repro.workloads.paper import figure6_scenario


def delay_world():
    """Two routes: T_slow (good quality, 200 ms) vs T_fast (poor, 20 ms).

    Formats differentiate quality (frame size -> fps ceiling on equal
    links, as in the Figure 6 reconstruction); node distances
    differentiate delay.
    """
    raw_bits = 1000.0 * 24.0
    wide = 100.0 * raw_bits / 10.0
    registry = FormatRegistry()
    registry.define("F0", compression_ratio=10.0)
    registry.define("Fgood", compression_ratio=raw_bits / (wide / 28.0))
    registry.define("Ffast", compression_ratio=raw_bits / (wide / 12.0))
    topology = NetworkTopology()
    for node in ("ns", "nslow", "nfast", "nr"):
        topology.node(node)
    topology.link("ns", "nslow", wide, delay_ms=100.0)
    topology.link("nslow", "nr", wide, delay_ms=100.0)
    topology.link("ns", "nfast", wide, delay_ms=10.0)
    topology.link("nfast", "nr", wide, delay_ms=10.0)
    catalog = ServiceCatalog(
        [
            ServiceDescriptor(
                service_id="T_slow",
                input_formats=("F0",),
                output_formats=("Fgood",),
            ),
            ServiceDescriptor(
                service_id="T_fast",
                input_formats=("F0",),
                output_formats=("Ffast",),
            ),
        ]
    )
    placement = ServicePlacement(topology, {"T_slow": "nslow", "T_fast": "nfast"})
    content = ContentProfile(
        "c",
        [
            ContentVariant(
                format=registry.get("F0"),
                configuration=Configuration(
                    {FRAME_RATE: 30.0, RESOLUTION: 1000.0, COLOR_DEPTH: 24.0}
                ),
            )
        ],
    )
    device = DeviceProfile("d", decoders=["Fgood", "Ffast"])
    graph = AdaptationGraphBuilder(catalog, placement).build(
        content, device, "ns", "nr"
    )
    parameters = ParameterSet(
        [
            Parameter(FRAME_RATE, "fps", ContinuousDomain(0.0, 60.0)),
            Parameter(RESOLUTION, "pixels", DiscreteDomain([1000.0])),
            Parameter(COLOR_DEPTH, "bits", DiscreteDomain([24.0])),
        ]
    )
    satisfaction = CombinedSatisfaction(
        {FRAME_RATE: LinearSatisfaction(0.0, 30.0)}, HarmonicCombiner()
    )
    return registry, graph, parameters, satisfaction


class TestDelayBound:
    def test_unbounded_user_takes_the_good_slow_route(self):
        registry, graph, parameters, satisfaction = delay_world()
        result = QoSPathSelector(graph, registry, parameters, satisfaction).run()
        assert "T_slow" in result.path
        assert result.accumulated_delay_ms == pytest.approx(200.0)
        assert result.satisfaction == pytest.approx(28.0 / 30.0)

    def test_tight_bound_reroutes_to_the_fast_route(self):
        registry, graph, parameters, satisfaction = delay_world()
        result = QoSPathSelector(
            graph, registry, parameters, satisfaction, max_delay_ms=50.0
        ).run()
        assert result.success
        assert "T_fast" in result.path
        assert result.accumulated_delay_ms == pytest.approx(20.0)
        assert result.satisfaction == pytest.approx(12.0 / 30.0)

    def test_impossible_bound_fails(self):
        registry, graph, parameters, satisfaction = delay_world()
        result = QoSPathSelector(
            graph, registry, parameters, satisfaction, max_delay_ms=5.0
        ).run()
        assert not result.success

    def test_bound_exactly_at_route_delay_admits_it(self):
        registry, graph, parameters, satisfaction = delay_world()
        result = QoSPathSelector(
            graph, registry, parameters, satisfaction, max_delay_ms=200.0
        ).run()
        assert "T_slow" in result.path

    def test_user_profile_carries_the_bound(self):
        registry, graph, parameters, _ = delay_world()
        user = UserProfile(
            "gamer",
            {FRAME_RATE: LinearSatisfaction(0, 30)},
            max_delay_ms=50.0,
        )
        result = QoSPathSelector.for_user(graph, registry, parameters, user).run()
        assert "T_fast" in result.path

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValidationError):
            UserProfile(
                "u",
                {FRAME_RATE: LinearSatisfaction(0, 30)},
                max_delay_ms=0.0,
            )


class TestDelayOnFigure6:
    def test_figure6_edges_carry_delay(self, fig6):
        graph = fig6.build_graph()
        edge = next(e for e in graph.out_edges("sender") if e.target == "T7")
        assert edge.delay_ms == pytest.approx(5.0)  # first-tier link delay

    def test_figure6_result_reports_delay(self, fig6):
        result = fig6.select(record_trace=False)
        # ns--n7 (5 ms) + n7--nr (10 ms).
        assert result.accumulated_delay_ms == pytest.approx(15.0)

    def test_delay_bound_changes_nothing_when_loose(self):
        scenario = figure6_scenario()
        graph = scenario.build_graph()
        bounded = QoSPathSelector(
            graph,
            scenario.registry,
            scenario.parameters,
            scenario.user.satisfaction(),
            max_delay_ms=1000.0,
        ).run()
        assert bounded.path == ("sender", "T7", "receiver")

    def test_delay_serialization_round_trip(self):
        import json

        from repro.profiles.serialization import profile_from_dict, profile_to_dict

        user = UserProfile(
            "u", {FRAME_RATE: LinearSatisfaction(0, 30)}, max_delay_ms=123.0
        )
        data = json.loads(json.dumps(profile_to_dict(user)))
        assert profile_from_dict(data).max_delay_ms == 123.0
