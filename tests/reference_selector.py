"""The seed linear-scan selector, kept verbatim as the equivalence oracle.

:class:`SeedReferenceSelector` reproduces the pre-heap implementation of
the Figure 4 algorithm through the three hot-path hooks
:class:`~repro.core.selection.QoSPathSelector` exposes:

- Step 4 is the seed's scan-and-triple-sort ``_pick`` over the whole
  candidate map (the heap is ignored entirely);
- relaxation edges are re-sorted on every settle, like the seed's
  ``out_edges()`` did before the graph cached them at freeze time;
- the dominance pre-filter is disabled, so every relaxation pays its
  ``Optimize()`` call exactly as the seed did.

The equivalence property suite runs this side by side with the production
selector and asserts bit-identical :class:`SelectionResult`\\ s; the
hot-path benchmark times it as the "seed selector" baseline.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.graph import Edge
from repro.core.selection import LazySettleHeap, QoSPathSelector, TieBreakPolicy
from repro.services.catalog import service_sort_key

__all__ = ["SeedReferenceSelector"]


class SeedReferenceSelector(QoSPathSelector):
    """Seed-equivalent selector: linear-scan pick, per-call edge sorts,
    no dominance filter, no optimize memo."""

    _use_dominance_filter = False

    def _relaxation_edges(self, service_id: str) -> List[Edge]:
        # The seed re-sorted the adjacency on every out_edges() call; the
        # key matches the graph's frozen order, so only the cost differs.
        return sorted(
            self._graph.out_edges(service_id),
            key=lambda e: (service_sort_key(e.target), e.format_name),
        )

    def _select_candidate(self, candidates: Dict, heap: LazySettleHeap):
        # The seed's _pick(): pre-sort CS most-preferred-first for the
        # tie-break policy, then take max by satisfaction (which keeps the
        # first of equals).
        entries = list(candidates.values())
        receiver_id = self._graph.receiver_id
        policy = self._tie_break
        if policy is TieBreakPolicy.PAPER:
            entries.sort(key=lambda e: service_sort_key(e.service_id), reverse=True)
            entries.sort(key=lambda e: e.update_round, reverse=True)
            entries.sort(key=lambda e: e.service_id == receiver_id)
        elif policy is TieBreakPolicy.ASCENDING_ID:
            entries.sort(key=lambda e: service_sort_key(e.service_id))
        elif policy is TieBreakPolicy.DESCENDING_ID:
            entries.sort(key=lambda e: service_sort_key(e.service_id), reverse=True)
        else:  # INSERTION_ORDER
            entries.sort(key=lambda e: e.insertion_index)
        return max(entries, key=lambda e: e.satisfaction)
