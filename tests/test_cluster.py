"""Lifecycle tests for the multi-process gateway cluster.

Each test forks a real 2-worker cluster inside ``asyncio.run`` (this
repo has no pytest-asyncio) and exercises the supervisor's contract over
actual sockets and pipes: merged metrics, reload fan-out, crash
restarts, drain completeness, and shard-affinity routing.  Request
volumes are kept small — the point is the process choreography, not
throughput (that's ``benchmarks/bench_cluster.py``).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal

import pytest

from repro.errors import GatewayError
from repro.policy import DeviceIn, PolicyDocument, PolicyRule, policy_to_dict
from repro.profiles.device import DeviceProfile
from repro.profiles.serialization import profile_to_dict
from repro.serve import (
    ClusterConfig,
    ClusterSupervisor,
    GatewayConfig,
    HealthConfig,
    LoadgenConfig,
    run_loadgen,
)
from repro.serve.http11 import read_response, render_request
from repro.serve.loadgen import _request_bodies
from repro.serve.protocol import encode_payload
from repro.workloads.io import save_scenario
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

SCENARIO = generate_scenario(
    SyntheticConfig(seed=7, n_services=10, n_formats=6, n_nodes=6)
)


async def request(port, method, path, payload=None, headers=None):
    """One raw round-trip; returns (status, decoded body, headers)."""
    body = encode_payload(payload) if payload is not None else b""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(
            render_request(method, path, body, headers=headers,
                           keep_alive=False)
        )
        await writer.drain()
        response = await asyncio.wait_for(read_response(reader), timeout=15.0)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    decoded = json.loads(response.body) if response.body else {}
    return response.status, decoded, response.headers


def run_with_cluster(
    coro_factory, workers=2, scenario_path=None, cluster_overrides=None,
    **gateway_overrides,
):
    """Boot a cluster, run ``coro_factory(supervisor)``, always drain."""
    gateway_defaults = dict(port=0, workers=2)
    gateway_defaults.update(gateway_overrides)
    cluster_defaults = dict(
        workers=workers, admin_port=0, restart_backoff_s=0.05
    )
    cluster_defaults.update(cluster_overrides or {})

    async def scenario():
        supervisor = ClusterSupervisor(
            SCENARIO,
            gateway_config=GatewayConfig(**gateway_defaults),
            cluster_config=ClusterConfig(**cluster_defaults),
            scenario_path=scenario_path,
        )
        await supervisor.start()
        try:
            return await coro_factory(supervisor)
        finally:
            await supervisor.drain()

    return asyncio.run(scenario())


async def worker_entries(supervisor):
    _, document, _ = await request(supervisor.admin_port, "GET", "/cluster")
    return {entry["worker_id"]: entry for entry in document["workers"]}


class TestTopology:
    def test_every_worker_serves_its_private_port(self):
        async def scenario(supervisor):
            entries = await worker_entries(supervisor)
            assert set(entries) == {0, 1}
            for worker_id, entry in entries.items():
                assert entry["alive"] and entry["ready"]
                assert entry["port"] == supervisor.port
                status, payload, headers = await request(
                    entry["private_port"], "POST", "/plan", {}
                )
                assert status == 200
                assert payload["status"] == "ok"
                assert headers["x-worker-id"] == str(worker_id)

        run_with_cluster(scenario)

    def test_shared_port_answers_with_worker_identity(self):
        async def scenario(supervisor):
            seen = set()
            for _ in range(8):
                status, _, headers = await request(
                    supervisor.port, "POST", "/plan", {}
                )
                assert status == 200
                seen.add(headers.get("x-worker-id"))
            # The kernel decides the spread; every answer must carry a
            # valid identity even if one worker took the whole burst.
            assert seen <= {"0", "1"} and seen

        run_with_cluster(scenario)

    def test_readyz_and_healthz(self):
        async def scenario(supervisor):
            status, payload, _ = await request(
                supervisor.admin_port, "GET", "/readyz"
            )
            assert (status, payload["status"]) == (200, "ready")
            status, payload, _ = await request(
                supervisor.admin_port, "GET", "/healthz"
            )
            assert (status, payload["alive"]) == (200, 2)

        run_with_cluster(scenario)

    def test_rejects_zero_workers(self):
        with pytest.raises(GatewayError):
            ClusterSupervisor(
                SCENARIO, cluster_config=ClusterConfig(workers=0)
            )

    def test_boot_failure_aborts_cleanly(self):
        # Occupy a port, then point the admin server at it: start() must
        # raise, terminate the already-forked workers, and leave no
        # callback crashing on the loop afterwards (the sentinel readers
        # fire after the abort has already detached the control pipes).
        import socket as socket_module

        async def scenario():
            blocker = socket_module.socket()
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            loop = asyncio.get_running_loop()
            crashes = []
            loop.set_exception_handler(
                lambda _loop, context: crashes.append(context)
            )
            supervisor = ClusterSupervisor(
                SCENARIO,
                gateway_config=GatewayConfig(port=0, workers=2),
                cluster_config=ClusterConfig(
                    workers=2, admin_port=blocker.getsockname()[1]
                ),
            )
            try:
                with pytest.raises(OSError):
                    await supervisor.start()
                # Let the pending sentinel-reader callbacks run.
                await asyncio.sleep(0.3)
            finally:
                blocker.close()
                loop.set_exception_handler(None)
            assert crashes == []
            for handle in supervisor._handles.values():
                assert not handle.alive
                assert handle.process is None or not handle.process.is_alive()

        asyncio.run(scenario())


class TestMergedMetrics:
    def test_counters_sum_and_histograms_merge_across_workers(self):
        async def scenario(supervisor):
            entries = await worker_entries(supervisor)
            for entry in entries.values():
                for _ in range(3):
                    await request(entry["private_port"], "POST", "/plan", {})
            status, document, _ = await request(
                supervisor.admin_port, "GET", "/metrics"
            )
            assert status == 200
            assert document["section"] == "cluster"
            metrics = document["metrics"]
            assert metrics["scraped"] == 2
            assert metrics["counters"]["received"] == 6
            assert metrics["counters"]["planned"] == 6
            assert metrics["latency_ms"]["count"] == 6
            assert metrics["worker_restarts"] == 0
            assert metrics["generations"] == {"0": 1, "1": 1}
            # Each worker cached its (identical) fingerprint privately:
            # one miss per worker, the rest hits — shared-nothing caches.
            assert metrics["cache"]["misses"] == 2
            assert metrics["cache"]["hits"] == 4

        run_with_cluster(scenario)

    def test_final_drain_document_merges_every_worker(self):
        async def scenario(supervisor):
            for _ in range(4):
                await request(supervisor.port, "POST", "/plan", {})
            final = await supervisor.drain()
            assert final["section"] == "cluster"
            assert final["metrics"]["counters"]["received"] == 4
            assert final["metrics"]["alive"] == 0
            assert final["metrics"]["draining"] is True
            return final

        run_with_cluster(scenario)


class TestReloadFanout:
    def test_admin_reload_reaches_every_worker(self):
        async def scenario(supervisor):
            body = {"synthetic": {"seed": 9, "n_services": 8,
                                  "n_formats": 5, "n_nodes": 5}}
            status, summary, _ = await request(
                supervisor.admin_port, "POST", "/admin/reload", body
            )
            assert status == 200
            assert summary["status"] == "reloaded"
            assert summary["generations"] == {"0": 2, "1": 2}
            entries = await worker_entries(supervisor)
            assert {e["generation"] for e in entries.values()} == {2}
            # The new world actually serves.
            status, payload, _ = await request(
                supervisor.port, "POST", "/plan", {}
            )
            assert status == 200
            assert payload["generation"] == 2

        run_with_cluster(scenario)

    def test_policy_reload_converges_without_a_scenario_generation(self):
        document = PolicyDocument(
            name="fleet-policy",
            rules=(
                PolicyRule(rule_id="blocked", action="deny",
                           predicates=(DeviceIn(("banned-device",)),),
                           reason="blocked fleet-wide"),
            ),
        )
        banned = DeviceProfile(
            device_id="banned-device",
            decoders=list(SCENARIO.device.decoders),
            max_resolution=SCENARIO.device.max_resolution,
            max_color_depth=SCENARIO.device.max_color_depth,
            max_frame_rate=SCENARIO.device.max_frame_rate,
        )

        async def scenario(supervisor):
            status, summary, _ = await request(
                supervisor.admin_port, "POST", "/admin/reload",
                policy_to_dict(document),
            )
            assert status == 200
            assert summary["status"] == "reloaded"
            # A policy-only swap does not mint a scenario generation.
            assert summary["generations"] == {"0": 1, "1": 1}
            entries = await worker_entries(supervisor)
            for entry in entries.values():
                _, payload, _ = await request(
                    entry["private_port"], "GET", "/policy"
                )
                assert payload["policy"] == "fleet-policy"
                assert payload["policy_generation"] == 1
                # The swapped rules actually gate planning everywhere.
                status, denied, _ = await request(
                    entry["private_port"], "POST", "/plan",
                    {"device": profile_to_dict(banned)},
                )
                assert status == 403
                assert denied["rule"] == "blocked"

        run_with_cluster(scenario)

    def test_malformed_reload_is_one_400_and_no_fanout(self):
        async def scenario(supervisor):
            status, payload, _ = await request(
                supervisor.admin_port, "POST", "/admin/reload",
                {"synthetic": {"seed": "seven"}},
            )
            assert status == 400
            assert payload["status"] == "invalid"
            entries = await worker_entries(supervisor)
            assert {e["generation"] for e in entries.values()} == {1}

        run_with_cluster(scenario)

    def test_sighup_style_path_reload_reaches_every_worker(self, tmp_path):
        path = str(tmp_path / "world.json")
        save_scenario(SCENARIO, path)

        async def scenario(supervisor):
            # The SIGHUP handler's body, minus the signal delivery (the
            # CI smoke exercises the real signal through the CLI).
            await supervisor._broadcast_reload_path()
            entries = await worker_entries(supervisor)
            assert {e["generation"] for e in entries.values()} == {2}

        run_with_cluster(scenario, scenario_path=path)


class TestCrashRecovery:
    def test_killed_worker_restarts_and_is_counted(self):
        async def scenario(supervisor):
            entries = await worker_entries(supervisor)
            victim = entries[0]
            os.kill(victim["pid"], signal.SIGKILL)
            deadline = asyncio.get_running_loop().time() + 15.0
            while asyncio.get_running_loop().time() < deadline:
                await asyncio.sleep(0.05)
                entries = await worker_entries(supervisor)
                replacement = entries[0]
                if (
                    replacement["alive"]
                    and replacement["ready"]
                    and replacement["pid"] != victim["pid"]
                ):
                    break
            else:
                raise AssertionError("worker 0 never came back")
            assert replacement["restarts"] == 1
            assert supervisor.worker_restarts == 1
            status, document, _ = await request(
                supervisor.admin_port, "GET", "/metrics"
            )
            assert document["metrics"]["worker_restarts"] == 1
            # The replacement serves on a fresh private port.
            status, _, headers = await request(
                replacement["private_port"], "POST", "/plan", {}
            )
            assert status == 200
            assert headers["x-worker-id"] == "0"

        run_with_cluster(scenario)

    def test_restarts_stop_once_draining(self):
        async def scenario(supervisor):
            final = await supervisor.drain()
            assert final["metrics"]["worker_restarts"] == 0
            await asyncio.sleep(0.3)
            assert supervisor.worker_restarts == 0

        run_with_cluster(scenario)


class TestDrain:
    def test_inflight_request_is_answered_during_drain(self):
        async def scenario(supervisor):
            inflight = asyncio.create_task(
                request(supervisor.port, "POST", "/plan",
                        {"deadline_ms": 5000})
            )
            await asyncio.sleep(0.1)
            final = await supervisor.drain()
            status, payload, _ = await inflight
            assert status == 200
            assert payload["status"] == "ok"
            assert final["metrics"]["counters"]["planned"] == 1

        run_with_cluster(scenario, service_floor_ms=300.0)


class TestShardAffinity:
    def test_affinity_distribution_matches_the_ring(self):
        async def scenario(supervisor):
            config = LoadgenConfig(
                port=supervisor.port,
                requests=60,
                rate_per_s=500.0,
                seed=3,
                distinct=8,
                deadline_ms=2000.0,
                shard_affinity=True,
                admin_port=supervisor.admin_port,
            )
            report = await run_loadgen(SCENARIO, config)
            assert report.failed == 0
            assert report.completed == 60
            hints = [hint for _, hint in _request_bodies(SCENARIO, config)]
            predicted = {
                str(worker): count
                for worker, count in supervisor.router.distribution(
                    hints
                ).items()
                if count
            }
            assert report.worker_distribution() == predicted
            # Every hinted request landed on its shard owner.
            status, document, _ = await request(
                supervisor.admin_port, "GET", "/metrics"
            )
            counters = document["metrics"]["counters"]
            assert counters["shard_hits"] == 60
            assert counters["shard_misses"] == 0
            return report

        run_with_cluster(scenario)

    def test_same_seed_affinity_runs_have_identical_digests(self):
        async def scenario(supervisor):
            config = LoadgenConfig(
                port=supervisor.port,
                requests=40,
                rate_per_s=500.0,
                seed=11,
                distinct=8,
                deadline_ms=2000.0,
                shard_affinity=True,
                admin_port=supervisor.admin_port,
            )
            first = await run_loadgen(SCENARIO, config)
            second = await run_loadgen(SCENARIO, config)
            assert first.failed == 0 and second.failed == 0
            assert first.outcome_digest() == second.outcome_digest()
            assert (
                first.worker_distribution() == second.worker_distribution()
            )

        run_with_cluster(scenario)

    def test_hints_without_affinity_are_metered_not_required(self):
        async def scenario(supervisor):
            # A hinted request on the shared port lands wherever the
            # kernel sends it; the worker meters hit or miss but always
            # answers correctly.
            status, payload, _ = await request(
                supervisor.port, "POST", "/plan", {},
                headers={"x-shard-hint": "some-device-class"},
            )
            assert status == 200
            assert payload["status"] == "ok"
            _, document, _ = await request(
                supervisor.admin_port, "GET", "/metrics"
            )
            counters = document["metrics"]["counters"]
            assert counters["shard_hits"] + counters["shard_misses"] == 1

        run_with_cluster(scenario)


class TestHealthPropagation:
    HEALTH = HealthConfig(min_samples=3, cooldown_s=300.0, seed=1)

    async def _poll_open(self, port, victim, path="/health"):
        document = {}
        deadline = asyncio.get_running_loop().time() + 15.0
        while asyncio.get_running_loop().time() < deadline:
            _, document, _ = await request(port, "GET", path)
            if victim in document.get("open", []):
                return document
            await asyncio.sleep(0.05)
        raise AssertionError(f"{victim} never opened at port {port}")

    def test_one_worker_report_converges_cluster_wide(self):
        async def scenario(supervisor):
            entries = await worker_entries(supervisor)
            victim = "S1"
            status, payload, _ = await request(
                entries[0]["private_port"], "POST", "/report",
                {"client": "t",
                 "outcomes": [{"service": victim, "success": False}] * 8},
            )
            assert status == 200
            assert payload["open"] == [victim]
            # The parent's merged view converges over the control pipe...
            parent = await self._poll_open(supervisor.admin_port, victim)
            assert parent["open"] == [victim]
            assert parent["services"][victim]["state"] == "open"
            assert parent["services"][victim]["worker_id"] == 0
            # ...and the relay reaches the worker that never saw a
            # failure, which now plans around the quarantined service.
            peer = await self._poll_open(entries[1]["private_port"], victim)
            assert peer["services"][victim]["state"] == "open"
            status, plan, _ = await request(
                entries[1]["private_port"], "POST", "/plan", {}
            )
            assert status == 200
            assert plan["status"] in ("ok", "degraded")
            assert victim not in plan["path"]
            # Every tracked breaker is OPEN, so the parent tells load
            # balancers to route around the whole cluster.
            status, ready, _ = await request(
                supervisor.admin_port, "GET", "/readyz"
            )
            assert status == 503
            assert ready["status"] == "degraded"

        run_with_cluster(scenario, health=self.HEALTH)

    def test_restarted_worker_receives_replayed_quarantine(self):
        async def scenario(supervisor):
            entries = await worker_entries(supervisor)
            victim = "S2"
            await request(
                entries[0]["private_port"], "POST", "/report",
                {"client": "t",
                 "outcomes": [{"service": victim, "success": False}] * 8},
            )
            await self._poll_open(supervisor.admin_port, victim)
            old_pid = entries[1]["pid"]
            os.kill(old_pid, signal.SIGKILL)
            deadline = asyncio.get_running_loop().time() + 15.0
            while asyncio.get_running_loop().time() < deadline:
                await asyncio.sleep(0.05)
                entries = await worker_entries(supervisor)
                replacement = entries[1]
                if (
                    replacement["alive"]
                    and replacement["ready"]
                    and replacement["pid"] != old_pid
                ):
                    break
            else:
                raise AssertionError("worker 1 never came back")
            # The replacement booted with empty breakers; the replay on
            # "ready" must hand it the cluster's quarantine view.
            replayed = await self._poll_open(
                replacement["private_port"], victim
            )
            assert replayed["services"][victim]["state"] == "open"

        run_with_cluster(scenario, health=self.HEALTH)


class TestReloadTimeout:
    def test_sigstopped_worker_times_out_instead_of_stalling(self):
        async def scenario(supervisor):
            entries = await worker_entries(supervisor)
            victim_pid = entries[0]["pid"]
            body = {"synthetic": {"seed": 9, "n_services": 8,
                                  "n_formats": 5, "n_nodes": 5}}
            os.kill(victim_pid, signal.SIGSTOP)
            reload_task = asyncio.create_task(
                request(supervisor.admin_port, "POST", "/admin/reload",
                        body)
            )
            # While the fan-out hangs on the stopped worker, the parent
            # stays responsive and reports itself not-ready.
            await asyncio.sleep(0.3)
            ready_status, ready, _ = await request(
                supervisor.admin_port, "GET", "/readyz"
            )
            status, summary, _ = await reload_task
            assert ready_status == 503
            assert ready["status"] == "reloading"
            assert status == 500
            assert summary["status"] == "partial"
            by_worker = {
                entry["worker_id"]: entry for entry in summary["workers"]
            }
            assert by_worker[0]["status"] == "timeout"
            assert "no acknowledgement" in by_worker[0]["detail"]
            assert by_worker[1]["status"] == "ok"
            # After the partial reload the fan-out window is closed
            # again; the healthy worker serves the new generation.
            status, plan, _ = await request(
                entries[1]["private_port"], "POST", "/plan", {}
            )
            assert status == 200
            assert plan["generation"] == 2
            # The victim stays SIGSTOPped: drain (in the harness
            # ``finally``) must still complete via SIGKILL escalation.

        run_with_cluster(
            scenario,
            cluster_overrides=dict(reload_timeout_s=1.0, drain_margin_s=0.3),
            drain_grace_s=0.2,
        )
