"""Unit tests for the media-format model, registry, and content variants."""

from __future__ import annotations

import math

import pytest

from repro.core.configuration import Configuration
from repro.core.parameters import AUDIO_QUALITY, COLOR_DEPTH, FRAME_RATE, RESOLUTION
from repro.errors import UnknownFormatError, ValidationError
from repro.formats.format import MediaFormat, MediaType
from repro.formats.registry import FormatRegistry, standard_registry
from repro.formats.variants import ContentVariant


class TestMediaFormat:
    def test_name_required(self):
        with pytest.raises(ValidationError):
            MediaFormat(name="")

    def test_compression_ratio_must_be_at_least_one(self):
        with pytest.raises(ValidationError):
            MediaFormat(name="x", compression_ratio=0.5)

    def test_bits_per_frame_divides_by_compression(self):
        fmt = MediaFormat(name="x", compression_ratio=10.0)
        assert fmt.bits_per_frame(1000.0, 24.0) == pytest.approx(2400.0)

    def test_bits_per_frame_rejects_negative_inputs(self):
        fmt = MediaFormat(name="x")
        with pytest.raises(ValidationError):
            fmt.bits_per_frame(-1.0, 24.0)

    def test_video_bandwidth_scales_with_frame_rate(self):
        fmt = MediaFormat(name="x", compression_ratio=10.0)
        bw10 = fmt.required_bandwidth(10.0, 1000.0, 24.0)
        bw20 = fmt.required_bandwidth(20.0, 1000.0, 24.0)
        assert bw20 == pytest.approx(2 * bw10)

    def test_video_bandwidth_includes_audio(self):
        fmt = MediaFormat(name="x", compression_ratio=10.0)
        silent = fmt.required_bandwidth(10.0, 1000.0, 24.0)
        with_audio = fmt.required_bandwidth(10.0, 1000.0, 24.0, audio_kbps=128.0)
        assert with_audio == pytest.approx(silent + 128_000.0)

    def test_audio_format_ignores_video_terms(self):
        fmt = MediaFormat(name="a", media_type=MediaType.AUDIO)
        bw = fmt.required_bandwidth(
            frame_rate=30.0, resolution_pixels=1e6, color_depth=24.0, audio_kbps=64.0
        )
        assert bw == pytest.approx(64_000.0)

    def test_image_format_counts_one_frame_per_second(self):
        fmt = MediaFormat(name="i", media_type=MediaType.IMAGE, compression_ratio=4.0)
        bw = fmt.required_bandwidth(resolution_pixels=1000.0, color_depth=8.0)
        assert bw == pytest.approx(2000.0)

    def test_max_frame_rate_inverts_bandwidth(self):
        fmt = MediaFormat(name="x", compression_ratio=10.0)
        fps = fmt.max_frame_rate(2_000_000.0, 76800.0, 24.0)
        # Round trip: the inverted rate uses exactly the bandwidth.
        assert fmt.required_bandwidth(fps, 76800.0, 24.0) == pytest.approx(2_000_000.0)

    def test_max_frame_rate_subtracts_audio(self):
        fmt = MediaFormat(name="x", compression_ratio=10.0)
        silent = fmt.max_frame_rate(1_000_000.0, 76800.0, 24.0)
        with_audio = fmt.max_frame_rate(1_000_000.0, 76800.0, 24.0, audio_kbps=100.0)
        assert with_audio < silent

    def test_max_frame_rate_zero_when_audio_fills_link(self):
        fmt = MediaFormat(name="x", compression_ratio=10.0)
        assert fmt.max_frame_rate(50_000.0, 76800.0, 24.0, audio_kbps=64.0) == 0.0

    def test_max_frame_rate_rejects_non_video(self):
        fmt = MediaFormat(name="a", media_type=MediaType.AUDIO)
        with pytest.raises(ValidationError):
            fmt.max_frame_rate(1e6, 1000.0, 8.0)

    def test_max_frame_rate_rejects_zero_size_frame(self):
        fmt = MediaFormat(name="x")
        with pytest.raises(ValidationError):
            fmt.max_frame_rate(1e6, 0.0, 0.0)

    def test_str_is_name(self):
        assert str(MediaFormat(name="mpeg2-hq")) == "mpeg2-hq"


class TestFormatRegistry:
    def test_register_and_get(self):
        registry = FormatRegistry()
        fmt = registry.define("F1")
        assert registry.get("F1") is fmt
        assert registry["F1"] is fmt
        assert "F1" in registry

    def test_unknown_format_raises(self):
        registry = FormatRegistry()
        with pytest.raises(UnknownFormatError) as exc:
            registry.get("missing")
        assert "missing" in str(exc.value)

    def test_duplicate_identical_is_noop(self):
        registry = FormatRegistry()
        fmt = MediaFormat(name="F1", compression_ratio=2.0)
        registry.register(fmt)
        registry.register(MediaFormat(name="F1", compression_ratio=2.0))
        assert len(registry) == 1

    def test_duplicate_different_requires_replace(self):
        registry = FormatRegistry()
        registry.define("F1", compression_ratio=2.0)
        with pytest.raises(ValidationError):
            registry.define("F1", compression_ratio=3.0)
        registry.register(MediaFormat(name="F1", compression_ratio=3.0), replace=True)
        assert registry.get("F1").compression_ratio == 3.0

    def test_iteration_preserves_registration_order(self):
        registry = FormatRegistry()
        for name in ("B", "A", "C"):
            registry.define(name)
        assert registry.names() == ["B", "A", "C"]

    def test_by_media_type(self):
        registry = FormatRegistry()
        registry.define("v", MediaType.VIDEO)
        registry.define("a", MediaType.AUDIO)
        assert [f.name for f in registry.by_media_type(MediaType.AUDIO)] == ["a"]

    def test_constructor_accepts_iterable(self):
        registry = FormatRegistry([MediaFormat(name="x"), MediaFormat(name="y")])
        assert len(registry) == 2

    def test_standard_registry_has_motivating_formats(self):
        registry = standard_registry()
        # The formats the paper's introduction talks about.
        for name in ("jpeg-image", "gif-image", "html-text", "wml-text"):
            assert name in registry
        assert len(registry) >= 15

    def test_standard_registry_ratios_are_valid(self):
        for fmt in standard_registry():
            assert fmt.compression_ratio >= 1.0


class TestContentVariant:
    def _variant(self, fmt=None):
        fmt = fmt or MediaFormat(name="src", compression_ratio=10.0)
        return ContentVariant(
            format=fmt,
            configuration=Configuration(
                {FRAME_RATE: 30.0, RESOLUTION: 1000.0, COLOR_DEPTH: 24.0}
            ),
            title="clip",
        )

    def test_required_bandwidth_matches_configuration(self):
        variant = self._variant()
        expected = variant.configuration.required_bandwidth(variant.format)
        assert variant.required_bandwidth() == pytest.approx(expected)

    def test_degraded_caps_parameters(self):
        variant = self._variant()
        target = MediaFormat(name="dst", compression_ratio=20.0)
        out = variant.degraded(target, {FRAME_RATE: 15.0})
        assert out.format.name == "dst"
        assert out.configuration[FRAME_RATE] == 15.0
        assert out.configuration[RESOLUTION] == 1000.0

    def test_degraded_never_raises_quality(self):
        variant = self._variant()
        out = variant.degraded(variant.format, {FRAME_RATE: 99.0})
        assert out.configuration[FRAME_RATE] == 30.0

    def test_degraded_keeps_title_and_metadata(self):
        fmt = MediaFormat(name="src")
        variant = ContentVariant(
            format=fmt,
            configuration=Configuration({FRAME_RATE: 10.0}),
            title="news",
            metadata={"lang": "en"},
        )
        out = variant.degraded(fmt, {})
        assert out.title == "news"
        assert out.metadata == {"lang": "en"}

    def test_configuration_type_enforced(self):
        with pytest.raises(ValidationError):
            ContentVariant(
                format=MediaFormat(name="x"),
                configuration={"frame_rate": 30},  # type: ignore[arg-type]
            )

    def test_str_mentions_format(self):
        assert "[src]" in str(self._variant())
