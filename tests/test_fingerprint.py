"""Canonical fingerprints and the hashability they are built on.

Two requirements back the plan cache (ISSUE: plan-cache key integrity):

- equal profiles against equal infrastructure yield equal fingerprints
  (so cache hits happen at all);
- mutating *any* field of *any* input — profile attribute, catalog entry,
  topology link, placement, reservation — yields a different fingerprint
  (so stale plans are unreachable).
"""

from __future__ import annotations

import pytest

from repro.core.satisfaction import (
    HarmonicCombiner,
    LinearSatisfaction,
    MinimumCombiner,
)
from repro.formats.format import MediaFormat, MediaType
from repro.formats.variants import ContentVariant
from repro.core.configuration import Configuration
from repro.core.parameters import FRAME_RATE
from repro.core.selection import TieBreakPolicy
from repro.planner import PlanCache, fingerprint_request
from repro.profiles.context import ContextProfile
from repro.profiles.device import DeviceProfile
from repro.profiles.user import AdaptationPolicy, UserProfile
from repro.services.descriptor import ServiceDescriptor
from repro.workloads.synthetic import SyntheticConfig, generate_scenario


def _fingerprint(scenario, **overrides):
    kwargs = dict(
        user=scenario.user,
        content=scenario.content,
        device=scenario.device,
        sender_node=scenario.sender_node,
        receiver_node=scenario.receiver_node,
        catalog=scenario.catalog,
        placement=scenario.placement,
        context=scenario.context,
    )
    kwargs.update(overrides)
    return fingerprint_request(**kwargs)


def _user(**overrides) -> UserProfile:
    kwargs = dict(
        user_id="u1",
        satisfaction_functions={FRAME_RATE: LinearSatisfaction(0.0, 30.0)},
        combiner=HarmonicCombiner(),
        budget=100.0,
        policies=(AdaptationPolicy(FRAME_RATE, priority=0),),
        display_name="User One",
        max_delay_ms=500.0,
    )
    kwargs.update(overrides)
    return UserProfile(**kwargs)


def _device(**overrides) -> DeviceProfile:
    kwargs = dict(
        device_id="d1",
        decoders=["mpeg1", "mpeg4"],
        max_frame_rate=30.0,
        max_resolution=307200.0,
        cpu_mips=400.0,
        vendor="acme",
    )
    kwargs.update(overrides)
    return DeviceProfile(**kwargs)


# ----------------------------------------------------------------------
# Equal inputs => equal fingerprints
# ----------------------------------------------------------------------


def test_same_scenario_same_fingerprint():
    scenario = generate_scenario(SyntheticConfig(seed=3, n_services=10))
    assert _fingerprint(scenario) == _fingerprint(scenario)
    assert _fingerprint(scenario).digest == _fingerprint(scenario).digest


def test_identically_generated_scenarios_share_digests():
    a = generate_scenario(SyntheticConfig(seed=5, n_services=10))
    b = generate_scenario(SyntheticConfig(seed=5, n_services=10))
    # The stamp counters match too: both worlds were built the same way.
    assert _fingerprint(a) == _fingerprint(b)


def test_equal_profiles_are_equal_and_hash_alike():
    assert _user() == _user()
    assert hash(_user()) == hash(_user())
    assert _device() == _device()
    assert hash(_device()) == hash(_device())
    context = ContextProfile(location="office", activity="meeting")
    assert context == ContextProfile(location="office", activity="meeting")
    assert hash(context) == hash(ContextProfile(location="office", activity="meeting"))


def test_fingerprint_usable_as_dict_key():
    scenario = generate_scenario(SyntheticConfig(seed=3, n_services=10))
    cache = PlanCache()
    fingerprint = _fingerprint(scenario)
    cache.put(fingerprint, "plan")
    assert cache.get(_fingerprint(scenario)) == "plan"


# ----------------------------------------------------------------------
# Any mutated field => different fingerprint
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "override",
    [
        {"user_id": "u2"},
        {"display_name": "Someone Else"},
        {"budget": 99.0},
        {"max_delay_ms": 400.0},
        {"combiner": MinimumCombiner()},
        {"satisfaction_functions": {FRAME_RATE: LinearSatisfaction(0.0, 25.0)}},
        {"policies": ()},
        {
            "peer_overrides": {
                "bob": {FRAME_RATE: LinearSatisfaction(0.0, 10.0)}
            }
        },
    ],
)
def test_any_mutated_user_field_changes_key(override):
    assert _user().cache_key() != _user(**override).cache_key()
    assert _user() != _user(**override)


@pytest.mark.parametrize(
    "override",
    [
        {"device_id": "d2"},
        {"decoders": ["mpeg1"]},
        {"max_frame_rate": 25.0},
        {"max_resolution": None},
        {"max_color_depth": 8.0},
        {"max_audio_kbps": 64.0},
        {"cpu_mips": 200.0},
        {"memory_mb": 128.0},
        {"vendor": "other"},
        {"model": "x200"},
        {"attributes": {"touch": "yes"}},
    ],
)
def test_any_mutated_device_field_changes_key(override):
    assert _device().cache_key() != _device(**override).cache_key()
    assert _device() != _device(**override)


def test_mutated_request_profiles_change_fingerprint():
    scenario = generate_scenario(SyntheticConfig(seed=3, n_services=10))
    base = _fingerprint(scenario)
    other_device = DeviceProfile(
        device_id=scenario.device.device_id + "-x",
        decoders=scenario.device.decoders,
    )
    assert _fingerprint(scenario, device=other_device) != base
    assert _fingerprint(scenario, peer="bob") != base
    assert _fingerprint(scenario, tie_break=TieBreakPolicy.ASCENDING_ID) != base
    assert _fingerprint(scenario, prune=False) != base
    assert _fingerprint(scenario, record_trace=True) != base
    assert (
        _fingerprint(scenario, context=ContextProfile(location="train")) != base
    )


def test_catalog_mutation_changes_fingerprint():
    scenario = generate_scenario(SyntheticConfig(seed=3, n_services=10))
    base = _fingerprint(scenario)
    service_id = scenario.catalog.ids()[0]
    descriptor = scenario.catalog.get(service_id)
    scenario.catalog.remove(service_id)
    after_remove = _fingerprint(scenario)
    assert after_remove != base
    scenario.catalog.add(descriptor)
    # Same content as the start, but the generation counter moved on.
    assert _fingerprint(scenario) != base
    assert _fingerprint(scenario) != after_remove


def test_topology_mutation_changes_fingerprint():
    scenario = generate_scenario(SyntheticConfig(seed=3, n_services=10))
    base = _fingerprint(scenario)
    scenario.topology.node("late-proxy")
    with_node = _fingerprint(scenario)
    assert with_node != base
    scenario.topology.link(scenario.sender_node, "late-proxy", 1e6)
    assert _fingerprint(scenario) != with_node


def test_placement_mutation_changes_fingerprint():
    scenario = generate_scenario(SyntheticConfig(seed=3, n_services=10))
    base = _fingerprint(scenario)
    service_id = scenario.catalog.ids()[0]
    scenario.placement.place(service_id, scenario.placement.node_of(service_id))
    # Re-placing onto the same node is a no-op in content, but the plan
    # cache must still treat the world as moved.
    assert _fingerprint(scenario) != base


def test_reservation_changes_fingerprint_only_when_ledger_passed():
    from repro.network.reservations import BandwidthLedger

    scenario = generate_scenario(SyntheticConfig(seed=3, n_services=10))
    ledger = BandwidthLedger(scenario.topology)
    base = _fingerprint(scenario, ledger=ledger)
    assert base == _fingerprint(scenario, ledger=ledger)
    link = scenario.topology.links()[0]
    reservation = ledger.reserve([link.a, link.b], 1.0)
    assert _fingerprint(scenario, ledger=ledger) != base
    ledger.release(reservation)
    # Release restores capacity but still bumps the generation: a plan
    # computed before the reservation is never served afterwards.
    assert _fingerprint(scenario, ledger=ledger) != base


# ----------------------------------------------------------------------
# Hashability of the building blocks
# ----------------------------------------------------------------------


def test_formats_variants_descriptors_hash_with_mappings():
    fmt = MediaFormat(
        name="v",
        media_type=MediaType.VIDEO,
        codec="c",
        compression_ratio=10.0,
        attributes={"profile": "main"},
    )
    assert fmt in {fmt}
    variant = ContentVariant(
        format=fmt,
        configuration=Configuration({FRAME_RATE: 30.0}),
        metadata={"lang": "en"},
    )
    assert variant in {variant}
    descriptor = ServiceDescriptor(
        service_id="t1",
        input_formats=("a",),
        output_formats=("b",),
        output_caps={FRAME_RATE: 15.0},
    )
    assert descriptor in {descriptor}
    assert len({descriptor, descriptor}) == 1


def test_profiles_usable_in_sets():
    profiles = {
        _user(),
        _user(),
        _device(),
        _device(),
        ContextProfile(location="office"),
        ContextProfile(location="office"),
    }
    assert len(profiles) == 3
