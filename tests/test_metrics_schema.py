"""One metrics schema across every producer in the repo.

The planner report, the simulator report, the gateway's ``/metrics``
endpoint, and the load generator's report all export through
:func:`repro.runtime.metrics.metrics_document`.  These tests pin the
envelope contract — schema-version field, section name, recursively
sorted keys — so a scraper written against one producer parses them all.
"""

from __future__ import annotations

import json

import pytest

from repro.runtime.metrics import (
    METRICS_SCHEMA_VERSION,
    PlannerReport,
    metrics_document,
    metrics_json,
)
from repro.serve.metrics import GatewayMetrics
from repro.sim import UniformArrivals, SimulationConfig, run_simulation
from repro.workloads.synthetic import SyntheticConfig, generate_scenario


def assert_keys_sorted(value) -> None:
    """Every mapping in the tree must have its keys in sorted order."""
    if isinstance(value, dict):
        assert list(value) == sorted(value)
        for child in value.values():
            assert_keys_sorted(child)
    elif isinstance(value, list):
        for child in value:
            assert_keys_sorted(child)


def assert_envelope(document: dict, section: str) -> None:
    assert document["schema"] == METRICS_SCHEMA_VERSION
    assert document["section"] == section
    assert isinstance(document["metrics"], dict)
    assert_keys_sorted(document["metrics"])
    json.dumps(document)  # must be JSON-serializable as-is


class TestEnvelopeHelper:
    def test_document_shape(self):
        document = metrics_document("demo", {"b": 1, "a": {"z": 1, "y": 2}})
        assert_envelope(document, "demo")
        assert list(document["metrics"]) == ["a", "b"]
        assert list(document["metrics"]["a"]) == ["y", "z"]

    def test_sorts_inside_lists_too(self):
        document = metrics_document("demo", {"rows": [{"b": 1, "a": 2}]})
        assert list(document["metrics"]["rows"][0]) == ["a", "b"]

    def test_json_rendering_round_trips(self):
        text = metrics_json("demo", {"value": 3})
        parsed = json.loads(text)
        assert parsed["schema"] == METRICS_SCHEMA_VERSION
        assert parsed["metrics"]["value"] == 3

    def test_scalars_pass_through_unchanged(self):
        payload = {"f": 1.5, "s": "x", "b": True, "n": None, "t": (1, 2)}
        metrics = metrics_document("demo", payload)["metrics"]
        assert metrics["f"] == 1.5 and metrics["t"] == [1, 2]


class TestPlannerReportEnvelope:
    REPORT = PlannerReport(
        sessions=100, successes=98, cache_hits=80, cache_misses=20,
        invalidations=3, evictions=1, elapsed_s=0.5,
        optimize_calls=400, optimize_memo_hits=300, settle_rounds=900,
    )

    def test_to_dict_is_enveloped(self):
        document = self.REPORT.to_dict()
        assert_envelope(document, "planner")
        metrics = document["metrics"]
        assert metrics["sessions"] == 100
        assert metrics["hit_rate"] == pytest.approx(0.8)
        assert metrics["optimize_memo_hit_rate"] == pytest.approx(0.75)

    def test_to_json_parses_back(self):
        parsed = json.loads(self.REPORT.to_json())
        assert parsed == self.REPORT.to_dict()


class TestSimReportEnvelope:
    @pytest.fixture(scope="class")
    def report(self):
        scenario = generate_scenario(
            SyntheticConfig(seed=5, n_services=12, n_formats=8, n_nodes=8,
                            extra_links=6)
        )
        config = SimulationConfig(
            scenario=scenario, name="schema-test", seed=11, sessions=6,
            arrivals=UniformArrivals(over_s=12.0), session_duration_s=6.0,
            segment_s=2.0,
        )
        return run_simulation(config)

    def test_to_metrics_dict_is_enveloped(self, report):
        document = report.to_metrics_dict()
        assert_envelope(document, "sim")
        metrics = document["metrics"]
        assert metrics["sessions"] == 6
        assert metrics["trace_digest"] == report.trace_digest

    def test_fleet_metrics_match_the_flat_report(self, report):
        fleet = report.fleet_metrics()
        assert report.to_dict()["fleet"] == fleet
        assert report.to_metrics_dict()["metrics"]["admitted"] == (
            fleet["admitted"]
        )

    def test_full_report_carries_schema_version(self, report):
        assert report.to_dict()["schema"] == METRICS_SCHEMA_VERSION


class TestGatewayMetricsEnvelope:
    def test_snapshot_is_enveloped(self):
        metrics = GatewayMetrics()
        metrics.bump("received")
        metrics.bump("planned")
        metrics.latency_ms.observe(3.0)
        document = metrics.snapshot(
            generation=2, uptime_s=1.25, queue_depth=0, inflight=1,
            draining=False, cache={"hits": 1, "misses": 2, "evictions": 0,
                                   "invalidations": 0, "entries": 2},
        )
        assert_envelope(document, "gateway")
        payload = document["metrics"]
        assert payload["counters"]["received"] == 1
        assert payload["cache"]["misses"] == 2
        # Histogram bounds/counts stay parallel arrays despite key sorting.
        latency = payload["latency_ms"]
        assert len(latency["bounds"]) + 1 == len(latency["counts"])
        assert latency["count"] == 1

    def test_every_counter_is_exported(self):
        metrics = GatewayMetrics()
        document = metrics.snapshot(
            generation=1, uptime_s=0.0, queue_depth=0, inflight=0,
            draining=False,
        )
        counters = document["metrics"]["counters"]
        assert set(counters) == set(GatewayMetrics.COUNTERS)
        assert all(value == 0 for value in counters.values())

    def test_unknown_counter_is_a_hard_error(self):
        with pytest.raises(KeyError):
            GatewayMetrics().bump("made_up")
