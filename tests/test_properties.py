"""Property-based tests (hypothesis) on the core invariants.

DESIGN.md's invariant list, checked on generated inputs:

- satisfaction functions are monotone with range in [0, 1];
- combiners stay within [min(s), max(s)] and respect known orderings;
- configurations' bandwidth model is monotone; capping never raises values;
- domains' clamp_down returns the largest feasible value not above the
  request;
- every enumerated path in a generated adaptation graph carries distinct
  formats;
- the greedy selector equals exhaustive search on generated scenarios
  (Figure 5), and pruning never changes the result.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.core.baselines import ExhaustiveSelector
from repro.core.configuration import Configuration
from repro.core.parameters import (
    COLOR_DEPTH,
    FRAME_RATE,
    RESOLUTION,
    ContinuousDomain,
    DiscreteDomain,
)
from repro.core.pruning import GraphPruner
from repro.core.satisfaction import (
    GeometricCombiner,
    HarmonicCombiner,
    LinearSatisfaction,
    LogisticSatisfaction,
    MinimumCombiner,
    PiecewiseLinearSatisfaction,
    WeightedHarmonicCombiner,
)
from repro.core.selection import QoSPathSelector
from repro.formats.format import MediaFormat
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

finite = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)

satisfaction_values = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=6,
)


@st.composite
def linear_functions(draw):
    minimum = draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
    span = draw(st.floats(min_value=0.1, max_value=100.0, allow_nan=False))
    return LinearSatisfaction(minimum, minimum + span)


@st.composite
def piecewise_functions(draw):
    xs = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
            min_size=2,
            max_size=6,
            unique=True,
        )
    )
    xs.sort()
    # Strictly increasing x with minimum gap to avoid degenerate knots.
    if any(b - a < 1e-6 for a, b in zip(xs, xs[1:])):
        xs = [i * 10.0 for i in range(len(xs))]
    ys = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                min_size=len(xs),
                max_size=len(xs),
            )
        )
    )
    ys[0], ys[-1] = 0.0, 1.0
    return PiecewiseLinearSatisfaction(list(zip(xs, ys)))


any_function = st.one_of(
    linear_functions(),
    piecewise_functions(),
    st.builds(
        LogisticSatisfaction,
        st.just(0.0),
        st.floats(min_value=1.0, max_value=100.0, allow_nan=False),
        st.floats(min_value=0.5, max_value=20.0, allow_nan=False),
    ),
)


# ----------------------------------------------------------------------
# Satisfaction functions
# ----------------------------------------------------------------------


@given(fn=any_function, value=st.floats(min_value=-1e3, max_value=1e6, allow_nan=False))
def test_satisfaction_range_is_unit_interval(fn, value):
    assert 0.0 <= fn(value) <= 1.0


@given(fn=any_function, data=st.data())
def test_satisfaction_is_monotone(fn, data):
    lo = data.draw(st.floats(min_value=-10.0, max_value=1100.0, allow_nan=False))
    hi = data.draw(st.floats(min_value=-10.0, max_value=1100.0, allow_nan=False))
    if lo > hi:
        lo, hi = hi, lo
    assert fn(lo) <= fn(hi) + 1e-12


@given(fn=any_function)
def test_satisfaction_endpoints(fn):
    assert fn(fn.minimum - 1.0) == 0.0
    assert fn(fn.ideal + 1.0) == 1.0


# ----------------------------------------------------------------------
# Combiners
# ----------------------------------------------------------------------


@given(values=satisfaction_values)
def test_harmonic_combiner_bounded_by_inputs(values):
    total = HarmonicCombiner()(values)
    assert 0.0 <= total <= max(values) + 1e-12
    if all(v > 1e-9 for v in values):
        assert total >= min(values) - 1e-12


@given(values=satisfaction_values)
def test_combiner_ordering_min_harmonic_geometric(values):
    low = MinimumCombiner()(values)
    mid = HarmonicCombiner()(values)
    high = GeometricCombiner()(values)
    assert low <= mid + 1e-12
    assert mid <= high + 1e-12


@given(values=satisfaction_values)
def test_equal_inputs_are_fixed_points(values):
    value = values[0]
    uniform = [value] * len(values)
    for combiner in (HarmonicCombiner(), MinimumCombiner(), GeometricCombiner()):
        assert combiner(uniform) == (
            0.0 if value <= 1e-12 and combiner.name != "minimum" else value
        ) or math.isclose(combiner(uniform), value, abs_tol=1e-9)


@given(
    values=satisfaction_values,
    weights=st.lists(
        st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=6,
    ),
)
def test_weighted_harmonic_bounded(values, weights):
    n = min(len(values), len(weights))
    combiner = WeightedHarmonicCombiner(weights[:n])
    total = combiner(values[:n])
    assert 0.0 <= total <= max(values[:n]) + 1e-12


# ----------------------------------------------------------------------
# Domains and configurations
# ----------------------------------------------------------------------


@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        min_size=1,
        max_size=8,
        unique=True,
    ),
    probe=st.floats(min_value=-10.0, max_value=2e4, allow_nan=False),
)
def test_discrete_clamp_down_is_largest_feasible(values, probe):
    domain = DiscreteDomain(values)
    clamped = domain.clamp_down(probe)
    if clamped is None:
        assert all(v > probe for v in domain.values)
    else:
        assert clamped <= probe
        assert clamped in domain.values
        assert all(v > probe for v in domain.values if v > clamped)


@given(
    low=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    span=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    probe=st.floats(min_value=-50.0, max_value=300.0, allow_nan=False),
)
def test_continuous_clamp_down_properties(low, span, probe):
    domain = ContinuousDomain(low, low + span)
    clamped = domain.clamp_down(probe)
    if probe < low:
        assert clamped is None
    else:
        assert clamped == min(probe, domain.maximum)


config_values = st.fixed_dictionaries(
    {
        FRAME_RATE: st.floats(min_value=0.0, max_value=120.0, allow_nan=False),
        RESOLUTION: st.floats(min_value=0.0, max_value=2e6, allow_nan=False),
        COLOR_DEPTH: st.floats(min_value=0.0, max_value=48.0, allow_nan=False),
    }
)


@given(values=config_values, ratio=st.floats(min_value=1.0, max_value=100.0))
def test_bandwidth_monotone_under_capping(values, ratio):
    fmt = MediaFormat(name="prop", compression_ratio=ratio)
    config = Configuration(values)
    capped = config.capped_by({FRAME_RATE: values[FRAME_RATE] / 2.0})
    assert capped.required_bandwidth(fmt) <= config.required_bandwidth(fmt) + 1e-9
    assert config.dominates(capped)


@given(values=config_values, caps=config_values)
def test_capping_is_idempotent_and_bounded(values, caps):
    config = Configuration(values)
    once = config.capped_by(caps)
    twice = once.capped_by(caps)
    assert once == twice
    for name in once:
        assert once[name] <= values[name]
        assert once[name] <= caps[name]


# ----------------------------------------------------------------------
# Graphs and selection on generated scenarios
# ----------------------------------------------------------------------

scenario_configs = st.builds(
    SyntheticConfig,
    seed=st.integers(min_value=0, max_value=10_000),
    n_services=st.integers(min_value=4, max_value=14),
    n_formats=st.integers(min_value=5, max_value=10),
    n_nodes=st.integers(min_value=3, max_value=8),
    backbone_hops=st.integers(min_value=1, max_value=3),
    preference_mode=st.sampled_from(["single", "rich"]),
)


@settings(max_examples=25, deadline=None)
@given(config=scenario_configs)
def test_enumerated_paths_have_distinct_formats_and_services(config):
    graph = generate_scenario(config).build_graph()
    for path in graph.enumerate_paths(max_paths=200):
        formats = [e.format_name for e in path]
        services = [e.target for e in path]
        assert len(formats) == len(set(formats))
        assert len(services) == len(set(services))


@settings(max_examples=20, deadline=None)
@given(config=scenario_configs)
def test_greedy_matches_exhaustive(config):
    """Figure 5's optimality claim on random scenarios."""
    scenario = generate_scenario(config)
    graph = scenario.build_graph()
    greedy = QoSPathSelector.for_user(
        graph, scenario.registry, scenario.parameters, scenario.user
    ).run()
    exhaustive = ExhaustiveSelector(
        graph,
        scenario.registry,
        scenario.parameters,
        scenario.user.satisfaction(),
        scenario.user.budget,
        max_paths=20_000,
    ).run()
    assert greedy.success == exhaustive.success
    if greedy.success:
        assert math.isclose(
            greedy.satisfaction, exhaustive.satisfaction, abs_tol=1e-9
        )


@settings(max_examples=20, deadline=None)
@given(config=scenario_configs)
def test_pruning_preserves_selection(config):
    scenario = generate_scenario(config)
    graph = scenario.build_graph()
    pruned, _ = GraphPruner().prune(graph)
    before = scenario.selector(graph=graph).run()
    after = scenario.selector(graph=pruned).run()
    assert before.success == after.success
    if before.success:
        assert math.isclose(before.satisfaction, after.satisfaction, abs_tol=1e-9)
        assert before.path == after.path


@settings(max_examples=20, deadline=None)
@given(config=scenario_configs)
def test_settled_satisfaction_non_increasing(config):
    scenario = generate_scenario(config)
    result = scenario.select()
    if result.trace is None or not result.trace.rounds:
        return
    values = [r.satisfaction for r in result.trace.rounds]
    assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))


@settings(max_examples=15, deadline=None)
@given(
    config=scenario_configs,
    budget=st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
)
def test_budget_is_always_respected(config, budget):
    scenario = generate_scenario(config)
    graph = scenario.build_graph()
    result = QoSPathSelector(
        graph,
        scenario.registry,
        scenario.parameters,
        scenario.user.satisfaction(),
        budget=budget,
    ).run()
    if result.success:
        assert result.accumulated_cost <= budget + 1e-9
