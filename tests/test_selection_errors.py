"""Error paths of graph construction and path selection.

The failure modes the happy-path tests never visit: infeasible budgets,
delay bounds nothing can meet, receivers no service chain can reach,
malformed graphs, and lookups of unknown vertices.  Each asserts the
*specific* exception type from :mod:`repro.errors`.
"""

from __future__ import annotations

import pytest

from repro.core.graph import AdaptationGraph, AdaptationGraphBuilder, Vertex
from repro.core.pruning import GraphPruner
from repro.core.selection import QoSPathSelector, build_chain
from repro.errors import (
    GraphConstructionError,
    NoPathError,
    UnknownServiceError,
)
from repro.profiles.device import DeviceProfile
from repro.profiles.user import UserProfile
from repro.core.satisfaction import LinearSatisfaction
from repro.core.parameters import FRAME_RATE
from repro.services.descriptor import ServiceDescriptor, ServiceKind


def _user(**overrides) -> UserProfile:
    kwargs = dict(
        user_id="edge-case-user",
        satisfaction_functions={FRAME_RATE: LinearSatisfaction(0.0, 30.0)},
    )
    kwargs.update(overrides)
    return UserProfile(**kwargs)


def _select(scenario, graph, user):
    return QoSPathSelector.for_user(
        graph, scenario.registry, scenario.parameters, user
    )


# ----------------------------------------------------------------------
# Selection failures (Figure 4's Step 3 exit)
# ----------------------------------------------------------------------


def test_zero_budget_fails_selection(fig6):
    # Every chain in Figure 6 costs money, so budget 0 starves the
    # candidate set before the receiver settles.
    graph = fig6.build_graph()
    result = _select(fig6, graph, _user(budget=0.0)).run()
    assert not result.success
    assert result.configuration is None
    assert "candidate set exhausted" in result.failure_reason


def test_zero_budget_run_or_raise_raises_no_path(fig6):
    graph = fig6.build_graph()
    selector = _select(fig6, graph, _user(budget=0.0))
    with pytest.raises(NoPathError):
        selector.run_or_raise()


def test_unmeetable_delay_bound_fails_selection(fig6):
    graph = fig6.build_graph()
    result = _select(fig6, graph, _user(max_delay_ms=1e-6)).run()
    assert not result.success
    with pytest.raises(NoPathError):
        _select(fig6, graph, _user(max_delay_ms=1e-6)).run_or_raise()


def test_undecodable_receiver_is_unreachable(fig6):
    # A device that only decodes a format no catalog service produces.
    device = DeviceProfile(device_id="alien", decoders=["no-such-format"])
    graph = AdaptationGraphBuilder(fig6.catalog, fig6.placement).build(
        content=fig6.content,
        device=device,
        sender_node=fig6.sender_node,
        receiver_node=fig6.receiver_node,
    )
    result = _select(fig6, graph, _user()).run()
    assert not result.success
    with pytest.raises(NoPathError):
        _select(fig6, graph, _user()).run_or_raise()


def test_pruning_an_unreachable_graph_keeps_only_endpoints(fig6):
    device = DeviceProfile(device_id="alien", decoders=["no-such-format"])
    graph = AdaptationGraphBuilder(fig6.catalog, fig6.placement).build(
        content=fig6.content,
        device=device,
        sender_node=fig6.sender_node,
        receiver_node=fig6.receiver_node,
    )
    pruned, report = GraphPruner().prune(graph)
    # Endpoints always survive; everything else is dead weight here.
    assert pruned.vertex_ids() == ["sender", "receiver"] or set(
        pruned.vertex_ids()
    ) == {"sender", "receiver"}
    assert pruned.edge_count() == 0
    assert report.vertices_after == 2
    result = _select(fig6, pruned, _user()).run()
    assert not result.success
    assert result.rounds_run == 0


def test_build_chain_on_failure_raises_no_path(fig6):
    graph = fig6.build_graph()
    result = _select(fig6, graph, _user(budget=0.0)).run()
    assert not result.success
    with pytest.raises(NoPathError):
        build_chain(graph, result)


# ----------------------------------------------------------------------
# Graph construction errors
# ----------------------------------------------------------------------


def test_unknown_sender_node_raises(fig6):
    builder = AdaptationGraphBuilder(fig6.catalog, fig6.placement)
    with pytest.raises(GraphConstructionError):
        builder.build(
            content=fig6.content,
            device=fig6.device,
            sender_node="no-such-node",
            receiver_node=fig6.receiver_node,
        )


def test_unknown_receiver_node_raises(fig6):
    builder = AdaptationGraphBuilder(fig6.catalog, fig6.placement)
    with pytest.raises(GraphConstructionError):
        builder.build(
            content=fig6.content,
            device=fig6.device,
            sender_node=fig6.sender_node,
            receiver_node="no-such-node",
        )


def test_endpoint_id_colliding_with_catalog_service_raises(fig6):
    builder = AdaptationGraphBuilder(fig6.catalog, fig6.placement)
    colliding_id = fig6.catalog.ids()[0]
    with pytest.raises(GraphConstructionError):
        builder.build(
            content=fig6.content,
            device=fig6.device,
            sender_node=fig6.sender_node,
            receiver_node=fig6.receiver_node,
            sender_id=colliding_id,
        )


def _pseudo_vertex(service_id: str, kind: ServiceKind) -> Vertex:
    return Vertex(
        service=ServiceDescriptor(
            service_id=service_id,
            input_formats=("f",) if kind is not ServiceKind.SENDER else (),
            output_formats=("f",) if kind is not ServiceKind.RECEIVER else (),
            kind=kind,
        ),
        node_id="n",
    )


def test_duplicate_vertex_raises():
    sender = _pseudo_vertex("sender", ServiceKind.SENDER)
    receiver = _pseudo_vertex("receiver", ServiceKind.RECEIVER)
    with pytest.raises(GraphConstructionError):
        AdaptationGraph([sender, sender, receiver], [], "sender", "receiver")


def test_missing_endpoint_vertex_raises():
    sender = _pseudo_vertex("sender", ServiceKind.SENDER)
    with pytest.raises(GraphConstructionError):
        AdaptationGraph([sender], [], "sender", "receiver")


# ----------------------------------------------------------------------
# Unknown-vertex lookups
# ----------------------------------------------------------------------


def test_unknown_vertex_lookups_raise(fig6):
    graph = fig6.build_graph()
    with pytest.raises(UnknownServiceError):
        graph.vertex("no-such-service")
    with pytest.raises(UnknownServiceError):
        graph.out_edges("no-such-service")
    with pytest.raises(UnknownServiceError):
        graph.in_edges("no-such-service")


def test_unknown_catalog_lookups_raise(fig6):
    with pytest.raises(UnknownServiceError):
        fig6.catalog.get("no-such-service")
