"""Tests for the network monitor (measurement -> network profile)."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.network.bandwidth import (
    BandwidthEstimator,
    ConstantBandwidth,
    SinusoidalBandwidth,
)
from repro.network.generators import star_topology
from repro.runtime.monitor import NetworkMonitor
from repro.workloads.paper import figure6_scenario


def make_monitor(model=None, smoothing=0.3, leaves=3):
    topology = star_topology(leaves, bandwidth_bps=10e6)
    estimator = BandwidthEstimator(topology, model)
    return NetworkMonitor(estimator, smoothing=smoothing), topology


class TestSampling:
    def test_constant_network_measures_nominal(self):
        monitor, topology = make_monitor(ConstantBandwidth())
        monitor.sample(0.0)
        for link in topology.links():
            estimate = monitor.estimate_for(link.a, link.b)
            assert estimate is not None
            assert estimate.smoothed_bps == pytest.approx(link.bandwidth_bps)
            assert estimate.samples == 1

    def test_time_must_advance(self):
        monitor, _ = make_monitor()
        monitor.sample(5.0)
        with pytest.raises(ValidationError):
            monitor.sample(4.0)
        monitor.sample(5.0)  # equal time is fine (re-measure)

    def test_smoothing_dampens_dips(self):
        model = SinusoidalBandwidth(amplitude=0.6, period_s=10.0)
        smooth_monitor, topology = make_monitor(model, smoothing=0.1)
        sharp_monitor, _ = make_monitor(model, smoothing=1.0)
        link = topology.links()[0]
        smooth_monitor.sample_window(0.0, 20.0, 0.5)
        sharp_monitor.sample_window(0.0, 20.0, 0.5)
        smooth = smooth_monitor.estimate_for(link.a, link.b)
        sharp = sharp_monitor.estimate_for(link.a, link.b)
        # The sharp monitor equals the last instantaneous sample...
        assert sharp.smoothed_bps == pytest.approx(sharp.last_sample_bps)
        # ...the smooth one has inertia (differs from the last sample
        # whenever the wave is moving).
        assert smooth.samples == sharp.samples
        assert smooth.smoothed_bps != pytest.approx(sharp.smoothed_bps)

    def test_sample_window_counts(self):
        monitor, _ = make_monitor()
        assert monitor.sample_window(0.0, 5.0, 1.0) == 6

    def test_invalid_arguments(self):
        estimator = BandwidthEstimator(star_topology(2))
        with pytest.raises(ValidationError):
            NetworkMonitor(estimator, smoothing=0.0)
        monitor, _ = make_monitor()
        with pytest.raises(ValidationError):
            monitor.sample_window(0.0, 1.0, 0.0)


class TestProfileSnapshot:
    def test_unsampled_links_report_nominal(self):
        monitor, topology = make_monitor()
        profile = monitor.network_profile()
        for link in topology.links():
            assert profile.throughput(link.a, link.b) == link.bandwidth_bps

    def test_profile_reflects_fluctuation(self):
        model = SinusoidalBandwidth(amplitude=0.5, period_s=7.0)
        monitor, topology = make_monitor(model, smoothing=1.0)
        monitor.sample_window(0.0, 14.0, 0.5)
        profile = monitor.network_profile()
        nominal = topology.links()[0].bandwidth_bps
        measured = [profile.throughput(l.a, l.b) for l in topology.links()]
        assert all(m <= nominal for m in measured)

    def test_measured_topology_is_plannable(self):
        """The monitored profile feeds straight back into selection."""
        from repro.core.graph import AdaptationGraphBuilder
        from repro.core.selection import QoSPathSelector
        from repro.network.placement import ServicePlacement

        scenario = figure6_scenario()
        estimator = BandwidthEstimator(scenario.topology, ConstantBandwidth())
        monitor = NetworkMonitor(estimator, smoothing=1.0)
        monitor.sample(0.0)
        measured = monitor.measured_topology()
        placement = ServicePlacement(measured, scenario.placement.as_dict())
        graph = AdaptationGraphBuilder(scenario.catalog, placement).build(
            scenario.content,
            scenario.device,
            scenario.sender_node,
            scenario.receiver_node,
        )
        result = QoSPathSelector.for_user(
            graph, scenario.registry, scenario.parameters, scenario.user
        ).run()
        # A constant network measured perfectly reproduces the paper plan.
        assert result.path == ("sender", "T7", "receiver")
        assert result.satisfaction == pytest.approx(19.75 / 30.0, abs=1e-6)

    def test_degraded_measurement_changes_the_plan(self):
        """Sampling during a collapse steers the plan away from the
        degraded chain — the monitoring/replanning loop end to end."""
        from repro.core.graph import AdaptationGraphBuilder
        from repro.core.selection import QoSPathSelector
        from repro.network.bandwidth import FluctuationModel
        from repro.network.placement import ServicePlacement
        from repro.network.topology import Link

        class N7Collapse(FluctuationModel):
            def factor(self, link: Link, time_s: float) -> float:
                return 0.05 if "n7" in link.endpoints() else 1.0

        scenario = figure6_scenario()
        estimator = BandwidthEstimator(scenario.topology, N7Collapse())
        monitor = NetworkMonitor(estimator, smoothing=1.0)
        monitor.sample(0.0)
        measured = monitor.measured_topology()
        placement = ServicePlacement(measured, scenario.placement.as_dict())
        graph = AdaptationGraphBuilder(scenario.catalog, placement).build(
            scenario.content,
            scenario.device,
            scenario.sender_node,
            scenario.receiver_node,
        )
        result = QoSPathSelector.for_user(
            graph, scenario.registry, scenario.parameters, scenario.user
        ).run()
        assert result.path == ("sender", "T8", "receiver")
