"""Unit tests for satisfaction functions and combiners (Section 4.1)."""

from __future__ import annotations

import math

import pytest

from repro.core.satisfaction import (
    CombinedSatisfaction,
    GeometricCombiner,
    HarmonicCombiner,
    LinearSatisfaction,
    LogisticSatisfaction,
    MinimumCombiner,
    PiecewiseLinearSatisfaction,
    StepSatisfaction,
    TableSatisfaction,
    WeightedHarmonicCombiner,
)
from repro.errors import (
    MonotonicityError,
    SatisfactionDomainError,
    UnknownParameterError,
    ValidationError,
)


class TestLinearSatisfaction:
    def test_endpoints(self):
        fn = LinearSatisfaction(0.0, 30.0)
        assert fn(0.0) == 0.0
        assert fn(30.0) == 1.0

    def test_paper_values(self):
        """The Table 1 relationship: S(fps) = fps / 30."""
        fn = LinearSatisfaction(0.0, 30.0)
        assert fn(27.0) == pytest.approx(0.90)
        assert fn(22.8) == pytest.approx(0.76)
        assert fn(19.8) == pytest.approx(0.66)

    def test_clips_outside_domain(self):
        fn = LinearSatisfaction(5.0, 20.0)
        assert fn(0.0) == 0.0
        assert fn(100.0) == 1.0

    def test_degenerate_interval_rejected(self):
        with pytest.raises(SatisfactionDomainError):
            LinearSatisfaction(5.0, 5.0)

    def test_inverted_interval_rejected(self):
        with pytest.raises(SatisfactionDomainError):
            LinearSatisfaction(20.0, 5.0)

    def test_monotone_validation_passes(self):
        LinearSatisfaction(0.0, 10.0).validate_monotone()


class TestPiecewiseLinearSatisfaction:
    def test_interpolates_between_knots(self):
        fn = PiecewiseLinearSatisfaction([(0, 0), (10, 0.5), (20, 1.0)])
        assert fn(5.0) == pytest.approx(0.25)
        assert fn(15.0) == pytest.approx(0.75)

    def test_knots_must_increase_in_x(self):
        with pytest.raises(ValidationError):
            PiecewiseLinearSatisfaction([(0, 0), (0, 1)])

    def test_knots_must_not_decrease_in_y(self):
        with pytest.raises(MonotonicityError):
            PiecewiseLinearSatisfaction([(0, 0), (5, 0.8), (10, 0.5), (20, 1.0)])

    def test_first_knot_must_be_zero(self):
        with pytest.raises(ValidationError):
            PiecewiseLinearSatisfaction([(0, 0.1), (10, 1.0)])

    def test_last_knot_must_be_one(self):
        with pytest.raises(ValidationError):
            PiecewiseLinearSatisfaction([(0, 0.0), (10, 0.9)])

    def test_needs_two_knots(self):
        with pytest.raises(ValidationError):
            PiecewiseLinearSatisfaction([(0, 0)])

    def test_series_covers_range(self):
        fn = PiecewiseLinearSatisfaction([(5, 0), (20, 1.0)])
        series = fn.series(0.0, 20.0, 21)
        assert len(series) == 21
        assert series[0] == (0.0, 0.0)
        assert series[-1][1] == 1.0

    def test_monotone_validation_passes(self):
        PiecewiseLinearSatisfaction([(0, 0), (3, 0.9), (10, 1.0)]).validate_monotone()


class TestStepSatisfaction:
    def test_staircase_values(self):
        fn = StepSatisfaction([(8, 0.3), (16, 0.7), (24, 1.0)])
        assert fn(7.9) == 0.0
        assert fn(8.0) == pytest.approx(0.3)
        assert fn(16.0) == pytest.approx(0.7)
        assert fn(23.9) == pytest.approx(0.7)
        assert fn(24.0) == 1.0

    def test_decreasing_steps_rejected(self):
        with pytest.raises(MonotonicityError):
            StepSatisfaction([(8, 0.9), (16, 0.5), (24, 1.0)])

    def test_final_step_must_reach_one(self):
        with pytest.raises(ValidationError):
            StepSatisfaction([(8, 0.3), (16, 0.7)])

    def test_needs_a_step(self):
        with pytest.raises(ValidationError):
            StepSatisfaction([])


class TestLogisticSatisfaction:
    def test_endpoints_exact(self):
        fn = LogisticSatisfaction(5.0, 20.0)
        assert fn(5.0) == 0.0
        assert fn(20.0) == 1.0

    def test_midpoint_is_half(self):
        fn = LogisticSatisfaction(0.0, 10.0)
        assert fn(5.0) == pytest.approx(0.5)

    def test_is_monotone(self):
        LogisticSatisfaction(0.0, 10.0, steepness=12.0).validate_monotone()

    def test_steepness_must_be_positive(self):
        with pytest.raises(ValidationError):
            LogisticSatisfaction(0.0, 10.0, steepness=0.0)

    def test_steeper_is_sharper(self):
        gentle = LogisticSatisfaction(0.0, 10.0, steepness=2.0)
        sharp = LogisticSatisfaction(0.0, 10.0, steepness=20.0)
        # Near the low end the sharp curve stays lower.
        assert sharp(2.0) < gentle(2.0)


class TestTableSatisfaction:
    def test_wraps_piecewise(self):
        fn = TableSatisfaction({0.0: 0.0, 10.0: 0.4, 20.0: 1.0})
        assert fn(10.0) == pytest.approx(0.4)
        assert fn(15.0) == pytest.approx(0.7)

    def test_validates_like_piecewise(self):
        with pytest.raises(ValidationError):
            TableSatisfaction({0.0: 0.5, 10.0: 1.0})


class TestHarmonicCombiner:
    def test_equation_1(self):
        """S_tot = n / sum(1/s_i)."""
        combiner = HarmonicCombiner()
        assert combiner([0.5, 0.5]) == pytest.approx(0.5)
        assert combiner([1.0, 0.5]) == pytest.approx(2 / 3)
        assert combiner([0.9, 0.6, 0.3]) == pytest.approx(3 / (1 / 0.9 + 1 / 0.6 + 1 / 0.3))

    def test_single_parameter_passthrough(self):
        assert HarmonicCombiner()([0.76]) == pytest.approx(0.76)

    def test_zero_forces_total_to_zero(self):
        assert HarmonicCombiner()([1.0, 1.0, 0.0]) == 0.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            HarmonicCombiner()([1.2])
        with pytest.raises(ValidationError):
            HarmonicCombiner()([-0.1])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            HarmonicCombiner()([])

    def test_never_exceeds_minimum_of_inputs_times_n(self):
        combiner = HarmonicCombiner()
        values = [0.9, 0.2, 0.8]
        assert combiner(values) <= max(values)
        assert combiner(values) >= min(values)


class TestWeightedHarmonicCombiner:
    def test_equal_weights_reduce_to_harmonic(self):
        weighted = WeightedHarmonicCombiner([1.0, 1.0, 1.0])
        plain = HarmonicCombiner()
        values = [0.9, 0.5, 0.7]
        assert weighted(values) == pytest.approx(plain(values))

    def test_heavier_weight_pulls_total(self):
        favor_first = WeightedHarmonicCombiner([10.0, 1.0])
        favor_second = WeightedHarmonicCombiner([1.0, 10.0])
        values = [0.9, 0.3]
        assert favor_first(values) > favor_second(values)

    def test_zero_weight_ignores_parameter(self):
        combiner = WeightedHarmonicCombiner([1.0, 0.0])
        assert combiner([0.8, 0.0]) == pytest.approx(0.8)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            WeightedHarmonicCombiner([1.0, 1.0])([0.5])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValidationError):
            WeightedHarmonicCombiner([1.0, -1.0])

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValidationError):
            WeightedHarmonicCombiner([0.0, 0.0])


class TestOtherCombiners:
    def test_minimum(self):
        assert MinimumCombiner()([0.9, 0.4, 0.6]) == pytest.approx(0.4)

    def test_geometric(self):
        assert GeometricCombiner()([0.25, 1.0]) == pytest.approx(0.5)

    def test_geometric_zero(self):
        assert GeometricCombiner()([0.5, 0.0]) == 0.0

    def test_combiner_ordering(self):
        """min <= harmonic <= geometric on mixed vectors."""
        values = [0.9, 0.4, 0.7]
        low = MinimumCombiner()(values)
        mid = HarmonicCombiner()(values)
        high = GeometricCombiner()(values)
        assert low <= mid <= high


class TestCombinedSatisfaction:
    def _model(self):
        return CombinedSatisfaction(
            functions={
                "frame_rate": LinearSatisfaction(0.0, 30.0),
                "resolution": LinearSatisfaction(0.0, 100.0),
            },
            combiner=HarmonicCombiner(),
        )

    def test_evaluate_combines(self):
        model = self._model()
        total = model.evaluate({"frame_rate": 15.0, "resolution": 50.0})
        assert total == pytest.approx(0.5)

    def test_extra_values_ignored(self):
        model = self._model()
        total = model.evaluate(
            {"frame_rate": 30.0, "resolution": 100.0, "color_depth": 1.0}
        )
        assert total == pytest.approx(1.0)

    def test_missing_value_raises(self):
        with pytest.raises(UnknownParameterError):
            self._model().evaluate({"frame_rate": 15.0})

    def test_individual(self):
        assert self._model().individual("frame_rate", 15.0) == pytest.approx(0.5)

    def test_individual_unknown_raises(self):
        with pytest.raises(UnknownParameterError):
            self._model().individual("nope", 1.0)

    def test_needs_functions(self):
        with pytest.raises(ValidationError):
            CombinedSatisfaction(functions={}, combiner=HarmonicCombiner())

    def test_parameter_names_order(self):
        assert self._model().parameter_names() == ["frame_rate", "resolution"]
