"""Unit tests for the QoS path-selection algorithm (Figure 4)."""

from __future__ import annotations

import math

import pytest

from repro.core.configuration import Configuration
from repro.core.graph import AdaptationGraphBuilder
from repro.core.parameters import (
    COLOR_DEPTH,
    FRAME_RATE,
    RESOLUTION,
    ContinuousDomain,
    DiscreteDomain,
    Parameter,
    ParameterSet,
)
from repro.core.satisfaction import (
    CombinedSatisfaction,
    HarmonicCombiner,
    LinearSatisfaction,
)
from repro.core.selection import QoSPathSelector, TieBreakPolicy, build_chain
from repro.errors import NoPathError
from repro.formats.format import MediaFormat
from repro.formats.registry import FormatRegistry
from repro.formats.variants import ContentVariant
from repro.network.placement import ServicePlacement
from repro.network.topology import NetworkTopology
from repro.profiles.content import ContentProfile
from repro.profiles.device import DeviceProfile
from repro.profiles.user import UserProfile
from repro.services.catalog import ServiceCatalog
from repro.services.descriptor import ServiceDescriptor


def pinned_parameters():
    return ParameterSet(
        [
            Parameter(FRAME_RATE, "fps", ContinuousDomain(0.0, 60.0)),
            Parameter(RESOLUTION, "pixels", DiscreteDomain([1000.0])),
            Parameter(COLOR_DEPTH, "bits", DiscreteDomain([24.0])),
        ]
    )


def fps_satisfaction():
    return CombinedSatisfaction(
        functions={FRAME_RATE: LinearSatisfaction(0.0, 30.0)},
        combiner=HarmonicCombiner(),
    )


def tiny_world(
    t1_cost: float = 1.0,
    t2_cost: float = 1.0,
    t1_bw_fps: float = 25.0,
    t2_bw_fps: float = 15.0,
    decoders=("F1", "F2"),
):
    """Two parallel one-hop routes: T1 (good) and T2 (worse).

    The routes are differentiated by *format frame size* (as in the
    Figure 6 scenario), not by link bandwidth — in a connected topology the
    widest-path routing would otherwise detour around a narrow direct link.
    All links share one bandwidth; T1's output format F1 fits
    ``t1_bw_fps`` frames per second through it, T2's F2 only ``t2_bw_fps``.
    """
    raw_bits = 1000.0 * 24.0
    wide = 100.0 * raw_bits / 10.0  # carries 100 fps of the source format
    registry = FormatRegistry()
    registry.define("F0", compression_ratio=10.0)
    registry.define("F1", compression_ratio=raw_bits / (wide / t1_bw_fps))
    registry.define("F2", compression_ratio=raw_bits / (wide / t2_bw_fps))
    topology = NetworkTopology()
    for node in ("ns", "n1", "n2", "nr"):
        topology.node(node)
    topology.link("ns", "n1", wide)
    topology.link("ns", "n2", wide)
    topology.link("n1", "nr", wide)
    topology.link("n2", "nr", wide)
    catalog = ServiceCatalog(
        [
            ServiceDescriptor(
                service_id="T1",
                input_formats=("F0",),
                output_formats=("F1",),
                cost=t1_cost,
            ),
            ServiceDescriptor(
                service_id="T2",
                input_formats=("F0",),
                output_formats=("F2",),
                cost=t2_cost,
            ),
        ]
    )
    placement = ServicePlacement(topology, {"T1": "n1", "T2": "n2"})
    content = ContentProfile(
        content_id="c",
        variants=[
            ContentVariant(
                format=registry.get("F0"),
                configuration=Configuration(
                    {FRAME_RATE: 30.0, RESOLUTION: 1000.0, COLOR_DEPTH: 24.0}
                ),
            )
        ],
    )
    device = DeviceProfile(device_id="d", decoders=list(decoders))
    graph = AdaptationGraphBuilder(catalog, placement).build(
        content, device, "ns", "nr"
    )
    return registry, graph


class TestBasicSelection:
    def test_picks_the_better_route(self):
        registry, graph = tiny_world()
        selector = QoSPathSelector(
            graph, registry, pinned_parameters(), fps_satisfaction()
        )
        result = selector.run()
        assert result.success
        assert result.path == ("sender", "T1", "receiver")
        assert result.satisfaction == pytest.approx(25.0 / 30.0)
        assert result.formats == ("F0", "F1")

    def test_delivered_frame_rate_exposed(self):
        registry, graph = tiny_world()
        result = QoSPathSelector(
            graph, registry, pinned_parameters(), fps_satisfaction()
        ).run()
        assert result.delivered_frame_rate == pytest.approx(25.0)

    def test_trace_records_every_round(self):
        registry, graph = tiny_world()
        result = QoSPathSelector(
            graph, registry, pinned_parameters(), fps_satisfaction()
        ).run()
        assert result.trace is not None
        assert len(result.trace) == result.rounds_run
        assert result.trace.rounds[0].considered_set == ("sender",)
        assert result.trace.rounds[-1].selected == "receiver"

    def test_trace_can_be_disabled(self):
        registry, graph = tiny_world()
        result = QoSPathSelector(
            graph,
            registry,
            pinned_parameters(),
            fps_satisfaction(),
            record_trace=False,
        ).run()
        assert result.trace is None

    def test_settled_satisfactions_non_increasing(self):
        registry, graph = tiny_world()
        result = QoSPathSelector(
            graph, registry, pinned_parameters(), fps_satisfaction()
        ).run()
        values = [r.satisfaction for r in result.trace.rounds]
        assert values == sorted(values, reverse=True)

    def test_accumulated_cost(self):
        registry, graph = tiny_world(t1_cost=2.5)
        result = QoSPathSelector(
            graph, registry, pinned_parameters(), fps_satisfaction()
        ).run()
        assert result.accumulated_cost == pytest.approx(2.5)

    def test_build_chain_from_result(self):
        registry, graph = tiny_world()
        result = QoSPathSelector(
            graph, registry, pinned_parameters(), fps_satisfaction()
        ).run()
        chain = build_chain(graph, result)
        assert chain.service_ids() == ["sender", "T1", "receiver"]
        assert chain.formats() == ["F0", "F1"]


class TestFailure:
    def test_no_decodable_format_terminates_failure(self):
        registry, graph = tiny_world(decoders=("F9",))
        result = QoSPathSelector(
            graph, registry, pinned_parameters(), fps_satisfaction()
        ).run()
        assert not result.success
        assert result.path == ()
        assert "exhausted" in result.failure_reason

    def test_run_or_raise(self):
        registry, graph = tiny_world(decoders=("F9",))
        selector = QoSPathSelector(
            graph, registry, pinned_parameters(), fps_satisfaction()
        )
        with pytest.raises(NoPathError):
            selector.run_or_raise()

    def test_build_chain_rejects_failure(self):
        registry, graph = tiny_world(decoders=("F9",))
        result = QoSPathSelector(
            graph, registry, pinned_parameters(), fps_satisfaction()
        ).run()
        with pytest.raises(NoPathError):
            build_chain(graph, result)

    def test_failure_still_settles_transcoders(self):
        registry, graph = tiny_world(decoders=("F9",))
        result = QoSPathSelector(
            graph, registry, pinned_parameters(), fps_satisfaction()
        ).run()
        assert result.rounds_run == 2  # T1 and T2 settle, then CS empties


class TestBudget:
    def test_generous_budget_ignores_cost(self):
        registry, graph = tiny_world(t1_cost=5.0, t2_cost=1.0)
        result = QoSPathSelector(
            graph, registry, pinned_parameters(), fps_satisfaction(), budget=100.0
        ).run()
        assert "T1" in result.path

    def test_tight_budget_reroutes(self):
        registry, graph = tiny_world(t1_cost=5.0, t2_cost=1.0)
        result = QoSPathSelector(
            graph, registry, pinned_parameters(), fps_satisfaction(), budget=2.0
        ).run()
        assert result.success
        assert "T2" in result.path
        assert result.satisfaction == pytest.approx(15.0 / 30.0)

    def test_impossible_budget_fails(self):
        registry, graph = tiny_world(t1_cost=5.0, t2_cost=5.0)
        result = QoSPathSelector(
            graph, registry, pinned_parameters(), fps_satisfaction(), budget=1.0
        ).run()
        assert not result.success

    def test_accumulated_cost_within_budget(self):
        registry, graph = tiny_world(t1_cost=1.5, t2_cost=1.0)
        budget = 2.0
        result = QoSPathSelector(
            graph, registry, pinned_parameters(), fps_satisfaction(), budget=budget
        ).run()
        assert result.success
        assert result.accumulated_cost <= budget


class TestDistinctFormatRule:
    def test_format_loop_never_selected(self):
        """A back-and-forth converter pair (F0 -> F1 -> F0) offers a path
        that repeats F0; the selector must deliver over the direct edge
        instead and never report a repeated format."""
        frame_bits = 2400.0
        registry = FormatRegistry()
        registry.define("F0", compression_ratio=10.0)
        registry.define("F1", compression_ratio=10.0)
        topology = NetworkTopology()
        for node in ("ns", "n1", "n2", "nr"):
            topology.node(node)
        topology.link("ns", "n1", 30 * frame_bits)
        topology.link("n1", "n2", 30 * frame_bits)
        topology.link("n2", "nr", 30 * frame_bits)
        catalog = ServiceCatalog(
            [
                ServiceDescriptor(
                    service_id="AB", input_formats=("F0",), output_formats=("F1",)
                ),
                ServiceDescriptor(
                    service_id="BA", input_formats=("F1",), output_formats=("F0",)
                ),
            ]
        )
        placement = ServicePlacement(topology, {"AB": "n1", "BA": "n2"})
        content = ContentProfile(
            content_id="c",
            variants=[
                ContentVariant(
                    format=registry.get("F0"),
                    configuration=Configuration(
                        {FRAME_RATE: 30.0, RESOLUTION: 1000.0, COLOR_DEPTH: 24.0}
                    ),
                )
            ],
        )
        device = DeviceProfile(device_id="d", decoders=["F0"])
        graph = AdaptationGraphBuilder(catalog, placement).build(
            content, device, "ns", "nr"
        )
        result = QoSPathSelector(
            graph, registry, pinned_parameters(), fps_satisfaction()
        ).run()
        assert result.success
        assert result.path == ("sender", "receiver")
        assert len(set(result.formats)) == len(result.formats)

    def test_enumeration_never_repeats_formats(self, fig6):
        graph = fig6.build_graph()
        for edges in graph.enumerate_paths():
            formats = [e.format_name for e in edges]
            assert len(formats) == len(set(formats))


class TestTieBreakPolicies:
    def _tied_world(self):
        """T1 and T2 reach identical satisfaction."""
        return tiny_world(t1_bw_fps=20.0, t2_bw_fps=20.0)

    def test_all_policies_agree_on_satisfaction(self):
        registry, graph = self._tied_world()
        results = {}
        for policy in TieBreakPolicy:
            result = QoSPathSelector(
                graph,
                registry,
                pinned_parameters(),
                fps_satisfaction(),
                tie_break=policy,
            ).run()
            results[policy] = result
            assert result.satisfaction == pytest.approx(20.0 / 30.0)

    def test_ascending_and_descending_differ(self):
        registry, graph = self._tied_world()
        ascending = QoSPathSelector(
            graph,
            registry,
            pinned_parameters(),
            fps_satisfaction(),
            tie_break=TieBreakPolicy.ASCENDING_ID,
        ).run()
        descending = QoSPathSelector(
            graph,
            registry,
            pinned_parameters(),
            fps_satisfaction(),
            tie_break=TieBreakPolicy.DESCENDING_ID,
        ).run()
        # The first settled transcoder differs; the receiver's best parent
        # can come from either, but the settle ORDER must differ.
        assert ascending.trace.selected_sequence()[0] == "T1"
        assert descending.trace.selected_sequence()[0] == "T2"

    def test_paper_policy_prefers_transcoder_over_receiver_on_tie(self):
        registry, graph = self._tied_world()
        result = QoSPathSelector(
            graph,
            registry,
            pinned_parameters(),
            fps_satisfaction(),
            tie_break=TieBreakPolicy.PAPER,
        ).run()
        sequence = result.trace.selected_sequence()
        assert sequence[-1] == "receiver"


class TestForUserFactory:
    def test_for_user_wires_budget_and_preferences(self):
        registry, graph = tiny_world(t1_cost=5.0, t2_cost=1.0)
        user = UserProfile(
            user_id="u",
            satisfaction_functions={FRAME_RATE: LinearSatisfaction(0, 30)},
            budget=2.0,
        )
        result = QoSPathSelector.for_user(
            graph, registry, pinned_parameters(), user
        ).run()
        assert "T2" in result.path  # the budget bit

    def test_describe(self):
        registry, graph = tiny_world()
        result = QoSPathSelector(
            graph, registry, pinned_parameters(), fps_satisfaction()
        ).run()
        text = result.describe()
        assert "sender,T1,receiver" in text
        assert "satisfaction" in text
