"""Static audit: no module-level randomness anywhere in the library.

Determinism is a system property — one ``random.random()`` hidden in a
helper silently couples every caller to the global Mersenne state and
breaks the same-seed-same-trace guarantee of :mod:`repro.sim`.  This test
walks every module's AST and rejects calls through the ``random`` module
itself (``random.random()``, ``random.choice(...)``, ...).  Constructing
``random.Random(seed)`` instances is the sanctioned pattern and stays
allowed, as do calls on such instances.
"""

from __future__ import annotations

import ast
import pathlib

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: The only attribute of the ``random`` module code may touch.
_ALLOWED_ATTRS = {"Random"}


def _module_random_calls(tree: ast.AST) -> list:
    """(line, attr) for every call/attribute that goes through the module."""
    offences = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Attribute):
            continue
        if not isinstance(node.value, ast.Name) or node.value.id != "random":
            continue
        if node.attr not in _ALLOWED_ATTRS:
            offences.append((node.lineno, node.attr))
    return offences


def test_sources_exist():
    assert SRC.is_dir()
    assert list(SRC.rglob("*.py"))


def test_no_module_level_random_calls():
    offences = {}
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        found = _module_random_calls(tree)
        if found:
            offences[str(path.relative_to(SRC))] = found
    assert not offences, (
        "module-level random usage breaks seed plumbing; "
        f"inject a random.Random instead: {offences}"
    )


def test_audit_catches_an_offender():
    """The auditor itself must flag the pattern it exists to ban."""
    bad = ast.parse("import random\nx = random.random()\n")
    assert _module_random_calls(bad) == [(2, "random")]
    good = ast.parse("import random\nrng = random.Random(7)\nx = rng.random()\n")
    assert _module_random_calls(good) == []
