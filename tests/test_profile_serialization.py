"""Round-trip tests for profile serialization (the XML stand-in)."""

from __future__ import annotations

import json
import math

import pytest

from repro.core.configuration import Configuration
from repro.core.parameters import AUDIO_QUALITY, FRAME_RATE
from repro.core.satisfaction import (
    GeometricCombiner,
    HarmonicCombiner,
    LinearSatisfaction,
    LogisticSatisfaction,
    MinimumCombiner,
    PiecewiseLinearSatisfaction,
    StepSatisfaction,
    WeightedHarmonicCombiner,
)
from repro.errors import ValidationError
from repro.formats.format import MediaFormat
from repro.formats.registry import FormatRegistry
from repro.formats.variants import ContentVariant
from repro.network.topology import NetworkTopology
from repro.profiles.content import ContentProfile
from repro.profiles.context import ContextProfile
from repro.profiles.device import DeviceProfile
from repro.profiles.intermediary import IntermediaryProfile
from repro.profiles.network import NetworkProfile
from repro.profiles.serialization import (
    combiner_from_dict,
    combiner_to_dict,
    descriptor_from_dict,
    descriptor_to_dict,
    profile_from_dict,
    profile_to_dict,
    satisfaction_from_dict,
    satisfaction_to_dict,
)
from repro.profiles.user import AdaptationPolicy, UserProfile
from repro.services.descriptor import ServiceDescriptor


def roundtrip(profile, registry=None):
    data = profile_to_dict(profile)
    # Everything must survive a JSON round trip (the wire format).
    data = json.loads(json.dumps(data))
    return profile_from_dict(data, registry)


class TestSatisfactionSerialization:
    @pytest.mark.parametrize(
        "fn",
        [
            LinearSatisfaction(0.0, 30.0),
            PiecewiseLinearSatisfaction([(5, 0), (10, 0.5), (20, 1.0)]),
            StepSatisfaction([(8, 0.4), (16, 1.0)]),
            LogisticSatisfaction(0.0, 10.0, steepness=6.0),
        ],
    )
    def test_round_trip_preserves_shape(self, fn):
        rebuilt = satisfaction_from_dict(satisfaction_to_dict(fn))
        for i in range(21):
            x = fn.minimum + i * (fn.ideal - fn.minimum) / 20
            assert rebuilt(x) == pytest.approx(fn(x))

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValidationError):
            satisfaction_from_dict({"shape": "fractal"})


class TestCombinerSerialization:
    @pytest.mark.parametrize(
        "combiner",
        [
            HarmonicCombiner(),
            WeightedHarmonicCombiner([1.0, 2.0]),
            MinimumCombiner(),
            GeometricCombiner(),
        ],
    )
    def test_round_trip(self, combiner):
        rebuilt = combiner_from_dict(combiner_to_dict(combiner))
        assert type(rebuilt) is type(combiner)

    def test_weights_preserved(self):
        rebuilt = combiner_from_dict(
            combiner_to_dict(WeightedHarmonicCombiner([3.0, 1.0]))
        )
        assert rebuilt.weights == (3.0, 1.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            combiner_from_dict({"kind": "quantum"})


class TestDescriptorSerialization:
    def test_round_trip(self):
        descriptor = ServiceDescriptor(
            service_id="T1",
            input_formats=("F1", "F2"),
            output_formats=("F3",),
            output_caps={FRAME_RATE: 15.0},
            cost=2.5,
            cpu_factor=1.5,
            memory_mb=128.0,
            provider="acme",
        )
        rebuilt = descriptor_from_dict(descriptor_to_dict(descriptor))
        assert rebuilt == descriptor


class TestProfileRoundTrips:
    def test_user_profile(self):
        user = UserProfile(
            user_id="alice",
            display_name="Alice",
            budget=42.0,
            satisfaction_functions={
                FRAME_RATE: LinearSatisfaction(0, 30),
                AUDIO_QUALITY: StepSatisfaction([(32, 0.5), (128, 1.0)]),
            },
            combiner=WeightedHarmonicCombiner([2.0, 1.0]),
            policies=[AdaptationPolicy(AUDIO_QUALITY, 0)],
        )
        rebuilt = roundtrip(user)
        assert rebuilt.user_id == "alice"
        assert rebuilt.budget == 42.0
        assert [p.parameter for p in rebuilt.policies] == [AUDIO_QUALITY]
        original_total = user.satisfaction().evaluate(
            {FRAME_RATE: 20.0, AUDIO_QUALITY: 64.0}
        )
        rebuilt_total = rebuilt.satisfaction().evaluate(
            {FRAME_RATE: 20.0, AUDIO_QUALITY: 64.0}
        )
        assert rebuilt_total == pytest.approx(original_total)

    def test_content_profile_needs_registry(self):
        registry = FormatRegistry([MediaFormat(name="F1", compression_ratio=10.0)])
        content = ContentProfile(
            content_id="clip",
            variants=[
                ContentVariant(
                    format=registry.get("F1"),
                    configuration=Configuration({FRAME_RATE: 30.0}),
                    title="main",
                )
            ],
            author="me",
        )
        rebuilt = roundtrip(content, registry)
        assert rebuilt.content_id == "clip"
        assert rebuilt.variant_for("F1").configuration[FRAME_RATE] == 30.0
        with pytest.raises(ValidationError):
            roundtrip(content, None)

    def test_context_profile(self):
        context = ContextProfile(
            location="office",
            activity="meeting",
            noise_level_db=55.0,
            local_time_hour=14,
        )
        rebuilt = roundtrip(context)
        assert rebuilt.activity == "meeting"
        assert rebuilt.local_time_hour == 14
        assert rebuilt.parameter_caps() == context.parameter_caps()

    def test_device_profile(self):
        device = DeviceProfile(
            device_id="phone",
            decoders=["F1", "F2"],
            max_frame_rate=15.0,
            vendor="acme",
        )
        rebuilt = roundtrip(device)
        assert rebuilt.decoders == ["F1", "F2"]
        assert rebuilt.rendering_caps() == device.rendering_caps()

    def test_network_profile(self):
        topology = NetworkTopology()
        topology.node("a")
        topology.node("b")
        topology.link("a", "b", 5e6, delay_ms=2.0)
        profile = NetworkProfile.from_topology(topology)
        rebuilt = roundtrip(profile)
        assert rebuilt.throughput("a", "b") == 5e6

    def test_intermediary_profile(self):
        profile = IntermediaryProfile(
            node_id="proxy1",
            services=[
                ServiceDescriptor(
                    service_id="T1",
                    input_formats=("F1",),
                    output_formats=("F2",),
                )
            ],
            available_cpu_mips=500.0,
        )
        rebuilt = roundtrip(profile)
        assert rebuilt.node_id == "proxy1"
        assert rebuilt.service_ids() == ["T1"]
        assert rebuilt.available_cpu_mips == 500.0

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValidationError):
            profile_from_dict({"profile": "astral"})

    def test_non_profile_object_rejected(self):
        with pytest.raises(ValidationError):
            profile_to_dict(object())


class TestMalformedDocuments:
    """Partial or mistyped wire documents raise the repo's typed errors.

    The serving gateway maps :class:`ValidationError` to a 400; a bare
    ``KeyError`` escaping the decoder would crash a worker instead, so
    these tests pin the error type for every profile tag.
    """

    REGISTRY = FormatRegistry([MediaFormat(name="F1")])

    @pytest.mark.parametrize(
        "document",
        [
            {"profile": "user"},  # missing everything
            {"profile": "user", "user_id": "u"},  # missing combiner
            {
                "profile": "user",
                "user_id": "u",
                "combiner": {"kind": "harmonic"},
            },  # missing preferences
            {
                "profile": "user",
                "user_id": "u",
                "combiner": {"kind": "weighted-harmonic"},  # missing weights
                "preferences": {},
            },
            {
                "profile": "user",
                "user_id": "u",
                "combiner": {"kind": "harmonic"},
                "preferences": {"frame-rate": {"shape": "linear"}},
            },  # satisfaction missing bounds
            {"profile": "content"},
            {"profile": "content", "content_id": "c"},  # missing variants
            {
                "profile": "content",
                "content_id": "c",
                "variants": [{"format": "F1"}],  # missing configuration
            },
            {"profile": "device"},
            {"profile": "device", "device_id": "d"},  # missing decoders
            {"profile": "network"},
            {"profile": "network", "measurements": [{"a": "x", "b": "y"}]},
            {"profile": "intermediary"},
            {"profile": "intermediary", "node_id": "p"},  # missing services
            {
                "profile": "intermediary",
                "node_id": "p",
                "services": [{"cost": 1.0}],  # descriptor missing service_id
            },
        ],
    )
    def test_partial_document_raises_typed_error(self, document):
        with pytest.raises(ValidationError) as excinfo:
            profile_from_dict(document, self.REGISTRY)
        # The typed error must not merely wrap a propagating KeyError.
        assert not isinstance(excinfo.value, KeyError)

    @pytest.mark.parametrize(
        "document",
        [
            {
                "profile": "user",
                "user_id": "u",
                "combiner": "minimum",  # combiner as a bare string
                "preferences": {},
            },
            {
                "profile": "user",
                "user_id": "u",
                "combiner": {"kind": "harmonic"},
                "preferences": [],  # preferences as a list
            },
            {
                "profile": "user",
                "user_id": "u",
                "combiner": {"kind": "harmonic"},
                "preferences": {"frame-rate": "linear"},  # fn as a string
            },
            {
                "profile": "user",
                "user_id": "u",
                "combiner": {"kind": "harmonic"},
                "preferences": {},
                "policies": [{}],  # partial policy entry
            },
            {
                "profile": "user",
                "user_id": "u",
                "combiner": {"kind": "harmonic"},
                "preferences": {},
                "policies": "frame-rate",  # policies as a string
            },
            {"profile": "content", "content_id": "c", "variants": 5},
            {"profile": "device", "device_id": "d", "decoders": 3},
            {"profile": "network", "measurements": 1},
            {
                "profile": "network",
                "measurements": [],
                "node_resources": [["x", 1.0]],  # list, not a mapping
            },
            {"profile": "intermediary", "node_id": "p", "services": 5},
            {
                "profile": "intermediary",
                "node_id": "p",
                "services": [{"service_id": "T1", "input_formats": 2}],
            },
        ],
    )
    def test_mistyped_field_raises_typed_error(self, document):
        """Valid JSON with wrongly-typed nested fields must not escape as
        AttributeError/TypeError — the gateway maps only ValidationError
        to a 400."""
        with pytest.raises(ValidationError):
            profile_from_dict(document, self.REGISTRY)

    def test_context_tolerates_partial_documents(self):
        # Context profiles are all-optional by design.
        rebuilt = profile_from_dict({"profile": "context"})
        assert rebuilt.activity == "idle"

    def test_non_mapping_document_rejected(self):
        with pytest.raises(ValidationError):
            profile_from_dict(["not", "a", "mapping"])

    def test_malformed_satisfaction_and_combiner(self):
        with pytest.raises(ValidationError):
            satisfaction_from_dict({"shape": "piecewise"})
        with pytest.raises(ValidationError):
            combiner_from_dict({"kind": "weighted-harmonic"})

    def test_malformed_descriptor(self):
        with pytest.raises(ValidationError):
            descriptor_from_dict({"provider": "acme"})


class TestGroupReceiverSerialization:
    """Wire decoding of the /plan-group ``receivers`` list."""

    def _device(self, device_id="handset-a"):
        from repro.profiles.serialization import profile_to_dict

        return profile_to_dict(
            DeviceProfile(device_id=device_id, decoders=("fmt",))
        )

    def _decode(self, value):
        from repro.profiles.serialization import group_receivers_from_list

        return group_receivers_from_list(value)

    def test_round_trip(self):
        from repro.profiles.serialization import group_receiver_to_dict

        receivers = self._decode(
            [
                {"class_id": "a", "device": self._device("d-a"), "sessions": 3},
                {"class_id": "b", "device": self._device("d-b")},
            ]
        )
        assert [r.class_id for r in receivers] == ["a", "b"]
        assert receivers[0].sessions == 3
        assert receivers[1].sessions == 1
        rebuilt = self._decode(
            [group_receiver_to_dict(receiver) for receiver in receivers]
        )
        assert rebuilt == receivers

    def test_duplicate_class_id_rejected(self):
        with pytest.raises(ValidationError, match="duplicate receiver class"):
            self._decode(
                [
                    {"class_id": "a", "device": self._device("d-a")},
                    {"class_id": "a", "device": self._device("d-b")},
                ]
            )

    def test_duplicate_device_rejected(self):
        with pytest.raises(ValidationError, match="duplicates the device"):
            self._decode(
                [
                    {"class_id": "a", "device": self._device("d-a")},
                    {"class_id": "b", "device": self._device("d-a")},
                ]
            )

    @pytest.mark.parametrize(
        "value",
        [
            "not-a-list",
            [],
            ["not-a-mapping"],
            [{"device": {"profile": "device"}}],  # class_id missing
            [{"class_id": "", "device": {"profile": "device"}}],
            [{"class_id": "a"}],  # device missing
            [{"class_id": "a", "device": {"profile": "user"}}],
            [{"class_id": "a", "device": "nope"}],
        ],
    )
    def test_malformed_lists_rejected(self, value):
        with pytest.raises(ValidationError):
            self._decode(value)

    @pytest.mark.parametrize("sessions", [0, -1, 1.5, True, "3"])
    def test_bad_session_counts_rejected(self, sessions):
        with pytest.raises(ValidationError):
            self._decode(
                [
                    {
                        "class_id": "a",
                        "device": self._device(),
                        "sessions": sessions,
                    }
                ]
            )
