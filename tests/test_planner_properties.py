"""Property-based tests (hypothesis) on the plan cache.

The cache's contract, checked over generated scenarios and mutations:

- a cache hit returns a plan equal to one computed fresh (same selected
  path, formats, configuration, satisfaction, cost);
- with no intervening mutation, the second call is a hit (same object);
- *any* catalog / topology / placement / ledger mutation between two
  calls changes the fingerprint and forces a recompute.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.network.reservations import BandwidthLedger
from repro.planner import BatchPlanner, PlanCache, PlanRequest
from repro.services.descriptor import ServiceDescriptor
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

MUTATIONS = [
    "none",
    "catalog-add",
    "catalog-remove",
    "topology-node",
    "topology-link",
    "placement",
    "reserve",
]


def _scenario(seed: int):
    return generate_scenario(
        SyntheticConfig(seed=seed, n_services=10, n_formats=6, n_nodes=6)
    )


def _request(scenario) -> PlanRequest:
    return PlanRequest(
        content=scenario.content,
        device=scenario.device,
        user=scenario.user,
        sender_node=scenario.sender_node,
        receiver_node=scenario.receiver_node,
        context=scenario.context,
    )


def _mutate(scenario, ledger: BandwidthLedger, kind: str) -> None:
    if kind == "none":
        return
    if kind == "catalog-add":
        scenario.catalog.add(
            ServiceDescriptor(
                service_id="late-service",
                input_formats=(scenario.registry.names()[0],),
                output_formats=(scenario.registry.names()[-1],),
            )
        )
    elif kind == "catalog-remove":
        scenario.catalog.remove(scenario.catalog.ids()[-1])
    elif kind == "topology-node":
        scenario.topology.node("late-node")
    elif kind == "topology-link":
        scenario.topology.node("late-node")
        scenario.topology.link(scenario.sender_node, "late-node", 1e6)
    elif kind == "placement":
        service_id = scenario.catalog.ids()[0]
        scenario.placement.place(
            service_id, scenario.placement.node_of(service_id)
        )
    elif kind == "reserve":
        link = scenario.topology.links()[0]
        ledger.reserve([link.a, link.b], 1.0)
    else:  # pragma: no cover - guards against typo'd parametrization
        raise AssertionError(kind)


def _plan_fields(plan):
    result = plan.result
    return (
        result.success,
        result.path,
        result.formats,
        result.configuration,
        result.satisfaction,
        result.accumulated_cost,
    )


@given(seed=st.integers(min_value=0, max_value=150))
@settings(max_examples=25, deadline=None)
def test_cached_plan_equals_fresh_plan(seed):
    scenario = _scenario(seed)
    planner = BatchPlanner.for_scenario(scenario, cache=PlanCache())
    request = _request(scenario)
    cached = planner.plan(request)
    fresh = planner.plan_uncached(request)
    assert _plan_fields(cached) == _plan_fields(fresh)


@given(
    seed=st.integers(min_value=0, max_value=150),
    mutation=st.sampled_from(MUTATIONS),
)
@settings(max_examples=40, deadline=None)
def test_mutation_between_calls_forces_recompute(seed, mutation):
    scenario = _scenario(seed)
    ledger = BandwidthLedger(scenario.topology)
    cache = PlanCache()
    planner = BatchPlanner.for_scenario(scenario, cache=cache, ledger=ledger)
    request = _request(scenario)

    first_fp = planner.fingerprint(request)
    first = planner.plan(request)
    _mutate(scenario, ledger, mutation)
    second_fp = planner.fingerprint(request)
    second = planner.plan(request)

    if mutation == "none":
        assert second_fp == first_fp
        assert second is first  # a genuine hit: the very same object
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
    else:
        assert second_fp != first_fp
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2
        # The recomputed plan still matches a from-scratch run of the
        # mutated world.
        assert _plan_fields(second) == _plan_fields(planner.plan_uncached(request))
