"""Tests for Markdown / CSV report rendering."""

from __future__ import annotations

import csv
import io

import pytest

from repro.core.reporting import (
    comparison_table,
    markdown_table,
    result_to_markdown,
    trace_to_csv,
    trace_to_markdown,
)
from repro.workloads.paper import figure6_scenario


@pytest.fixture(scope="module")
def fig6_result():
    return figure6_scenario().select()


class TestMarkdownTable:
    def test_basic_shape(self):
        text = markdown_table(["a", "b"], [("1", "2"), ("3", "4")])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "| --- | --- |"
        assert lines[2] == "| 1 | 2 |"
        assert len(lines) == 4

    def test_pipes_escaped(self):
        text = markdown_table(["x"], [("a|b",)])
        assert "a\\|b" in text

    def test_non_string_cells(self):
        text = markdown_table(["n"], [(42,)])
        assert "| 42 |" in text


class TestTraceRendering:
    def test_markdown_has_all_rounds(self, fig6_result):
        text = trace_to_markdown(fig6_result.trace)
        lines = text.splitlines()
        assert len(lines) == 2 + 15  # header + separator + 15 rounds
        assert "| T10 |" in lines[2]
        assert lines[-1].count("receiver") >= 1

    def test_markdown_matches_paper_values(self, fig6_result):
        text = trace_to_markdown(fig6_result.trace)
        assert "| 30 | 1.00 |" in text
        assert "| 20 | 0.66 |" in text

    def test_csv_parses_back(self, fig6_result):
        text = trace_to_csv(fig6_result.trace)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0][0] == "Round"
        assert len(rows) == 16
        final = rows[-1]
        assert final[3] == "receiver"
        assert final[6] == "0.66"

    def test_csv_sets_survive_commas(self, fig6_result):
        """VT/CS cells contain commas; CSV quoting must keep columns
        aligned."""
        text = trace_to_csv(fig6_result.trace)
        rows = list(csv.reader(io.StringIO(text)))
        assert all(len(row) == 7 for row in rows)


class TestResultMarkdown:
    def test_success_block(self, fig6_result):
        text = result_to_markdown(fig6_result, title="Figure 6")
        assert text.startswith("### Figure 6")
        assert "sender,T7,receiver" in text
        assert "19.75 fps" in text

    def test_failure_block(self):
        result = figure6_scenario(budget=0.0).select()
        text = result_to_markdown(result)
        assert "FAILURE" in text


class TestComparisonTable:
    def test_highlight_best(self):
        text = comparison_table(
            ["satisfaction", "ms"],
            [("greedy", "0.94", "9.4"), ("widest", "0.78", "689")],
            highlight_best=0,
        )
        assert "**greedy**" in text
        assert "**widest**" not in text

    def test_no_highlight(self):
        text = comparison_table(["s"], [("a", "1"), ("b", "2")])
        assert "**" not in text

    def test_non_numeric_column_tolerated(self):
        text = comparison_table(
            ["path"],
            [("a", "sender,T7"), ("b", "sender,T8")],
            highlight_best=0,
        )
        # Nothing numeric to compare; no crash, something rendered.
        assert "sender,T7" in text
