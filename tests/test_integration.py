"""End-to-end integration tests across all subsystems.

Each test exercises a full slice of the framework the way a downstream
application would: discovery feeds profiles, profiles feed graph
construction, selection plans a chain, transcoders execute it, and the
pipeline streams it.
"""

from __future__ import annotations

import pytest

from repro.core.configuration import Configuration
from repro.core.parameters import (
    COLOR_DEPTH,
    FRAME_RATE,
    RESOLUTION,
    ContinuousDomain,
    DiscreteDomain,
    Parameter,
    ParameterSet,
)
from repro.core.satisfaction import LinearSatisfaction
from repro.core.selection import QoSPathSelector, build_chain
from repro.discovery.slp import DirectoryAgent, ServiceAgent, UserAgent
from repro.core.graph import AdaptationGraphBuilder
from repro.formats.format import MediaFormat, MediaType
from repro.formats.registry import FormatRegistry
from repro.formats.variants import ContentVariant
from repro.network.topology import NetworkTopology
from repro.profiles.content import ContentProfile
from repro.profiles.context import ContextProfile
from repro.profiles.device import DeviceProfile
from repro.profiles.intermediary import merge_intermediaries
from repro.profiles.serialization import profile_from_dict, profile_to_dict
from repro.profiles.user import UserProfile
from repro.runtime.session import AdaptationSession
from repro.services.descriptor import ServiceDescriptor
from repro.workloads.paper import figure6_scenario
from repro.workloads.scenario import Scenario


def test_discovery_to_delivery_round_trip():
    """SLP advertisement -> intermediary profiles -> graph -> chain ->
    executed transcoding, in one flow."""
    raw_bits = 76800.0 * 24.0
    registry = FormatRegistry()
    registry.define("mpeg2", compression_ratio=20.0)
    registry.define("h263", compression_ratio=80.0)

    topology = NetworkTopology()
    for node in ("origin", "proxy", "phone"):
        topology.node(node)
    topology.link("origin", "proxy", 8e6, delay_ms=5.0)
    topology.link("proxy", "phone", 1e6, delay_ms=20.0)

    # The proxy advertises one mpeg2 -> h263 transcoder over SLP.
    directory = DirectoryAgent()
    agent = ServiceAgent("proxy", directory)
    agent.register(
        ServiceDescriptor(
            service_id="mobile-transcoder",
            input_formats=("mpeg2",),
            output_formats=("h263",),
            output_caps={FRAME_RATE: 24.0},
            cost=0.5,
        )
    )
    reply = UserAgent("phone-user", directory).find(output_format="h263")
    assert reply.urls == ["service:transcoder:mobile-transcoder@proxy"]

    profiles = directory.registry.intermediary_profiles(topology)
    catalog, placement = merge_intermediaries(profiles, topology)

    content = ContentProfile(
        content_id="news",
        variants=[
            ContentVariant(
                format=registry.get("mpeg2"),
                configuration=Configuration(
                    {FRAME_RATE: 30.0, RESOLUTION: 76800.0, COLOR_DEPTH: 24.0}
                ),
                title="evening news",
            )
        ],
    )
    device = DeviceProfile(
        device_id="phone", decoders=["h263"], max_frame_rate=20.0
    )
    parameters = ParameterSet(
        [
            Parameter(FRAME_RATE, "fps", ContinuousDomain(0.0, 60.0)),
            Parameter(RESOLUTION, "pixels", DiscreteDomain([76800.0])),
            Parameter(COLOR_DEPTH, "bits", DiscreteDomain([24.0])),
        ]
    )
    graph = AdaptationGraphBuilder(catalog, placement).build(
        content, device, "origin", "phone"
    )
    user = UserProfile(
        user_id="viewer",
        satisfaction_functions={FRAME_RATE: LinearSatisfaction(0.0, 30.0)},
        budget=10.0,
    )
    result = QoSPathSelector.for_user(graph, registry, parameters, user).run()
    assert result.success
    assert result.path == ("sender", "mobile-transcoder", "receiver")
    # Device cap (20 fps) binds before the transcoder cap (24).
    assert result.delivered_frame_rate == pytest.approx(20.0)

    # Execute the chain with the synthetic transcoders.
    chain = build_chain(graph, result)
    delivered = chain.execute(content.variant_for("mpeg2"), registry)
    assert delivered.format.name == "h263"
    assert delivered.configuration[FRAME_RATE] <= 24.0


def test_context_profile_changes_the_plan(fig6):
    """A driving context kills video, collapsing satisfaction to zero."""
    quiet_plan = fig6.session(prune=False).plan()
    driving = Scenario(
        name="fig6-driving",
        registry=fig6.registry,
        parameters=fig6.parameters,
        catalog=fig6.catalog,
        topology=fig6.topology,
        placement=fig6.placement,
        content=fig6.content,
        device=fig6.device,
        user=fig6.user,
        sender_node=fig6.sender_node,
        receiver_node=fig6.receiver_node,
        context=ContextProfile(activity="driving"),
    )
    driving_plan = driving.session(prune=False).plan()
    assert quiet_plan.result.satisfaction > 0.6
    assert driving_plan.result.satisfaction == 0.0


def test_profiles_survive_serialization_into_a_working_session(fig6):
    """Serialize the user/device/content profiles, rebuild them, and get
    the identical selection result."""
    user = profile_from_dict(profile_to_dict(fig6.user))
    device = profile_from_dict(profile_to_dict(fig6.device))
    content = profile_from_dict(profile_to_dict(fig6.content), fig6.registry)
    rebuilt = Scenario(
        name="fig6-rebuilt",
        registry=fig6.registry,
        parameters=fig6.parameters,
        catalog=fig6.catalog,
        topology=fig6.topology,
        placement=fig6.placement,
        content=content,
        device=device,
        user=user,
        sender_node=fig6.sender_node,
        receiver_node=fig6.receiver_node,
    )
    original = fig6.select()
    replayed = rebuilt.select()
    assert replayed.path == original.path
    assert replayed.satisfaction == pytest.approx(original.satisfaction)


def test_chain_execution_agrees_with_planned_configuration(fig6):
    """Running the synthetic transcoders over the selected chain delivers
    at least the planned quality (the plan is bandwidth-limited, the
    executable transcoders only enforce caps)."""
    plan = fig6.session(prune=False).plan()
    chain = plan.chain()
    source = fig6.content.variant_for("F0")
    delivered = chain.execute(source, fig6.registry)
    planned = plan.result.configuration
    assert delivered.configuration[FRAME_RATE] >= planned[FRAME_RATE] - 1e-9
    assert delivered.format.name == plan.result.formats[-1]


def test_peer_specific_preferences_change_satisfaction(fig6):
    """The paper's 'CD quality for clients, telephone quality for
    colleagues' example, at the selection level."""
    demanding = UserProfile(
        user_id="rep",
        satisfaction_functions={FRAME_RATE: LinearSatisfaction(0.0, 30.0)},
        peer_overrides={
            "client": {FRAME_RATE: LinearSatisfaction(0.0, 60.0)}
        },
        budget=100.0,
    )
    graph = fig6.build_graph()
    colleague = QoSPathSelector.for_user(
        graph, fig6.registry, fig6.parameters, demanding
    ).run()
    client = QoSPathSelector.for_user(
        graph, fig6.registry, fig6.parameters, demanding, peer="client"
    ).run()
    # Same delivered stream, judged more harshly against the client ideal.
    assert client.delivered_frame_rate == pytest.approx(
        colleague.delivered_frame_rate
    )
    assert client.satisfaction < colleague.satisfaction
