"""Integration tests using the standard format registry and parameters.

Everything else in the suite builds bespoke registries; these tests check
that the *shipped* defaults (:func:`repro.formats.registry.standard_registry`
and :func:`repro.core.parameters.standard_parameters`) compose into working
scenarios — including the audio-quality parameter, which the paper lists
but the Figure 6 example never exercises.
"""

from __future__ import annotations

import pytest

from repro.core.configuration import Configuration
from repro.core.graph import AdaptationGraphBuilder
from repro.core.parameters import (
    AUDIO_QUALITY,
    COLOR_DEPTH,
    FRAME_RATE,
    RESOLUTION,
    standard_parameters,
)
from repro.core.satisfaction import LinearSatisfaction, StepSatisfaction
from repro.core.selection import QoSPathSelector
from repro.formats.registry import standard_registry
from repro.formats.variants import ContentVariant
from repro.network.placement import ServicePlacement
from repro.network.topology import NetworkTopology
from repro.profiles.content import ContentProfile
from repro.profiles.device import DeviceProfile
from repro.profiles.user import AdaptationPolicy, UserProfile
from repro.services.catalog import ServiceCatalog
from repro.services.descriptor import ServiceDescriptor


@pytest.fixture
def standard_world():
    registry = standard_registry()
    parameters = standard_parameters()

    topology = NetworkTopology()
    topology.node("origin")
    topology.node("proxy")
    topology.node("client")
    topology.link("origin", "proxy", 20e6, delay_ms=5.0)
    topology.link("proxy", "client", 2e6, delay_ms=20.0)

    catalog = ServiceCatalog(
        [
            ServiceDescriptor(
                service_id="to-mpeg4",
                input_formats=("mpeg2-hq", "mpeg2-sd"),
                output_formats=("mpeg4-asp",),
                cost=0.5,
            ),
            ServiceDescriptor(
                service_id="to-mobile",
                input_formats=("mpeg4-asp",),
                output_formats=("h263-mobile",),
                output_caps={RESOLUTION: 176.0 * 144.0, FRAME_RATE: 15.0},
                cost=0.3,
            ),
        ]
    )
    placement = ServicePlacement(topology, {"to-mpeg4": "proxy", "to-mobile": "proxy"})
    content = ContentProfile(
        content_id="movie",
        variants=[
            ContentVariant(
                format=registry.get("mpeg2-hq"),
                configuration=Configuration(
                    {
                        FRAME_RATE: 30.0,
                        RESOLUTION: 704.0 * 576.0,
                        COLOR_DEPTH: 24.0,
                        AUDIO_QUALITY: 256.0,
                    }
                ),
            )
        ],
    )
    return registry, parameters, topology, catalog, placement, content


def build_and_select(standard_world, device, user):
    registry, parameters, topology, catalog, placement, content = standard_world
    graph = AdaptationGraphBuilder(catalog, placement).build(
        content, device, "origin", "client"
    )
    return QoSPathSelector.for_user(graph, registry, parameters, user).run()


class TestStandardDefaults:
    def test_direct_delivery_to_capable_client(self, standard_world):
        device = DeviceProfile("desktop", decoders=["mpeg2-hq"])
        user = UserProfile(
            "u", {FRAME_RATE: LinearSatisfaction(0, 30)}, budget=10.0
        )
        result = build_and_select(standard_world, device, user)
        assert result.success
        assert result.path == ("sender", "receiver")

    def test_two_stage_chain_to_phone(self, standard_world):
        device = DeviceProfile(
            "phone", decoders=["h263-mobile"], max_frame_rate=15.0
        )
        user = UserProfile(
            "u", {FRAME_RATE: LinearSatisfaction(0, 30)}, budget=10.0
        )
        result = build_and_select(standard_world, device, user)
        assert result.success
        assert result.path == ("sender", "to-mpeg4", "to-mobile", "receiver")
        assert result.delivered_frame_rate <= 15.0

    def test_audio_preference_with_policy(self, standard_world):
        """The paper's policy example: drop audio before video.

        The last link (2 Mbit/s) cannot carry full video + 256 kbps audio
        in mpeg2-hq... it can in mpeg4; craft a user who cares about both
        and check the audio parameter survives in the configuration.
        """
        device = DeviceProfile(
            "phone",
            decoders=["h263-mobile"],
            max_frame_rate=15.0,
            max_audio_kbps=128.0,
        )
        user = UserProfile(
            "u",
            {
                FRAME_RATE: LinearSatisfaction(0, 15),
                AUDIO_QUALITY: StepSatisfaction([(32.0, 0.6), (128.0, 1.0)]),
            },
            policies=[
                AdaptationPolicy(AUDIO_QUALITY, 0),
                AdaptationPolicy(FRAME_RATE, 1),
            ],
            budget=10.0,
        )
        result = build_and_select(standard_world, device, user)
        assert result.success
        config = result.configuration
        assert AUDIO_QUALITY in config
        # The device caps audio at 128; the domain snaps to a real value.
        assert config[AUDIO_QUALITY] in (0.0, 8.0, 16.0, 32.0, 64.0, 128.0)
        assert 0.0 < result.satisfaction <= 1.0

    def test_standard_parameter_domains_respected(self, standard_world):
        device = DeviceProfile(
            "phone", decoders=["h263-mobile"], max_frame_rate=15.0
        )
        user = UserProfile(
            "u", {FRAME_RATE: LinearSatisfaction(0, 30)}, budget=10.0
        )
        result = build_and_select(standard_world, device, user)
        params = standard_parameters()
        for name, value in result.configuration.items():
            domain = params[name].domain
            # Every delivered value is feasible in its standard domain.
            assert domain.clamp_down(value) == pytest.approx(value)

    def test_tight_budget_blocks_the_chain(self, standard_world):
        device = DeviceProfile("phone", decoders=["h263-mobile"])
        user = UserProfile(
            "u", {FRAME_RATE: LinearSatisfaction(0, 30)}, budget=0.6
        )
        result = build_and_select(standard_world, device, user)
        # The chain needs 0.5 + 0.3 = 0.8; only the first hop is affordable.
        assert not result.success
