"""Unit tests for the selection trace (Table 1's data structure)."""

from __future__ import annotations

import pytest

from repro.core.trace import SelectionRound, SelectionTrace


def make_round(number=1, selected="T1", satisfaction=0.76, frame_rate=22.86):
    return SelectionRound(
        number=number,
        considered_set=("sender",),
        candidate_set=("T1", "T2", "receiver"),
        selected=selected,
        path=("sender", selected),
        frame_rate=frame_rate,
        satisfaction=satisfaction,
    )


class TestSelectionRound:
    def test_displayed_frame_rate_rounds_like_the_paper(self):
        assert make_round(frame_rate=22.86).displayed_frame_rate() == "23"
        assert make_round(frame_rate=19.75).displayed_frame_rate() == "20"
        assert make_round(frame_rate=30.0).displayed_frame_rate() == "30"

    def test_displayed_frame_rate_absent(self):
        assert make_round(frame_rate=None).displayed_frame_rate() == "-"

    def test_displayed_satisfaction_two_decimals(self):
        assert make_round(satisfaction=0.7646).displayed_satisfaction() == "0.76"
        assert make_round(satisfaction=0.9967).displayed_satisfaction() == "1.00"
        assert make_round(satisfaction=0.6583).displayed_satisfaction() == "0.66"

    def test_displayed_path_comma_joined(self):
        assert make_round().displayed_path() == "sender,T1"

    def test_displayed_sets_braced(self):
        vt, cs = make_round().displayed_sets()
        assert vt == "{ sender }"
        assert cs == "{T1, T2, receiver}"

    def test_as_paper_row_order(self):
        row = make_round().as_paper_row()
        assert row[2] == "T1"          # selected
        assert row[3] == "sender,T1"   # path
        assert row[4] == "23"          # fps
        assert row[5] == "0.76"        # satisfaction


class TestSelectionTrace:
    def test_append_enforces_numbering(self):
        trace = SelectionTrace()
        trace.append(make_round(number=1))
        with pytest.raises(ValueError):
            trace.append(make_round(number=3))
        trace.append(make_round(number=2, selected="T2"))
        assert len(trace) == 2

    def test_selected_sequence(self):
        trace = SelectionTrace()
        trace.append(make_round(number=1, selected="T10"))
        trace.append(make_round(number=2, selected="receiver"))
        assert trace.selected_sequence() == ["T10", "receiver"]

    def test_indexing_and_iteration(self):
        trace = SelectionTrace()
        trace.append(make_round(number=1))
        assert trace[0].number == 1
        assert [r.number for r in trace] == [1]

    def test_render_contains_headers_and_rows(self):
        trace = SelectionTrace()
        trace.append(make_round(number=1))
        text = trace.render()
        assert "Round" in text
        assert "Considered Set (VT)" in text
        assert "Satisfaction" in text
        assert "0.76" in text

    def test_render_wraps_long_sets(self):
        long_cs = tuple(f"T{i}" for i in range(1, 25))
        trace = SelectionTrace()
        trace.append(
            SelectionRound(
                number=1,
                considered_set=("sender",),
                candidate_set=long_cs,
                selected="T1",
                path=("sender", "T1"),
                frame_rate=30.0,
                satisfaction=1.0,
            )
        )
        text = trace.render(max_set_width=30)
        assert max(len(line) for line in text.splitlines()) < 200
        assert "T24" in text

    def test_paper_rows_shape(self, fig6):
        result = fig6.select()
        rows = result.trace.paper_rows()
        assert len(rows) == 15
        assert all(len(row) == 6 for row in rows)
