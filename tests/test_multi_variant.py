"""Tests for senders with multiple stored content variants.

Section 4.2: "Each output link of the sender vertex corresponds to one
variant with a certain format."  The selector must weigh the variants
against each other: a lower-quality variant can win when it unlocks a
better chain or fits a narrower link.
"""

from __future__ import annotations

import pytest

from repro.core.configuration import Configuration
from repro.core.graph import AdaptationGraphBuilder
from repro.core.parameters import (
    COLOR_DEPTH,
    FRAME_RATE,
    RESOLUTION,
    ContinuousDomain,
    DiscreteDomain,
    Parameter,
    ParameterSet,
)
from repro.core.satisfaction import (
    CombinedSatisfaction,
    HarmonicCombiner,
    LinearSatisfaction,
)
from repro.core.selection import QoSPathSelector
from repro.formats.registry import FormatRegistry
from repro.formats.variants import ContentVariant
from repro.network.placement import ServicePlacement
from repro.network.topology import NetworkTopology
from repro.profiles.content import ContentProfile
from repro.profiles.device import DeviceProfile
from repro.services.catalog import ServiceCatalog
from repro.services.descriptor import ServiceDescriptor

RAW = 1000.0 * 24.0
WIDE = 100.0 * RAW / 10.0


def parameters():
    return ParameterSet(
        [
            Parameter(FRAME_RATE, "fps", ContinuousDomain(0.0, 60.0)),
            Parameter(RESOLUTION, "pixels", DiscreteDomain([1000.0])),
            Parameter(COLOR_DEPTH, "bits", DiscreteDomain([24.0])),
        ]
    )


def satisfaction():
    return CombinedSatisfaction(
        {FRAME_RATE: LinearSatisfaction(0.0, 30.0)}, HarmonicCombiner()
    )


def variant(registry, name, fps):
    return ContentVariant(
        format=registry.get(name),
        configuration=Configuration(
            {FRAME_RATE: fps, RESOLUTION: 1000.0, COLOR_DEPTH: 24.0}
        ),
    )


class TestMultiVariantSender:
    def test_best_decodable_variant_wins_directly(self):
        """Device decodes both stored variants: the higher-quality one is
        delivered without any transcoding at all."""
        registry = FormatRegistry()
        registry.define("hq", compression_ratio=10.0)
        registry.define("sd", compression_ratio=10.0)
        topology = NetworkTopology()
        topology.node("ns")
        topology.node("nr")
        topology.link("ns", "nr", WIDE)
        content = ContentProfile(
            "c", [variant(registry, "hq", 30.0), variant(registry, "sd", 15.0)]
        )
        device = DeviceProfile("d", decoders=["hq", "sd"])
        graph = AdaptationGraphBuilder(
            ServiceCatalog(), ServicePlacement(topology)
        ).build(content, device, "ns", "nr")
        result = QoSPathSelector(graph, registry, parameters(), satisfaction()).run()
        assert result.success
        assert result.formats == ("hq",)
        assert result.satisfaction == pytest.approx(1.0)

    def test_lower_variant_wins_when_it_unlocks_the_only_chain(self):
        """Only the SD variant has a transcoder to the device's codec."""
        registry = FormatRegistry()
        registry.define("hq", compression_ratio=10.0)
        registry.define("sd", compression_ratio=10.0)
        registry.define("mobile", compression_ratio=10.0)
        topology = NetworkTopology()
        for node in ("ns", "np", "nr"):
            topology.node(node)
        topology.link("ns", "np", WIDE)
        topology.link("np", "nr", WIDE)
        catalog = ServiceCatalog(
            [
                ServiceDescriptor(
                    service_id="sd-to-mobile",
                    input_formats=("sd",),
                    output_formats=("mobile",),
                )
            ]
        )
        placement = ServicePlacement(topology, {"sd-to-mobile": "np"})
        content = ContentProfile(
            "c", [variant(registry, "hq", 30.0), variant(registry, "sd", 18.0)]
        )
        device = DeviceProfile("d", decoders=["mobile"])
        graph = AdaptationGraphBuilder(catalog, placement).build(
            content, device, "ns", "nr"
        )
        result = QoSPathSelector(graph, registry, parameters(), satisfaction()).run()
        assert result.success
        assert result.formats[0] == "sd"
        # The SD variant's stored quality (18 fps) is the ceiling.
        assert result.delivered_frame_rate == pytest.approx(18.0)

    def test_per_variant_configurations_are_respected(self):
        """Two variants reach the receiver through the SAME transcoder;
        the candidate keeps whichever stored quality scores higher."""
        registry = FormatRegistry()
        registry.define("hq", compression_ratio=10.0)
        registry.define("sd", compression_ratio=10.0)
        registry.define("out", compression_ratio=10.0)
        topology = NetworkTopology()
        for node in ("ns", "np", "nr"):
            topology.node(node)
        topology.link("ns", "np", WIDE)
        topology.link("np", "nr", WIDE)
        catalog = ServiceCatalog(
            [
                ServiceDescriptor(
                    service_id="X",
                    input_formats=("hq", "sd"),
                    output_formats=("out",),
                )
            ]
        )
        placement = ServicePlacement(topology, {"X": "np"})
        content = ContentProfile(
            "c", [variant(registry, "hq", 28.0), variant(registry, "sd", 12.0)]
        )
        device = DeviceProfile("d", decoders=["out"])
        graph = AdaptationGraphBuilder(catalog, placement).build(
            content, device, "ns", "nr"
        )
        result = QoSPathSelector(graph, registry, parameters(), satisfaction()).run()
        assert result.formats[0] == "hq"
        assert result.delivered_frame_rate == pytest.approx(28.0)

    def test_sender_vertex_carries_one_configuration_per_variant(self):
        registry = FormatRegistry()
        registry.define("hq", compression_ratio=10.0)
        registry.define("sd", compression_ratio=10.0)
        topology = NetworkTopology()
        topology.node("ns")
        topology.node("nr")
        topology.link("ns", "nr", WIDE)
        content = ContentProfile(
            "c", [variant(registry, "hq", 30.0), variant(registry, "sd", 15.0)]
        )
        device = DeviceProfile("d", decoders=["hq"])
        graph = AdaptationGraphBuilder(
            ServiceCatalog(), ServicePlacement(topology)
        ).build(content, device, "ns", "nr")
        configs = graph.sender.source_configurations
        assert configs["hq"][FRAME_RATE] == 30.0
        assert configs["sd"][FRAME_RATE] == 15.0
