"""Tests for bandwidth reservations and admission control."""

from __future__ import annotations

import math

import pytest

from repro.errors import ValidationError
from repro.network.reservations import BandwidthLedger
from repro.network.topology import NetworkTopology
from repro.runtime.admission import AdmissionController
from repro.workloads.paper import figure6_scenario


def small_topology() -> NetworkTopology:
    topology = NetworkTopology()
    for node in ("a", "b", "c"):
        topology.node(node)
    topology.link("a", "b", 10e6)
    topology.link("b", "c", 4e6)
    return topology


class TestBandwidthLedger:
    def test_reserve_and_residual(self):
        ledger = BandwidthLedger(small_topology())
        ledger.reserve(["a", "b", "c"], 1e6)
        assert ledger.residual("a", "b") == pytest.approx(9e6)
        assert ledger.residual("b", "c") == pytest.approx(3e6)
        assert len(ledger) == 1

    def test_release_restores_capacity(self):
        ledger = BandwidthLedger(small_topology())
        reservation = ledger.reserve(["a", "b"], 2e6)
        ledger.release(reservation)
        assert ledger.residual("a", "b") == pytest.approx(10e6)
        assert len(ledger) == 0

    def test_double_release_rejected(self):
        ledger = BandwidthLedger(small_topology())
        reservation = ledger.reserve(["a", "b"], 1e6)
        ledger.release(reservation)
        with pytest.raises(ValidationError):
            ledger.release(reservation)

    def test_over_reservation_rejected_atomically(self):
        ledger = BandwidthLedger(small_topology())
        with pytest.raises(ValidationError):
            ledger.reserve(["a", "b", "c"], 5e6)  # b--c only has 4e6
        # The a--b leg must not have been charged.
        assert ledger.residual("a", "b") == pytest.approx(10e6)
        assert len(ledger) == 0

    def test_many_reservations_accumulate(self):
        ledger = BandwidthLedger(small_topology())
        for _ in range(4):
            ledger.reserve(["b", "c"], 1e6)
        assert ledger.residual("b", "c") == pytest.approx(0.0)
        with pytest.raises(ValidationError):
            ledger.reserve(["b", "c"], 0.5e6)

    def test_single_node_route_reserves_nothing(self):
        ledger = BandwidthLedger(small_topology())
        reservation = ledger.reserve(["a"], 5e6)
        assert ledger.residual("a", "b") == pytest.approx(10e6)
        ledger.release(reservation)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValidationError):
            BandwidthLedger(small_topology()).reserve(["a", "b"], -1.0)

    def test_residual_topology_reflects_reservations(self):
        ledger = BandwidthLedger(small_topology())
        ledger.reserve(["a", "b"], 4e6)
        residual = ledger.residual_topology()
        assert residual.get_link("a", "b").bandwidth_bps == pytest.approx(6e6)
        assert residual.get_link("b", "c").bandwidth_bps == pytest.approx(4e6)
        # Delays and structure are preserved.
        assert residual.get_link("a", "b").delay_ms == pytest.approx(
            small_topology().get_link("a", "b").delay_ms
        )

    def test_unknown_link_query_raises(self):
        ledger = BandwidthLedger(small_topology())
        with pytest.raises(Exception):
            ledger.residual("a", "c")


class TestAdmissionOnFigure6:
    def _controller(self, min_satisfaction=0.0):
        scenario = figure6_scenario()
        controller = AdmissionController(
            registry=scenario.registry,
            parameters=scenario.parameters,
            catalog=scenario.catalog,
            placement=scenario.placement,
            min_satisfaction=min_satisfaction,
        )
        return scenario, controller

    def _admit(self, scenario, controller):
        return controller.admit(
            content=scenario.content,
            device=scenario.device,
            user=scenario.user,
            sender_node=scenario.sender_node,
            receiver_node=scenario.receiver_node,
        )

    def test_first_admission_matches_the_paper(self):
        scenario, controller = self._controller()
        session = self._admit(scenario, controller)
        assert session is not None
        assert session.result.path == ("sender", "T7", "receiver")
        assert session.satisfaction == pytest.approx(19.75 / 30.0, abs=1e-6)

    def test_later_admissions_see_less_capacity(self):
        scenario, controller = self._controller()
        first = self._admit(scenario, controller)
        second = self._admit(scenario, controller)
        assert first is not None and second is not None
        # The first stream consumed most of the T7 access link, so the
        # second session composes a different (or slower) chain.
        assert second.satisfaction < first.satisfaction

    def test_admissions_monotonically_decrease(self):
        scenario, controller = self._controller()
        satisfactions = []
        for _ in range(6):
            session = self._admit(scenario, controller)
            if session is None:
                break
            satisfactions.append(session.satisfaction)
        assert len(satisfactions) >= 3
        assert satisfactions == sorted(satisfactions, reverse=True)

    def test_satisfaction_floor_rejects(self):
        scenario, controller = self._controller(min_satisfaction=0.6)
        first = self._admit(scenario, controller)
        assert first is not None  # 0.658 clears the floor
        second = self._admit(scenario, controller)
        assert second is None  # nothing above 0.6 remains

    def test_teardown_restores_admissibility(self):
        scenario, controller = self._controller(min_satisfaction=0.6)
        first = self._admit(scenario, controller)
        assert self._admit(scenario, controller) is None
        controller.teardown(first.session_id)
        again = self._admit(scenario, controller)
        assert again is not None
        assert again.satisfaction == pytest.approx(first.satisfaction)

    def test_teardown_all(self):
        scenario, controller = self._controller()
        self._admit(scenario, controller)
        self._admit(scenario, controller)
        assert controller.teardown_all() == 2
        assert controller.active_sessions() == []
        assert len(controller.ledger) == 0

    def test_unknown_teardown_rejected(self):
        _, controller = self._controller()
        with pytest.raises(ValidationError):
            controller.teardown(999)

    def test_rejection_reserves_nothing(self):
        scenario, controller = self._controller(min_satisfaction=0.99)
        assert self._admit(scenario, controller) is None
        assert len(controller.ledger) == 0

    def test_invalid_floor_rejected(self):
        scenario = figure6_scenario()
        with pytest.raises(ValidationError):
            AdmissionController(
                registry=scenario.registry,
                parameters=scenario.parameters,
                catalog=scenario.catalog,
                placement=scenario.placement,
                min_satisfaction=1.5,
            )
