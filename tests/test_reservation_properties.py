"""Property-based tests for the bandwidth ledger (conservation laws)."""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.network.generators import chain_topology
from repro.network.reservations import BandwidthLedger

LINK_CAPACITY = 10e6
CHAIN_LENGTH = 5


def fresh_ledger() -> BandwidthLedger:
    return BandwidthLedger(
        chain_topology(CHAIN_LENGTH, bandwidth_bps=LINK_CAPACITY)
    )


route_strategy = st.tuples(
    st.integers(min_value=0, max_value=CHAIN_LENGTH - 2),
    st.integers(min_value=1, max_value=CHAIN_LENGTH - 1),
).map(
    lambda pair: [
        f"hop{i}"
        for i in range(min(pair[0], pair[1] - 1), max(pair[0] + 1, pair[1]) + 1)
    ]
)

demand_strategy = st.floats(
    min_value=1.0, max_value=LINK_CAPACITY, allow_nan=False
)


@settings(max_examples=60, deadline=None)
@given(
    operations=st.lists(
        st.tuples(route_strategy, demand_strategy), min_size=1, max_size=20
    )
)
def test_reserve_release_conserves_capacity(operations):
    """After releasing everything, every link is back to full capacity."""
    ledger = fresh_ledger()
    taken = []
    for route, demand in operations:
        try:
            taken.append(ledger.reserve(route, demand))
        except ValidationError:
            pass  # over-subscription rejections reserve nothing
    for reservation in taken:
        ledger.release(reservation)
    for i in range(CHAIN_LENGTH - 1):
        assert math.isclose(
            ledger.residual(f"hop{i}", f"hop{i + 1}"),
            LINK_CAPACITY,
            rel_tol=1e-9,
        )
    assert len(ledger) == 0


@settings(max_examples=60, deadline=None)
@given(
    operations=st.lists(
        st.tuples(route_strategy, demand_strategy), min_size=1, max_size=20
    )
)
def test_residuals_never_negative_and_sum_consistent(operations):
    """Residual = capacity - sum of active reservations crossing the
    link, and never below zero."""
    ledger = fresh_ledger()
    for route, demand in operations:
        try:
            ledger.reserve(route, demand)
        except ValidationError:
            pass
    for i in range(CHAIN_LENGTH - 1):
        a, b = f"hop{i}", f"hop{i + 1}"
        key = (a, b)
        expected_load = sum(
            r.bandwidth_bps
            for r in ledger.active_reservations()
            if key in r.links() or (b, a) in r.links()
        )
        residual = ledger.residual(a, b)
        assert residual >= -1e-6
        assert math.isclose(
            residual, max(0.0, LINK_CAPACITY - expected_load), rel_tol=1e-9
        )


@settings(max_examples=40, deadline=None)
@given(
    operations=st.lists(
        st.tuples(route_strategy, demand_strategy), min_size=1, max_size=16
    )
)
def test_residual_topology_matches_residuals(operations):
    ledger = fresh_ledger()
    for route, demand in operations:
        try:
            ledger.reserve(route, demand)
        except ValidationError:
            pass
    residual = ledger.residual_topology()
    for link in residual.links():
        assert math.isclose(
            link.bandwidth_bps,
            ledger.residual(link.a, link.b),
            rel_tol=1e-9,
        )


# ----------------------------------------------------------------------
# Group (tree) reservations: all-or-nothing semantics
# ----------------------------------------------------------------------

def _demands(operations):
    from repro.network.reservations import EdgeDemand

    return [
        EdgeDemand(route=tuple(route), bandwidth_bps=demand)
        for route, demand in operations
    ]


@settings(max_examples=60, deadline=None)
@given(
    operations=st.lists(
        st.tuples(route_strategy, demand_strategy), min_size=1, max_size=12
    )
)
def test_reserve_group_is_all_or_nothing(operations):
    """A failing group leaks nothing: either every edge is held or none.

    The same demand list is attempted as one group; when any edge
    over-subscribes a link mid-list, the edges already taken must be
    released — every link's residual reads exactly as if the group had
    never been attempted.
    """
    ledger = fresh_ledger()
    try:
        taken = ledger.reserve_group(_demands(operations))
    except ValidationError:
        # Rolled back: the ledger is empty and every link pristine.
        assert len(ledger) == 0
        for i in range(CHAIN_LENGTH - 1):
            assert math.isclose(
                ledger.residual(f"hop{i}", f"hop{i + 1}"),
                LINK_CAPACITY,
                rel_tol=1e-9,
            )
    else:
        # Committed whole: one reservation per demanded edge.
        assert len(taken) == len(operations)
        assert len(ledger) == len(operations)


@settings(max_examples=60, deadline=None)
@given(
    operations=st.lists(
        st.tuples(route_strategy, demand_strategy), min_size=1, max_size=12
    )
)
def test_reserve_group_release_conserves_capacity(operations):
    """Group reserve followed by release restores full capacity."""
    ledger = fresh_ledger()
    try:
        taken = ledger.reserve_group(_demands(operations))
    except ValidationError:
        taken = []
    for reservation in taken:
        ledger.release(reservation)
    assert len(ledger) == 0
    for i in range(CHAIN_LENGTH - 1):
        assert math.isclose(
            ledger.residual(f"hop{i}", f"hop{i + 1}"),
            LINK_CAPACITY,
            rel_tol=1e-9,
        )


@settings(max_examples=40, deadline=None)
@given(
    held=st.lists(
        st.tuples(route_strategy, demand_strategy), min_size=1, max_size=6
    ),
    attempted=st.lists(
        st.tuples(route_strategy, demand_strategy), min_size=1, max_size=8
    ),
)
def test_failed_group_leaves_prior_reservations_intact(held, attempted):
    """A rolled-back group must not disturb unrelated held reservations."""
    ledger = fresh_ledger()
    prior = []
    for route, demand in held:
        try:
            prior.append(ledger.reserve(route, demand * 0.1))
        except ValidationError:
            pass
    residuals_before = {
        (f"hop{i}", f"hop{i + 1}"): ledger.residual(f"hop{i}", f"hop{i + 1}")
        for i in range(CHAIN_LENGTH - 1)
    }
    try:
        taken = ledger.reserve_group(_demands(attempted))
    except ValidationError:
        taken = None
    if taken is None:
        assert len(ledger) == len(prior)
        for (a, b), residual in residuals_before.items():
            assert math.isclose(ledger.residual(a, b), residual, rel_tol=1e-9)
    else:
        assert len(ledger) == len(prior) + len(attempted)


def test_reserve_group_rejects_empty_demand_list():
    ledger = fresh_ledger()
    try:
        ledger.reserve_group([])
    except ValidationError:
        pass
    else:  # pragma: no cover - failure mode
        raise AssertionError("empty group reservation must be rejected")
    assert len(ledger) == 0
