"""Unit tests for adaptation-graph construction (Section 4.2)."""

from __future__ import annotations

import math

import pytest

from repro.core.configuration import Configuration
from repro.core.graph import AdaptationGraph, AdaptationGraphBuilder, Edge, Vertex
from repro.core.parameters import FRAME_RATE
from repro.errors import GraphConstructionError, UnknownServiceError
from repro.formats.format import MediaFormat
from repro.formats.variants import ContentVariant
from repro.network.placement import ServicePlacement
from repro.network.topology import NetworkTopology
from repro.profiles.content import ContentProfile
from repro.profiles.device import DeviceProfile
from repro.services.catalog import ServiceCatalog, service_sort_key
from repro.services.descriptor import ServiceDescriptor


def simple_world(
    check_resources: bool = True,
    heavy_service: bool = False,
    context_caps=None,
):
    """sender --F0--> T1 --F1--> receiver, plus a dead-end T2."""
    topology = NetworkTopology()
    topology.node("ns")
    topology.node("n1", memory_mb=32.0 if heavy_service else 1024.0)
    topology.node("n2")
    topology.node("nr")
    topology.link("ns", "n1", 5e6)
    topology.link("ns", "n2", 1e6)
    topology.link("n1", "nr", 3e6)

    catalog = ServiceCatalog(
        [
            ServiceDescriptor(
                service_id="T1",
                input_formats=("F0",),
                output_formats=("F1",),
                memory_mb=64.0,
                cost=1.0,
            ),
            ServiceDescriptor(
                service_id="T2",
                input_formats=("F0",),
                output_formats=("F9",),  # nobody consumes F9
                cost=1.0,
            ),
        ]
    )
    placement = ServicePlacement(topology, {"T1": "n1", "T2": "n2"})
    content = ContentProfile(
        content_id="c",
        variants=[
            ContentVariant(
                format=MediaFormat(name="F0", compression_ratio=10.0),
                configuration=Configuration({FRAME_RATE: 30.0}),
            )
        ],
    )
    device = DeviceProfile(device_id="d", decoders=["F1"], max_frame_rate=25.0)
    builder = AdaptationGraphBuilder(catalog, placement, check_resources=check_resources)
    graph = builder.build(
        content=content,
        device=device,
        sender_node="ns",
        receiver_node="nr",
        context_caps=context_caps,
    )
    return graph


class TestConstruction:
    def test_endpoint_vertices_exist(self):
        graph = simple_world()
        assert graph.sender.is_sender
        assert graph.receiver.is_receiver
        assert graph.sender_id == "sender"
        assert graph.receiver_id == "receiver"

    def test_sender_carries_variant_configurations(self):
        graph = simple_world()
        assert "F0" in graph.sender.source_configurations
        assert graph.sender.source_configurations["F0"][FRAME_RATE] == 30.0

    def test_edges_follow_format_matches(self):
        graph = simple_world()
        edge_views = {(e.source, e.target, e.format_name) for e in graph.edges()}
        assert ("sender", "T1", "F0") in edge_views
        assert ("sender", "T2", "F0") in edge_views
        assert ("T1", "receiver", "F1") in edge_views
        # T2's F9 output matches nobody.
        assert not any(e.format_name == "F9" for e in graph.edges())

    def test_edge_bandwidth_from_topology(self):
        graph = simple_world()
        edge = next(e for e in graph.edges() if e.target == "T1")
        assert edge.bandwidth_bps == 5e6

    def test_receiver_caps_include_device_limits(self):
        graph = simple_world()
        assert graph.receiver.service.output_caps[FRAME_RATE] == 25.0

    def test_context_caps_tighten_receiver(self):
        graph = simple_world(context_caps={FRAME_RATE: 10.0})
        assert graph.receiver.service.output_caps[FRAME_RATE] == 10.0

    def test_context_caps_cannot_loosen(self):
        graph = simple_world(context_caps={FRAME_RATE: 99.0})
        assert graph.receiver.service.output_caps[FRAME_RATE] == 25.0

    def test_resource_check_excludes_oversized_services(self):
        graph = simple_world(heavy_service=True)  # n1 has 32 MB, T1 needs 64
        assert "T1" not in graph
        graph = simple_world(heavy_service=True, check_resources=False)
        assert "T1" in graph

    def test_unknown_endpoint_node_rejected(self):
        topology = NetworkTopology()
        topology.node("ns")
        catalog = ServiceCatalog()
        placement = ServicePlacement(topology)
        builder = AdaptationGraphBuilder(catalog, placement)
        content = ContentProfile(
            content_id="c",
            variants=[
                ContentVariant(
                    format=MediaFormat(name="F0"),
                    configuration=Configuration({FRAME_RATE: 1.0}),
                )
            ],
        )
        device = DeviceProfile(device_id="d", decoders=["F0"])
        with pytest.raises(GraphConstructionError):
            builder.build(content, device, "ns", "ghost")

    def test_co_located_services_get_unlimited_bandwidth(self):
        topology = NetworkTopology()
        topology.node("ns")
        topology.node("shared")
        topology.node("nr")
        topology.link("ns", "shared", 1e6)
        topology.link("shared", "nr", 1e6)
        catalog = ServiceCatalog(
            [
                ServiceDescriptor(
                    service_id="A", input_formats=("F0",), output_formats=("F1",)
                ),
                ServiceDescriptor(
                    service_id="B", input_formats=("F1",), output_formats=("F2",)
                ),
            ]
        )
        placement = ServicePlacement(topology, {"A": "shared", "B": "shared"})
        content = ContentProfile(
            content_id="c",
            variants=[
                ContentVariant(
                    format=MediaFormat(name="F0"),
                    configuration=Configuration({FRAME_RATE: 1.0}),
                )
            ],
        )
        device = DeviceProfile(device_id="d", decoders=["F2"])
        graph = AdaptationGraphBuilder(catalog, placement).build(
            content, device, "ns", "nr"
        )
        edge = next(e for e in graph.edges() if (e.source, e.target) == ("A", "B"))
        assert math.isinf(edge.bandwidth_bps)


class TestGraphQueries:
    def test_vertex_lookup(self):
        graph = simple_world()
        assert graph.vertex("T1").service_id == "T1"
        with pytest.raises(UnknownServiceError):
            graph.vertex("nope")

    def test_vertices_in_natural_order(self):
        graph = simple_world()
        ids = graph.vertex_ids()
        assert ids.index("T1") < ids.index("T2")

    def test_out_edges_sorted(self):
        graph = simple_world()
        targets = [e.target for e in graph.out_edges("sender")]
        assert targets == sorted(targets, key=lambda t: int(t[1:]))

    def test_in_edges(self):
        graph = simple_world()
        sources = [e.source for e in graph.in_edges("receiver")]
        assert sources == ["T1"]

    def test_successors_deduplicated(self):
        graph = simple_world()
        assert graph.successors("sender") == ["T1", "T2"]

    def test_reachability_sets(self):
        graph = simple_world()
        assert "T2" in graph.reachable_from_sender()
        assert "T2" not in graph.co_reachable_to_receiver()
        assert "T1" in graph.co_reachable_to_receiver()

    def test_len_and_contains(self):
        graph = simple_world()
        assert len(graph) == 4
        assert "T1" in graph and "zzz" not in graph

    def test_adjacency_cached_at_freeze_time(self):
        # out_edges/in_edges no longer re-sort per call: repeated queries
        # return the same frozen tuple, in the seed's (id, format) order.
        graph = simple_world()
        for service_id in graph.vertex_ids():
            out_first = graph.out_edges(service_id)
            assert graph.out_edges(service_id) is out_first
            assert list(out_first) == sorted(
                out_first, key=lambda e: (service_sort_key(e.target), e.format_name)
            )
            in_first = graph.in_edges(service_id)
            assert graph.in_edges(service_id) is in_first
            assert list(in_first) == sorted(
                in_first, key=lambda e: (service_sort_key(e.source), e.format_name)
            )
        with pytest.raises(UnknownServiceError):
            graph.out_edges("ghost")
        with pytest.raises(UnknownServiceError):
            graph.in_edges("ghost")

    def test_vertex_rank_matches_natural_order(self):
        graph = simple_world()
        rank = graph.vertex_rank()
        ids = graph.vertex_ids()
        assert [ids[rank[v]] for v in ids] == ids
        assert sorted(ids, key=rank.__getitem__) == ids


class TestPathEnumeration:
    def test_simple_world_has_one_path(self):
        graph = simple_world()
        paths = list(graph.enumerate_paths())
        assert len(paths) == 1
        assert [e.target for e in paths[0]] == ["T1", "receiver"]

    def test_figure3_paths_all_distinct_format(self, fig3):
        graph = fig3.build_graph()
        for path in graph.enumerate_paths():
            formats = [e.format_name for e in path]
            assert len(formats) == len(set(formats))
            services = [e.target for e in path]
            assert len(services) == len(set(services))

    def test_max_paths_bounds_enumeration(self, fig3):
        graph = fig3.build_graph()
        total = len(list(graph.enumerate_paths()))
        assert total > 2
        bounded = len(list(graph.enumerate_paths(max_paths=2)))
        assert bounded == 2

    def test_max_hops_bounds_depth(self, fig3):
        graph = fig3.build_graph()
        for path in graph.enumerate_paths(max_hops=3):
            assert len(path) <= 3

    def test_duplicate_vertex_rejected(self):
        vertex = Vertex(
            service=ServiceDescriptor(
                service_id="X", input_formats=("a",), output_formats=("b",)
            ),
            node_id="n",
        )
        sender = Vertex(
            service=ContentProfile(
                "c",
                [
                    ContentVariant(
                        format=MediaFormat(name="a"),
                        configuration=Configuration({FRAME_RATE: 1.0}),
                    )
                ],
            ).sender_descriptor(),
            node_id="n",
        )
        receiver = Vertex(
            service=DeviceProfile("d", ["b"]).receiver_descriptor(),
            node_id="n",
        )
        with pytest.raises(GraphConstructionError):
            AdaptationGraph(
                [sender, receiver, vertex, vertex], [], "sender", "receiver"
            )

    def test_missing_endpoint_rejected(self):
        with pytest.raises(GraphConstructionError):
            AdaptationGraph([], [], "sender", "receiver")

    def test_edge_to_unknown_vertex_rejected(self):
        sender = Vertex(
            service=ContentProfile(
                "c",
                [
                    ContentVariant(
                        format=MediaFormat(name="a"),
                        configuration=Configuration({FRAME_RATE: 1.0}),
                    )
                ],
            ).sender_descriptor(),
            node_id="n",
        )
        receiver = Vertex(
            service=DeviceProfile("d", ["b"]).receiver_descriptor(),
            node_id="n",
        )
        bad_edge = Edge("sender", "ghost", "a", 1e6)
        with pytest.raises(GraphConstructionError):
            AdaptationGraph([sender, receiver], [bad_edge], "sender", "receiver")
