"""Unit tests for the serving building blocks.

Covers the HTTP/1.1 codec (both directions share it, so these tests pin
the framing contract), the admission machinery (token buckets, the rate
limiter's bounded client table, the EDF deadline queue), the wire
protocol decoder, and the fixed-bucket histogram.  Everything here is
deterministic: clocks are injected, and the only event loop used is a
throwaway ``asyncio.run`` per test (no pytest-asyncio in this repo).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import GatewayProtocolError, ValidationError
from repro.profiles.serialization import profile_to_dict
from repro.serve.admission import DeadlineQueue, RateLimiter, TokenBucket
from repro.serve.http11 import (
    read_request,
    read_response,
    render_request,
    render_response,
)
from repro.serve.metrics import Histogram
from repro.serve.protocol import (
    decode_plan_request,
    encode_payload,
    error_payload,
)
from repro.workloads.synthetic import SyntheticConfig, generate_scenario


def parse_request(data: bytes, **kwargs):
    async def inner():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(inner())


def parse_response(data: bytes):
    async def inner():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_response(reader)

    return asyncio.run(inner())


class TestHttpCodec:
    def test_request_round_trip(self):
        wire = render_request("POST", "/plan", b'{"x":1}')
        request = parse_request(wire)
        assert request.method == "POST"
        assert request.path == "/plan"
        assert request.body == b'{"x":1}'
        assert request.keep_alive

    def test_response_round_trip(self):
        wire = render_response(429, b'{"status":"shed"}',
                               headers={"Retry-After": "0.5"})
        response = parse_response(wire)
        assert response.status == 429
        assert response.headers["retry-after"] == "0.5"
        assert response.body == b'{"status":"shed"}'

    def test_connection_close_disables_keep_alive(self):
        request = parse_request(render_request("GET", "/healthz",
                                               keep_alive=False))
        assert not request.keep_alive

    def test_clean_eof_returns_none(self):
        assert parse_request(b"") is None

    def test_malformed_request_line_raises(self):
        with pytest.raises(GatewayProtocolError):
            parse_request(b"GARBAGE\r\n\r\n")

    def test_non_http_version_raises(self):
        with pytest.raises(GatewayProtocolError):
            parse_request(b"GET /x SPDY/3\r\n\r\n")

    def test_malformed_header_raises(self):
        with pytest.raises(GatewayProtocolError):
            parse_request(b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n")

    def test_bad_content_length_raises(self):
        with pytest.raises(GatewayProtocolError):
            parse_request(b"GET /x HTTP/1.1\r\ncontent-length: ten\r\n\r\n")

    def test_oversized_body_rejected_without_reading_it(self):
        head = b"POST /plan HTTP/1.1\r\ncontent-length: 100\r\n\r\n"
        with pytest.raises(GatewayProtocolError):
            parse_request(head + b"x" * 100, max_body=10)

    def test_chunked_encoding_rejected(self):
        wire = b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"
        with pytest.raises(GatewayProtocolError):
            parse_request(wire)

    def test_truncated_body_raises(self):
        wire = b"POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort"
        with pytest.raises(GatewayProtocolError):
            parse_request(wire)

    def test_truncated_response_raises(self):
        with pytest.raises(GatewayProtocolError):
            parse_response(b"")


class TestTokenBucket:
    def test_burst_then_refuses(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=3)
        assert [bucket.try_acquire(0.0) for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refills_with_time(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=1)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.1)  # one token refilled

    def test_retry_after_is_time_to_one_token(self):
        bucket = TokenBucket(rate_per_s=2.0, burst=1)
        bucket.try_acquire(0.0)
        assert bucket.retry_after_s(0.0) == pytest.approx(0.5)

    def test_burst_caps_the_refill(self):
        bucket = TokenBucket(rate_per_s=100.0, burst=2)
        bucket.try_acquire(0.0)
        # A long idle period still leaves only ``burst`` tokens.
        assert [bucket.try_acquire(100.0) for _ in range(3)] == [
            True, True, False,
        ]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValidationError):
            TokenBucket(rate_per_s=0.0, burst=1)
        with pytest.raises(ValidationError):
            TokenBucket(rate_per_s=1.0, burst=0)


class TestRateLimiter:
    def test_disabled_admits_everything(self):
        limiter = RateLimiter(rate_per_s=0.0, burst=1)
        assert not limiter.enabled
        for _ in range(100):
            admitted, retry = limiter.check("greedy", 0.0)
            assert admitted and retry == 0.0

    def test_per_client_isolation(self):
        limiter = RateLimiter(rate_per_s=1.0, burst=1)
        assert limiter.check("a", 0.0) == (True, 0.0)
        admitted, retry = limiter.check("a", 0.0)
        assert not admitted and retry > 0
        # Client b has its own bucket and is unaffected by a's burst.
        assert limiter.check("b", 0.0) == (True, 0.0)

    def test_invalid_config_fails_at_construction(self):
        # Buckets are created lazily per client, but a misconfigured
        # limiter must fail when the daemon starts, not on the first
        # request.
        with pytest.raises(ValidationError):
            RateLimiter(rate_per_s=1.0, burst=0.5)
        with pytest.raises(ValidationError):
            RateLimiter(rate_per_s=-1.0, burst=10)
        # Disabled limiting ignores burst entirely.
        assert not RateLimiter(rate_per_s=0.0, burst=0.0).enabled

    def test_client_table_bounded_by_evicting_oldest(self):
        limiter = RateLimiter(rate_per_s=1.0, burst=1, max_clients=2)
        limiter.check("old", 0.0)
        limiter.check("mid", 1.0)
        limiter.check("new", 2.0)  # evicts "old"
        # "old" returns with a fresh, full bucket: admitted again.
        admitted, _ = limiter.check("old", 2.0)
        assert admitted


class TestDeadlineQueue:
    def test_pops_in_deadline_order(self):
        async def scenario():
            queue = DeadlineQueue(maxsize=8)
            assert queue.try_put(3.0, "late")
            assert queue.try_put(1.0, "early")
            assert queue.try_put(2.0, "mid")
            order = [await queue.get() for _ in range(3)]
            return [item for _, item in order]

        assert asyncio.run(scenario()) == ["early", "mid", "late"]

    def test_full_queue_sheds(self):
        async def scenario():
            queue = DeadlineQueue(maxsize=2)
            assert queue.try_put(1.0, "a")
            assert queue.try_put(2.0, "b")
            return queue.try_put(3.0, "c")

        assert asyncio.run(scenario()) is False

    def test_get_waits_for_a_put(self):
        async def scenario():
            queue = DeadlineQueue(maxsize=2)

            async def producer():
                await asyncio.sleep(0.01)
                queue.try_put(1.0, "eventually")

            task = asyncio.get_running_loop().create_task(producer())
            deadline, item = await queue.get()
            await task
            return item

        assert asyncio.run(scenario()) == "eventually"

    def test_drain_pending_empties_in_deadline_order(self):
        async def scenario():
            queue = DeadlineQueue(maxsize=8)
            queue.try_put(2.0, "b")
            queue.try_put(1.0, "a")
            drained = queue.drain_pending()
            return drained, len(queue)

        drained, remaining = asyncio.run(scenario())
        assert drained == ["a", "b"]
        assert remaining == 0

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValidationError):
            DeadlineQueue(maxsize=0)


class TestPlanRequestDecoding:
    @pytest.fixture(scope="class")
    def scenario(self):
        return generate_scenario(SyntheticConfig(seed=3, n_services=6,
                                                 n_formats=5, n_nodes=4))

    def test_minimal_body_defaults(self, scenario):
        envelope = decode_plan_request(b"{}", scenario.registry, 1000.0)
        assert envelope.client == "anonymous"
        assert envelope.deadline_ms is None
        assert envelope.device is None

    def test_inline_device_profile_decodes(self, scenario):
        body = encode_payload({
            "client": "tests",
            "deadline_ms": 100,
            "device": profile_to_dict(scenario.device),
        })
        envelope = decode_plan_request(body, scenario.registry, 1000.0)
        assert envelope.client == "tests"
        assert envelope.deadline_ms == 100.0
        assert envelope.device == scenario.device

    def test_not_json_raises(self, scenario):
        with pytest.raises(ValidationError):
            decode_plan_request(b"not json", scenario.registry, 1000.0)

    def test_non_object_raises(self, scenario):
        with pytest.raises(ValidationError):
            decode_plan_request(b"[1,2]", scenario.registry, 1000.0)

    def test_bad_client_raises(self, scenario):
        with pytest.raises(ValidationError):
            decode_plan_request(b'{"client": ""}', scenario.registry, 1000.0)

    def test_deadline_bounds_enforced(self, scenario):
        for bad in ('{"deadline_ms": 0}', '{"deadline_ms": -5}',
                    '{"deadline_ms": 5000}', '{"deadline_ms": true}',
                    '{"deadline_ms": "fast"}'):
            with pytest.raises(ValidationError):
                decode_plan_request(bad.encode(), scenario.registry, 1000.0)

    def test_wrong_profile_tag_raises(self, scenario):
        body = encode_payload({"device": profile_to_dict(scenario.user)})
        with pytest.raises(ValidationError):
            decode_plan_request(body, scenario.registry, 1000.0)

    def test_non_object_profile_raises(self, scenario):
        with pytest.raises(ValidationError):
            decode_plan_request(b'{"device": 7}', scenario.registry, 1000.0)

    def test_bad_endpoint_raises(self, scenario):
        with pytest.raises(ValidationError):
            decode_plan_request(b'{"sender": 3}', scenario.registry, 1000.0)


class TestPayloads:
    def test_error_payload_shape(self):
        payload = error_payload("shed", "queue full", queue_ms=1.25)
        assert payload == {"status": "shed", "detail": "queue full",
                           "queue_ms": 1.25}

    def test_encode_is_canonical(self):
        a = encode_payload({"b": 1, "a": 2})
        b = encode_payload({"a": 2, "b": 1})
        assert a == b == b'{"a":2,"b":1}'


class TestHistogram:
    def test_observations_land_in_buckets(self):
        hist = Histogram((1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        assert hist.to_dict()["counts"] == [1, 1, 1, 1]
        assert hist.count == 4

    def test_quantiles_report_bucket_bounds(self):
        hist = Histogram((1.0, 10.0, 100.0))
        for _ in range(99):
            hist.observe(0.5)
        hist.observe(50.0)
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(1.0) == 100.0

    def test_overflow_reports_last_finite_bound(self):
        hist = Histogram((1.0, 2.0))
        hist.observe(100.0)
        assert hist.quantile(0.99) == 2.0

    def test_empty_histogram(self):
        hist = Histogram((1.0,))
        assert hist.quantile(0.99) == 0.0
        assert hist.mean() == 0.0

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValidationError):
            Histogram((2.0, 1.0))

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValidationError):
            Histogram((1.0,)).quantile(0.0)


class TestLoadgenValidation:
    def test_requests_must_be_positive(self):
        from repro.serve import LoadgenConfig, run_loadgen

        scenario = generate_scenario(SyntheticConfig(seed=1, n_services=4,
                                                     n_formats=4, n_nodes=3))
        with pytest.raises(ValidationError):
            asyncio.run(run_loadgen(scenario,
                                    LoadgenConfig(requests=0)))
