"""Baseline path-selection algorithms.

The paper argues its greedy satisfaction-driven expansion is the right
criterion, "except that the optimization criterion is the user's
satisfaction, and not the available bandwidth or the number of hops"
(Section 4.4).  These baselines make that comparison concrete:

- :class:`ExhaustiveSelector` — enumerate every distinct-format path and
  keep the best; the optimal reference for experiment E5 (Figure 5) and the
  correctness oracle in the property tests.
- :class:`FewestHopsSelector` — classic shortest path (hop count).
- :class:`WidestPathSelector` — classic max-bottleneck-bandwidth path.
- :class:`CheapestPathSelector` — minimize accumulated monetary cost.
- :class:`RandomPathSelector` — seeded random walk; the sanity floor.

All baselines share :func:`evaluate_path`, which computes the best
deliverable configuration *for a fixed path* by greedy per-hop
maximization — optimal on a fixed path because quality only moves downward
and every parameter can always be reduced further at later hops.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.configuration import Configuration
from repro.core.graph import AdaptationGraph, Edge
from repro.core.optimizer import ConfigurationOptimizer, OptimizationConstraints
from repro.core.parameters import ParameterSet
from repro.core.satisfaction import CombinedSatisfaction
from repro.core.selection import LazySettleHeap, SelectionResult
from repro.formats.registry import FormatRegistry
from repro.services.catalog import service_sort_key

__all__ = [
    "evaluate_path",
    "PathSelectorBase",
    "ExhaustiveSelector",
    "FewestHopsSelector",
    "WidestPathSelector",
    "CheapestPathSelector",
    "RandomPathSelector",
]


def evaluate_path(
    graph: AdaptationGraph,
    edges: Sequence[Edge],
    registry: FormatRegistry,
    optimizer: ConfigurationOptimizer,
    budget: float = math.inf,
    max_delay_ms: float = math.inf,
) -> Optional[Tuple[Configuration, float, float]]:
    """Best deliverable (configuration, satisfaction, cost) along a fixed
    path.

    Returns ``None`` when the path is infeasible: its accumulated cost
    exceeds the budget, its accumulated delay exceeds the bound, the
    sender has no variant in the first edge's format, or some hop's
    bandwidth cannot carry any configuration.
    """
    if not edges:
        return None
    if sum(edge.delay_ms for edge in edges) > max_delay_ms:
        return None
    sender = graph.vertex(edges[0].source)
    upstream = sender.source_configurations.get(edges[0].format_name)
    if upstream is None:
        return None
    total_cost = 0.0
    for edge in edges:
        vertex = graph.vertex(edge.target)
        total_cost += vertex.service.cost + edge.transmission_cost
        if total_cost > budget:
            return None
        choice = optimizer.optimize(
            OptimizationConstraints(
                upstream=upstream,
                caps=vertex.service.output_caps,
                fmt=registry.get(edge.format_name),
                bandwidth_bps=edge.bandwidth_bps,
            )
        )
        if choice is None:
            return None
        upstream = choice.configuration
    final = optimizer.evaluate(upstream)
    return upstream, final, total_cost


def _edges_to_result(
    edges: Sequence[Edge],
    evaluation: Tuple[Configuration, float, float],
) -> SelectionResult:
    configuration, satisfaction, cost = evaluation
    path = (edges[0].source,) + tuple(edge.target for edge in edges)
    return SelectionResult(
        success=True,
        path=path,
        formats=tuple(edge.format_name for edge in edges),
        configuration=configuration,
        satisfaction=satisfaction,
        accumulated_cost=cost,
        accumulated_delay_ms=sum(edge.delay_ms for edge in edges),
        rounds_run=0,
        trace=None,
    )


_FAILURE = SelectionResult(
    success=False,
    path=(),
    formats=(),
    configuration=None,
    satisfaction=0.0,
    accumulated_cost=0.0,
    rounds_run=0,
    trace=None,
    failure_reason="no feasible sender-to-receiver path",
)


class PathSelectorBase:
    """Common wiring for the baselines."""

    def __init__(
        self,
        graph: AdaptationGraph,
        registry: FormatRegistry,
        parameters: ParameterSet,
        satisfaction: CombinedSatisfaction,
        budget: float = math.inf,
        degrade_order: Optional[Sequence[str]] = None,
        max_delay_ms: float = math.inf,
    ) -> None:
        self._graph = graph
        self._registry = registry
        self._budget = budget
        self._max_delay_ms = max_delay_ms
        self._optimizer = ConfigurationOptimizer(parameters, satisfaction, degrade_order)

    def run(self) -> SelectionResult:
        edges = self._find_path()
        if edges is None:
            return _FAILURE
        evaluation = evaluate_path(
            self._graph,
            edges,
            self._registry,
            self._optimizer,
            self._budget,
            self._max_delay_ms,
        )
        if evaluation is None:
            return _FAILURE
        return _edges_to_result(edges, evaluation)

    def _find_path(self) -> Optional[List[Edge]]:
        raise NotImplementedError


class ExhaustiveSelector(PathSelectorBase):
    """Enumerate all distinct-format paths; keep the best-evaluating one.

    ``max_paths`` / ``max_hops`` keep enumeration tractable on large random
    graphs (silently bounding the search — the scalability bench logs when
    the bound was hit).  Ties in satisfaction break toward fewer hops, then
    lexicographically smaller paths, making the result deterministic.
    """

    def __init__(self, *args, max_paths: int = 200_000, max_hops: Optional[int] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._max_paths = max_paths
        self._max_hops = max_hops
        self.paths_examined = 0
        self.hit_enumeration_bound = False

    def run(self) -> SelectionResult:
        best: Optional[Tuple[float, int, Tuple[Tuple[str, float], ...], List[Edge], Tuple]] = None
        self.paths_examined = 0
        count = 0
        for edges in self._graph.enumerate_paths(
            max_paths=self._max_paths, max_hops=self._max_hops
        ):
            count += 1
            evaluation = evaluate_path(
                self._graph,
                edges,
                self._registry,
                self._optimizer,
                self._budget,
                self._max_delay_ms,
            )
            if evaluation is None:
                continue
            _, satisfaction, _ = evaluation
            order_key = tuple(service_sort_key(e.target) for e in edges)
            candidate = (-satisfaction, len(edges), order_key)
            if best is None or candidate < best[0]:
                best = (candidate, edges, evaluation)
        self.paths_examined = count
        self.hit_enumeration_bound = count >= self._max_paths
        if best is None:
            return _FAILURE
        return _edges_to_result(best[1], best[2])

    def _find_path(self) -> Optional[List[Edge]]:  # pragma: no cover - unused
        raise NotImplementedError("ExhaustiveSelector overrides run()")


#: Cap on explored (vertex, formats-used) states in the classic baselines.
#: The distinct-format rule makes the exact state space exponential in the
#: format count; past this bound the searches keep only the first (hence,
#: for BFS, shortest) states — ample for every scenario family we generate,
#: and a documented approximation beyond.
_MAX_SEARCH_STATES = 200_000


class FewestHopsSelector(PathSelectorBase):
    """Breadth-first fewest-hops path, respecting the distinct-format rule.

    The search state is (vertex, formats-used); BFS over states finds a
    true fewest-hops distinct-format path.  Exploration is bounded by
    ``_MAX_SEARCH_STATES`` (BFS order means the bound can only cut *longer*
    paths than the ones already queued).
    """

    def _find_path(self) -> Optional[List[Edge]]:
        graph = self._graph
        start = (graph.sender_id, frozenset())
        queue: List[Tuple[str, frozenset]] = [start]
        parents: Dict[Tuple[str, frozenset], Tuple[Tuple[str, frozenset], Edge]] = {}
        seen: Set[Tuple[str, frozenset]] = {start}
        head = 0
        while head < len(queue):
            vertex_id, formats = queue[head]
            head += 1
            if vertex_id == graph.receiver_id:
                return self._unwind(parents, (vertex_id, formats))
            for edge in graph.out_edges(vertex_id):
                if edge.format_name in formats:
                    continue
                state = (edge.target, formats | {edge.format_name})
                if state in seen:
                    continue
                if len(seen) >= _MAX_SEARCH_STATES:
                    continue
                seen.add(state)
                parents[state] = ((vertex_id, formats), edge)
                queue.append(state)
        return None

    @staticmethod
    def _unwind(parents, state) -> List[Edge]:
        edges: List[Edge] = []
        while state in parents:
            state, edge = parents[state]
            edges.append(edge)
        edges.reverse()
        return edges


class WidestPathSelector(PathSelectorBase):
    """Max-bottleneck-bandwidth path over the adaptation graph's edges.

    A max-bottleneck Dijkstra over (vertex, formats-used) states; the
    classic "grab the fattest pipe" heuristic the paper contrasts with.
    """

    def _find_path(self) -> Optional[List[Edge]]:
        graph = self._graph
        start = (graph.sender_id, frozenset())
        best: Dict[Tuple[str, frozenset], float] = {start: math.inf}
        parents: Dict[Tuple[str, frozenset], Tuple[Tuple[str, frozenset], Edge]] = {}
        heap = LazySettleHeap()
        heap.push(-math.inf, start)
        done: Set[Tuple[str, frozenset]] = set()
        while True:
            popped = heap.pop_current(lambda state: state not in done)
            if popped is None:
                return None
            neg_width, state = popped
            done.add(state)
            vertex_id, formats = state
            if vertex_id == graph.receiver_id:
                return FewestHopsSelector._unwind(parents, state)
            width = -neg_width
            for edge in graph.out_edges(vertex_id):
                if edge.format_name in formats:
                    continue
                next_state = (edge.target, formats | {edge.format_name})
                if next_state in done:
                    continue
                candidate = min(width, edge.bandwidth_bps)
                if candidate > best.get(next_state, -1.0):
                    if next_state not in best and len(best) >= _MAX_SEARCH_STATES:
                        continue
                    best[next_state] = candidate
                    parents[next_state] = (state, edge)
                    heap.push(-candidate, next_state)


class CheapestPathSelector(PathSelectorBase):
    """Minimize accumulated monetary cost (service + transmission)."""

    def _find_path(self) -> Optional[List[Edge]]:
        graph = self._graph
        start = (graph.sender_id, frozenset())
        distance: Dict[Tuple[str, frozenset], float] = {start: 0.0}
        parents: Dict[Tuple[str, frozenset], Tuple[Tuple[str, frozenset], Edge]] = {}
        heap = LazySettleHeap()
        heap.push(0.0, start)
        done: Set[Tuple[str, frozenset]] = set()
        while True:
            popped = heap.pop_current(lambda state: state not in done)
            if popped is None:
                return None
            cost, state = popped
            done.add(state)
            vertex_id, formats = state
            if vertex_id == graph.receiver_id:
                return FewestHopsSelector._unwind(parents, state)
            for edge in graph.out_edges(vertex_id):
                if edge.format_name in formats:
                    continue
                next_state = (edge.target, formats | {edge.format_name})
                if next_state in done:
                    continue
                step = graph.vertex(edge.target).service.cost + edge.transmission_cost
                candidate = cost + step
                if candidate < distance.get(next_state, math.inf):
                    if next_state not in distance and len(distance) >= _MAX_SEARCH_STATES:
                        continue
                    distance[next_state] = candidate
                    parents[next_state] = (state, edge)
                    heap.push(candidate, next_state)


class RandomPathSelector(PathSelectorBase):
    """Seeded random walk to the receiver; retries a bounded number of
    times.

    The sanity floor in comparisons — any informed strategy should beat
    it.  Deterministic for a fixed seed.
    """

    def __init__(self, *args, seed: int = 0, max_attempts: int = 64, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._rng = random.Random(seed)
        self._max_attempts = max_attempts

    def _find_path(self) -> Optional[List[Edge]]:
        graph = self._graph
        for _ in range(self._max_attempts):
            edges: List[Edge] = []
            visited = {graph.sender_id}
            formats: Set[str] = set()
            current = graph.sender_id
            while current != graph.receiver_id:
                options = [
                    e
                    for e in graph.out_edges(current)
                    if e.target not in visited and e.format_name not in formats
                ]
                if not options:
                    break
                edge = self._rng.choice(options)
                edges.append(edge)
                visited.add(edge.target)
                formats.add(edge.format_name)
                current = edge.target
            if current == graph.receiver_id and edges:
                return edges
        return None
