"""Satisfaction functions and combination functions (Section 4.1).

The paper adopts the model of Richards et al.: every application-layer QoS
parameter ``x_i`` has a *satisfaction function* ``S_i(x_i)`` with

- range ``[0, 1]``, where 0 corresponds to the minimum acceptable value
  ``M`` and 1 to the ideal value ``I``;
- *monotone non-decreasing* shape over the domain (the paper requires
  "it must increase monotonically over the domain");
- arbitrary shape otherwise (Figure 1 shows a piecewise-linear example for
  frame rate).

Individual satisfactions combine into the total satisfaction via
Equation 1, the harmonic mean::

    S_tot = n / sum(1 / s_i)

which this module implements as :class:`HarmonicCombiner`; the weighted
extension cited as [29] is :class:`WeightedHarmonicCombiner`.  Alternative
combiners (minimum, geometric mean) are provided for the ablation
experiment E11.

All satisfaction functions validate monotonicity on construction (exactly
for the analytic shapes; by dense sampling for user-supplied tables) and
clip evaluation results into ``[0, 1]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro.errors import (
    MonotonicityError,
    SatisfactionDomainError,
    UnknownParameterError,
    ValidationError,
)

__all__ = [
    "SatisfactionFunction",
    "LinearSatisfaction",
    "PiecewiseLinearSatisfaction",
    "StepSatisfaction",
    "LogisticSatisfaction",
    "TableSatisfaction",
    "Combiner",
    "HarmonicCombiner",
    "WeightedHarmonicCombiner",
    "MinimumCombiner",
    "GeometricCombiner",
    "CombinedSatisfaction",
]

#: Values below this threshold are treated as "totally unacceptable" by the
#: harmonic combiner, which would otherwise divide by zero.  The paper's
#: model gives satisfaction 0 at the minimum acceptable value; a single
#: unacceptable parameter therefore forces the total to 0.
_EPSILON = 1e-12


class SatisfactionFunction:
    """Abstract base class for Richards-style satisfaction functions.

    Subclasses implement :meth:`_raw` over ``[minimum, ideal]``; this base
    class handles domain extension (values below the minimum give 0.0,
    values above the ideal give 1.0) and output clipping.

    Functions compare equal (and hash equal) when they are the same shape
    with the same defining parameters — the identity the plan cache keys
    on.  Subclasses with parameters beyond ``(minimum, ideal)`` contribute
    them through :meth:`_extra_key`.
    """

    def __init__(self, minimum: float, ideal: float) -> None:
        if ideal < minimum:
            raise SatisfactionDomainError(
                f"ideal value ({ideal}) must be >= minimum acceptable "
                f"value ({minimum})"
            )
        self._minimum = float(minimum)
        self._ideal = float(ideal)

    @property
    def minimum(self) -> float:
        """The minimum acceptable value ``M`` (satisfaction 0)."""
        return self._minimum

    @property
    def ideal(self) -> float:
        """The ideal value ``I`` (satisfaction 1)."""
        return self._ideal

    def __call__(self, value: float) -> float:
        """Satisfaction for ``value``, clipped into ``[0, 1]``."""
        if value < self._minimum:
            return 0.0
        if value >= self._ideal:
            return 1.0
        # At exactly the minimum the shape decides (0 for the continuous
        # shapes; a step function may already grant its first level there).
        raw = self._raw(value)
        return min(1.0, max(0.0, raw))

    def _raw(self, value: float) -> float:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Identity (plan-cache fingerprints)
    # ------------------------------------------------------------------
    def _extra_key(self) -> Tuple:
        """Defining parameters beyond ``(minimum, ideal)``; override."""
        return ()

    def cache_key(self) -> Tuple:
        """A stable, hashable tuple identifying this function exactly."""
        return (type(self).__name__, self._minimum, self._ideal) + self._extra_key()

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.cache_key() == other.cache_key()

    def __hash__(self) -> int:
        return hash(self.cache_key())

    # ------------------------------------------------------------------
    # Validation / inspection helpers
    # ------------------------------------------------------------------
    def validate_monotone(self, samples: int = 257) -> None:
        """Check monotone non-decreasing shape by dense sampling.

        Raises :class:`MonotonicityError` on a violation.  Analytic
        subclasses are monotone by construction; this is the safety net for
        user-supplied shapes (tables, logistic with odd parameters).
        """
        if samples < 2:
            raise ValidationError("need at least 2 samples to check monotonicity")
        if self._ideal == self._minimum:
            return
        step = (self._ideal - self._minimum) / (samples - 1)
        previous = self(self._minimum)
        for i in range(1, samples):
            value = self._minimum + i * step
            current = self(value)
            if current < previous - 1e-12:
                raise MonotonicityError(
                    f"satisfaction decreases near x={value:.6g}: "
                    f"{previous:.6g} -> {current:.6g}"
                )
            previous = current

    def series(self, start: float, stop: float, points: int) -> Sequence[Tuple[float, float]]:
        """Sampled ``(x, S(x))`` pairs, used by the Figure 1 bench."""
        if points < 2:
            raise ValidationError("need at least 2 points for a series")
        step = (stop - start) / (points - 1)
        return [(start + i * step, self(start + i * step)) for i in range(points)]


class LinearSatisfaction(SatisfactionFunction):
    """Straight line from (minimum, 0) to (ideal, 1).

    The Table 1 scenario uses ``LinearSatisfaction(0, 30)`` for frame rate,
    i.e. ``S(fps) = fps / 30``.
    """

    def __init__(self, minimum: float, ideal: float) -> None:
        super().__init__(minimum, ideal)
        if ideal == minimum:
            raise SatisfactionDomainError(
                "linear satisfaction needs ideal > minimum"
            )

    def _raw(self, value: float) -> float:
        return (value - self._minimum) / (self._ideal - self._minimum)


class PiecewiseLinearSatisfaction(SatisfactionFunction):
    """Monotone piecewise-linear interpolation through given knots.

    ``knots`` maps parameter values to satisfactions; the first knot must
    have satisfaction 0 (the minimum acceptable value) and the last 1 (the
    ideal value).  Figure 1's frame-rate function is an instance.
    """

    def __init__(self, knots: Sequence[Tuple[float, float]]) -> None:
        if len(knots) < 2:
            raise ValidationError("need at least two knots")
        xs = [x for x, _ in knots]
        ys = [y for _, y in knots]
        if sorted(xs) != xs or len(set(xs)) != len(xs):
            raise ValidationError("knot x-values must be strictly increasing")
        for a, b in zip(ys, ys[1:]):
            if b < a:
                raise MonotonicityError(
                    f"knot satisfactions must be non-decreasing ({a} -> {b})"
                )
        if not math.isclose(ys[0], 0.0, abs_tol=1e-12):
            raise ValidationError("first knot must have satisfaction 0")
        if not math.isclose(ys[-1], 1.0, abs_tol=1e-12):
            raise ValidationError("last knot must have satisfaction 1")
        super().__init__(xs[0], xs[-1])
        self._knots: Tuple[Tuple[float, float], ...] = tuple(
            (float(x), float(y)) for x, y in knots
        )

    @property
    def knots(self) -> Tuple[Tuple[float, float], ...]:
        return self._knots

    def _extra_key(self) -> Tuple:
        return (self._knots,)

    def _raw(self, value: float) -> float:
        for (x0, y0), (x1, y1) in zip(self._knots, self._knots[1:]):
            if x0 <= value <= x1:
                if x1 == x0:
                    return y1
                return y0 + (y1 - y0) * (value - x0) / (x1 - x0)
        # Unreachable: __call__ handles values outside [minimum, ideal].
        raise SatisfactionDomainError(f"value {value} outside knot range")


class StepSatisfaction(SatisfactionFunction):
    """Monotone staircase: satisfaction jumps at given thresholds.

    Useful for inherently discrete preferences ("stereo is fine, mono is
    barely acceptable").  ``steps`` maps threshold -> satisfaction reached
    at and above that threshold; satisfactions must be non-decreasing in
    threshold order and end at 1.
    """

    def __init__(self, steps: Sequence[Tuple[float, float]]) -> None:
        if not steps:
            raise ValidationError("need at least one step")
        xs = [x for x, _ in steps]
        ys = [y for _, y in steps]
        if sorted(xs) != xs or len(set(xs)) != len(xs):
            raise ValidationError("step thresholds must be strictly increasing")
        for a, b in zip(ys, ys[1:]):
            if b < a:
                raise MonotonicityError(
                    f"step satisfactions must be non-decreasing ({a} -> {b})"
                )
        if not math.isclose(ys[-1], 1.0, abs_tol=1e-12):
            raise ValidationError("final step must reach satisfaction 1")
        super().__init__(xs[0], xs[-1])
        self._steps = tuple((float(x), float(y)) for x, y in steps)

    def _extra_key(self) -> Tuple:
        return (self._steps,)

    def _raw(self, value: float) -> float:
        satisfaction = 0.0
        for threshold, level in self._steps:
            if value >= threshold:
                satisfaction = level
            else:
                break
        return satisfaction


class LogisticSatisfaction(SatisfactionFunction):
    """Smooth S-curve between the minimum and ideal values.

    A scaled logistic, renormalized so the endpoints hit exactly 0 and 1.
    ``steepness`` controls how sharp the transition is (higher = sharper);
    the midpoint sits halfway between minimum and ideal.
    """

    def __init__(self, minimum: float, ideal: float, steepness: float = 8.0) -> None:
        super().__init__(minimum, ideal)
        if ideal == minimum:
            raise SatisfactionDomainError("logistic satisfaction needs ideal > minimum")
        if steepness <= 0:
            raise ValidationError("steepness must be positive")
        self._steepness = float(steepness)
        # Renormalization constants so S(minimum)=0 and S(ideal)=1 exactly.
        low = self._logistic(0.0)
        high = self._logistic(1.0)
        self._offset = low
        self._scale = high - low

    def _extra_key(self) -> Tuple:
        return (self._steepness,)

    def _logistic(self, t: float) -> float:
        return 1.0 / (1.0 + math.exp(-self._steepness * (t - 0.5)))

    def _raw(self, value: float) -> float:
        t = (value - self._minimum) / (self._ideal - self._minimum)
        return (self._logistic(t) - self._offset) / self._scale


class TableSatisfaction(SatisfactionFunction):
    """Satisfaction given by an explicit lookup table with interpolation.

    A thin convenience wrapper over :class:`PiecewiseLinearSatisfaction`
    accepting a mapping (e.g. parsed from a user-profile document).
    """

    def __init__(self, table: Mapping[float, float]) -> None:
        knots = sorted((float(x), float(y)) for x, y in table.items())
        self._inner = PiecewiseLinearSatisfaction(knots)
        super().__init__(self._inner.minimum, self._inner.ideal)

    def _extra_key(self) -> Tuple:
        return (self._inner.knots,)

    def _raw(self, value: float) -> float:
        return self._inner(value)


# ----------------------------------------------------------------------
# Combination functions (Equation 1 and friends)
# ----------------------------------------------------------------------


class Combiner:
    """Abstract combination function ``f_comb``: many ``s_i`` -> ``S_tot``."""

    name: str = "abstract"

    def combine(self, satisfactions: Sequence[float]) -> float:
        raise NotImplementedError

    def cache_key(self) -> Tuple:
        """A stable, hashable tuple identifying this combiner exactly."""
        return (type(self).__name__,)

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.cache_key() == other.cache_key()

    def __hash__(self) -> int:
        return hash(self.cache_key())

    def __call__(self, satisfactions: Sequence[float]) -> float:
        if not satisfactions:
            raise ValidationError("cannot combine an empty satisfaction vector")
        for s in satisfactions:
            if not 0.0 <= s <= 1.0:
                raise ValidationError(
                    f"individual satisfactions must lie in [0, 1], got {s}"
                )
        return self.combine(satisfactions)


class HarmonicCombiner(Combiner):
    """Equation 1 of the paper: ``S_tot = n / sum(1 / s_i)``.

    The harmonic mean penalizes imbalance: one near-zero parameter drags the
    total toward zero no matter how good the others are, matching the
    intuition that a perfect picture with unacceptable audio is still an
    unacceptable session.
    """

    name = "harmonic"

    def combine(self, satisfactions: Sequence[float]) -> float:
        if any(s <= _EPSILON for s in satisfactions):
            return 0.0
        return len(satisfactions) / sum(1.0 / s for s in satisfactions)


class WeightedHarmonicCombiner(Combiner):
    """The weighted extension of Equation 1 cited as reference [29].

    ``S_tot = sum(w_i) / sum(w_i / s_i)`` — with equal weights this reduces
    exactly to :class:`HarmonicCombiner`.
    """

    name = "weighted-harmonic"

    def __init__(self, weights: Sequence[float]) -> None:
        if not weights:
            raise ValidationError("need at least one weight")
        if any(w < 0 for w in weights):
            raise ValidationError("weights must be non-negative")
        if all(w == 0 for w in weights):
            raise ValidationError("at least one weight must be positive")
        self._weights = tuple(float(w) for w in weights)

    @property
    def weights(self) -> Tuple[float, ...]:
        return self._weights

    def cache_key(self) -> Tuple:
        return (type(self).__name__, self._weights)

    def combine(self, satisfactions: Sequence[float]) -> float:
        if len(satisfactions) != len(self._weights):
            raise ValidationError(
                f"expected {len(self._weights)} satisfactions, "
                f"got {len(satisfactions)}"
            )
        num = 0.0
        den = 0.0
        for w, s in zip(self._weights, satisfactions):
            if w == 0.0:
                continue
            if s <= _EPSILON:
                return 0.0
            num += w
            den += w / s
        return num / den


class MinimumCombiner(Combiner):
    """Worst-case combiner: ``S_tot = min(s_i)`` (ablation E11)."""

    name = "minimum"

    def combine(self, satisfactions: Sequence[float]) -> float:
        return min(satisfactions)


class GeometricCombiner(Combiner):
    """Geometric-mean combiner: ``S_tot = (prod s_i)^(1/n)`` (ablation E11)."""

    name = "geometric"

    def combine(self, satisfactions: Sequence[float]) -> float:
        if any(s <= _EPSILON for s in satisfactions):
            return 0.0
        log_sum = sum(math.log(s) for s in satisfactions)
        return math.exp(log_sum / len(satisfactions))


@dataclass
class CombinedSatisfaction:
    """A bundle of per-parameter satisfaction functions plus a combiner.

    This is the object the selection algorithm evaluates: given a parameter
    configuration (name -> value mapping) it computes each ``S_i(x_i)`` and
    combines them.  Parameters without a registered satisfaction function
    are ignored — the user simply has no preference about them.
    """

    functions: Dict[str, SatisfactionFunction]
    combiner: Combiner

    def __post_init__(self) -> None:
        if not self.functions:
            raise ValidationError(
                "CombinedSatisfaction needs at least one satisfaction function"
            )

    def parameter_names(self) -> Sequence[str]:
        """Names of the parameters the user cares about, in insertion
        order."""
        return list(self.functions)

    def cache_key(self) -> Tuple:
        """A stable, hashable tuple identifying this bundle exactly.

        Function order participates (weighted combiners zip weights with
        the insertion order), so two bundles with the same functions in a
        different order key differently — as they must, since they can
        evaluate differently.
        """
        return (
            tuple((name, fn.cache_key()) for name, fn in self.functions.items()),
            self.combiner.cache_key(),
        )

    def individual(self, name: str, value: float) -> float:
        """Satisfaction for one parameter value."""
        try:
            fn = self.functions[name]
        except KeyError:
            raise UnknownParameterError(name) from None
        return fn(value)

    def evaluate(self, values: Mapping[str, float]) -> float:
        """Total satisfaction for a configuration.

        Every parameter with a registered satisfaction function must be
        present in ``values``; extra entries in ``values`` are ignored.
        """
        satisfactions = []
        for name, fn in self.functions.items():
            if name not in values:
                raise UnknownParameterError(name)
            satisfactions.append(fn(values[name]))
        return self.combiner(satisfactions)
