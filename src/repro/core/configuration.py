"""Concrete QoS parameter configurations.

A :class:`Configuration` is an immutable assignment of values to QoS
parameter names — "the configuration for each trans-coding service" the
selection algorithm chooses (Section 4.4).  Configurations know how to

- compute the bandwidth they require in a given media format (the left-hand
  side of Equation 2);
- compare themselves component-wise (quality *dominance*), which encodes the
  paper's core assumption that transcoders can only reduce quality;
- cap themselves against another configuration or against per-parameter
  limits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, Mapping, Optional

from repro.core.parameters import (
    AUDIO_QUALITY,
    COLOR_DEPTH,
    FRAME_RATE,
    RESOLUTION,
)
from repro.errors import UnknownParameterError, ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (formats imports us)
    from repro.formats.format import MediaFormat

__all__ = ["Configuration"]


class Configuration(Mapping[str, float]):
    """An immutable mapping of QoS parameter names to values."""

    __slots__ = ("_values",)

    def __init__(self, values: Mapping[str, float]) -> None:
        if not values:
            raise ValidationError("a configuration must assign at least one parameter")
        clean: Dict[str, float] = {}
        for name, value in values.items():
            fvalue = float(value)
            if fvalue < 0:
                raise ValidationError(
                    f"parameter {name!r} must be non-negative, got {fvalue}"
                )
            clean[name] = fvalue
        self._values = clean

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> float:
        try:
            return self._values[name]
        except KeyError:
            raise UnknownParameterError(name) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Configuration):
            return self._values == other._values
        if isinstance(other, Mapping):
            return dict(self._values) == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._values.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._values.items()))
        return f"Configuration({inner})"

    # ------------------------------------------------------------------
    # Quality ordering
    # ------------------------------------------------------------------
    def dominates(self, other: "Configuration") -> bool:
        """True when every shared parameter of ``self`` is >= ``other``'s.

        Parameters present in only one configuration are ignored.  This is
        the partial order in which transcoders move monotonically downward.
        """
        return all(
            self._values[name] >= other._values[name]
            for name in self._values
            if name in other._values
        )

    def capped_by(self, limits: Mapping[str, float]) -> "Configuration":
        """A copy with every parameter reduced to at most ``limits[name]``.

        Parameters without an entry in ``limits`` pass through unchanged.
        This implements quality monotonicity: a transcoder's output is the
        input configuration capped by the transcoder's capabilities.
        """
        return Configuration(
            {
                name: min(value, limits[name]) if name in limits else value
                for name, value in self._values.items()
            }
        )

    def with_value(self, name: str, value: float) -> "Configuration":
        """A copy with one parameter replaced (added if absent)."""
        merged = dict(self._values)
        merged[name] = float(value)
        return Configuration(merged)

    # ------------------------------------------------------------------
    # Bandwidth (Equation 2, left-hand side)
    # ------------------------------------------------------------------
    def required_bandwidth(self, fmt: "MediaFormat") -> float:
        """Bits/second needed to carry this configuration in ``fmt``.

        Missing parameters default to 0, so a pure-audio configuration in a
        video format contributes only its audio term.
        """
        return fmt.required_bandwidth(
            frame_rate=self._values.get(FRAME_RATE, 0.0),
            resolution_pixels=self._values.get(RESOLUTION, 0.0),
            color_depth=self._values.get(COLOR_DEPTH, 0.0),
            audio_kbps=self._values.get(AUDIO_QUALITY, 0.0),
        )

    def fits_bandwidth(self, fmt: "MediaFormat", bandwidth_bps: float) -> bool:
        """Whether this configuration satisfies Equation 2 for a link.

        A tiny relative tolerance absorbs floating-point noise from the
        bandwidth inversion used by the optimizer.
        """
        required = self.required_bandwidth(fmt)
        return required <= bandwidth_bps * (1.0 + 1e-9)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    def get_value(self, name: str, default: Optional[float] = None) -> Optional[float]:
        """Like :meth:`dict.get` but spelled out for readability."""
        return self._values.get(name, default)

    def as_dict(self) -> Dict[str, float]:
        """A plain mutable copy of the assignment."""
        return dict(self._values)
