"""Application-layer QoS parameters and their value domains.

Section 4.1 of the paper models each application-level QoS parameter as a
variable ``x_i`` ranging over "the set of all possible values for that QoS
parameter".  This module gives those variables a concrete shape:

- a :class:`Parameter` couples a name and unit with a value *domain*;
- domains are either :class:`ContinuousDomain` (a closed real interval) or
  :class:`DiscreteDomain` (a finite ordered set, e.g. supported color
  depths);
- a :class:`ParameterSet` is the ordered collection of parameters a
  scenario optimizes over (frame rate, resolution, color depth, audio
  quality, ... — the list in Section 4.1).

Domains know how to *clamp* a requested value to the nearest feasible value
not exceeding it, which is the primitive the configuration optimizer uses to
respect both service capabilities and quality monotonicity ("transcoders can
only reduce quality", Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import UnknownParameterError, ValidationError

__all__ = [
    "ContinuousDomain",
    "DiscreteDomain",
    "Domain",
    "Parameter",
    "ParameterSet",
    "standard_parameters",
    "FRAME_RATE",
    "RESOLUTION",
    "COLOR_DEPTH",
    "AUDIO_QUALITY",
]


@dataclass(frozen=True)
class ContinuousDomain:
    """A closed real interval ``[low, high]`` of permitted values."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValidationError(
                f"continuous domain low ({self.low}) exceeds high ({self.high})"
            )

    @property
    def minimum(self) -> float:
        return self.low

    @property
    def maximum(self) -> float:
        return self.high

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def clamp_down(self, value: float) -> Optional[float]:
        """Largest domain value ``<= value``, or ``None`` if none exists."""
        if value < self.low:
            return None
        return min(value, self.high)

    def sample(self, count: int) -> List[float]:
        """``count`` evenly spaced values covering the interval.

        Used by the grid-search fallback of the optimizer; with ``count == 1``
        it returns the maximum (monotone satisfaction makes larger better).
        """
        if count < 1:
            raise ValidationError("sample count must be >= 1")
        if count == 1 or self.low == self.high:
            return [self.high]
        step = (self.high - self.low) / (count - 1)
        return [self.low + i * step for i in range(count)]


@dataclass(frozen=True)
class DiscreteDomain:
    """A finite, strictly increasing set of permitted values."""

    values: Tuple[float, ...]

    def __init__(self, values: Iterable[float]) -> None:
        ordered = tuple(sorted(set(float(v) for v in values)))
        if not ordered:
            raise ValidationError("discrete domain must contain at least one value")
        object.__setattr__(self, "values", ordered)

    @property
    def minimum(self) -> float:
        return self.values[0]

    @property
    def maximum(self) -> float:
        return self.values[-1]

    def contains(self, value: float) -> bool:
        return value in self.values

    def clamp_down(self, value: float) -> Optional[float]:
        """Largest domain value ``<= value``, or ``None`` if none exists."""
        candidate: Optional[float] = None
        for v in self.values:
            if v <= value:
                candidate = v
            else:
                break
        return candidate

    def sample(self, count: int) -> List[float]:
        """Up to ``count`` values spread across the domain (always includes
        the extremes)."""
        if count < 1:
            raise ValidationError("sample count must be >= 1")
        if count >= len(self.values):
            return list(self.values)
        if count == 1:
            return [self.maximum]
        last = len(self.values) - 1
        picked = sorted({round(i * last / (count - 1)) for i in range(count)})
        return [self.values[i] for i in picked]


Domain = Union[ContinuousDomain, DiscreteDomain]


@dataclass(frozen=True)
class Parameter:
    """One application-layer QoS parameter (a Section 4.1 ``x_i``)."""

    name: str
    unit: str
    domain: Domain
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("parameter name must be non-empty")

    @property
    def minimum(self) -> float:
        return self.domain.minimum

    @property
    def maximum(self) -> float:
        return self.domain.maximum

    def clamp_down(self, value: float) -> Optional[float]:
        """Largest feasible value not exceeding ``value`` (see module doc)."""
        return self.domain.clamp_down(value)

    def __str__(self) -> str:
        return f"{self.name} [{self.unit}]"


class ParameterSet:
    """The ordered collection of QoS parameters a scenario optimizes over."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self._parameters: List[Parameter] = []
        seen = set()
        for param in parameters:
            if param.name in seen:
                raise ValidationError(f"duplicate parameter name: {param.name!r}")
            seen.add(param.name)
            self._parameters.append(param)
        if not self._parameters:
            raise ValidationError("a ParameterSet must contain at least one parameter")
        self._by_name = {p.name: p for p in self._parameters}

    def get(self, name: str) -> Parameter:
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownParameterError(name) from None

    def __getitem__(self, name: str) -> Parameter:
        return self.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._parameters)

    def __len__(self) -> int:
        return len(self._parameters)

    def names(self) -> List[str]:
        return [p.name for p in self._parameters]

    def subset(self, names: Sequence[str]) -> "ParameterSet":
        """A new set containing only the named parameters, in this set's
        order."""
        wanted = set(names)
        missing = wanted - set(self._by_name)
        if missing:
            raise UnknownParameterError(sorted(missing)[0])
        return ParameterSet(p for p in self._parameters if p.name in wanted)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParameterSet({self.names()})"


# ----------------------------------------------------------------------
# Standard parameters (the Section 4.1 examples)
# ----------------------------------------------------------------------

#: Canonical name of the video frame-rate parameter (frames / second).
FRAME_RATE = "frame_rate"
#: Canonical name of the video resolution parameter (total pixels).
RESOLUTION = "resolution"
#: Canonical name of the color-depth parameter (bits / pixel).
COLOR_DEPTH = "color_depth"
#: Canonical name of the audio-quality parameter (kbit / second).
AUDIO_QUALITY = "audio_quality"


def standard_parameters() -> ParameterSet:
    """The paper's running examples: frame rate, resolution, color depth,
    and audio quality, with realistic domains."""
    return ParameterSet(
        [
            Parameter(
                FRAME_RATE,
                "fps",
                ContinuousDomain(0.0, 60.0),
                "video frames per second",
            ),
            Parameter(
                RESOLUTION,
                "pixels",
                DiscreteDomain(
                    [
                        128 * 96,     # sub-QCIF
                        176 * 144,    # QCIF
                        320 * 240,    # QVGA
                        352 * 288,    # CIF
                        640 * 480,    # VGA
                        704 * 576,    # 4CIF
                        1280 * 720,   # HD720
                    ]
                ),
                "total pixels per frame",
            ),
            Parameter(
                COLOR_DEPTH,
                "bits",
                DiscreteDomain([1, 2, 4, 8, 16, 24]),
                "bits per pixel",
            ),
            Parameter(
                AUDIO_QUALITY,
                "kbps",
                DiscreteDomain([0, 8, 16, 32, 64, 128, 256, 1411]),
                "audio bitrate (1411 = CD quality PCM)",
            ),
        ]
    )
