"""Grid-search reference optimizer.

The production :class:`~repro.core.optimizer.ConfigurationOptimizer` uses
an analytic three-phase strategy (free reductions → quality-ray bisection →
greedy polish).  This module provides the brute-force alternative — an
exhaustive search over a sampled grid of the feasible region — with the
same ``optimize()`` contract.  It exists for three reasons:

1. **cross-validation**: the property suite compares the analytic
   optimizer against the grid on random constraint sets;
2. **ablation**: the E14 bench quantifies the speed/quality trade-off;
3. **escape hatch**: exotic satisfaction shapes (where the proportional
   quality ray is far from optimal) can plug the grid optimizer into the
   selector via the shared interface.

Grid resolution is per-parameter: discrete domains enumerate every
feasible value; continuous domains are sampled at ``grid_points`` evenly
spaced values (plus the exact bandwidth-fit value for each parameter,
holding the others at their bound — which recovers the closed-form answer
in the single-parameter case).
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Sequence

from repro.core.configuration import Configuration
from repro.core.optimizer import (
    ConfigurationOptimizer,
    OptimizationConstraints,
    OptimizedChoice,
)
from repro.core.parameters import ContinuousDomain, ParameterSet
from repro.core.satisfaction import CombinedSatisfaction
from repro.errors import UnknownParameterError, ValidationError

__all__ = ["GridSearchOptimizer"]


class GridSearchOptimizer(ConfigurationOptimizer):
    """Exhaustive search over a sampled feasible grid.

    Shares bounds handling (and :meth:`evaluate`) with the analytic
    optimizer; only the search strategy differs.
    """

    def __init__(
        self,
        parameters: ParameterSet,
        satisfaction: CombinedSatisfaction,
        degrade_order: Optional[Sequence[str]] = None,
        grid_points: int = 17,
    ) -> None:
        super().__init__(parameters, satisfaction, degrade_order)
        if grid_points < 2:
            raise ValidationError("grid needs at least 2 points per axis")
        self._grid_points = grid_points

    def optimize(self, constraints: OptimizationConstraints) -> Optional[OptimizedChoice]:
        upper = self._upper_bounds(constraints)
        if upper is None:
            return None
        fmt, bandwidth = constraints.fmt, constraints.bandwidth_bps

        ideal = Configuration(upper)
        if ideal.fits_bandwidth(fmt, bandwidth):
            return self._choice(ideal, fmt)

        lower = self._lower_bounds(upper)
        axes = self._axes(upper, lower, fmt, bandwidth)
        best: Optional[Configuration] = None
        best_score = -1.0
        for values in itertools.product(*axes.values()):
            config = Configuration(dict(zip(axes.keys(), values)))
            if not config.fits_bandwidth(fmt, bandwidth):
                continue
            score = self.evaluate(config)
            if score > best_score:
                best, best_score = config, score
        if best is None:
            return None
        return self._choice(best, fmt)

    # ------------------------------------------------------------------
    def _axes(
        self,
        upper: Dict[str, float],
        lower: Dict[str, float],
        fmt,
        bandwidth: float,
    ) -> Dict[str, List[float]]:
        """Candidate values per parameter.

        Each axis gets its domain samples restricted to [lower, upper],
        plus the exact single-parameter bandwidth fit evaluated at the
        configuration where every *other* parameter sits at its bound —
        the corner that matters in the common one-free-parameter case.
        """
        axes: Dict[str, List[float]] = {}
        for name, bound in upper.items():
            if name not in self._parameters:
                raise UnknownParameterError(name)
            domain = self._parameters[name].domain
            values = {
                v
                for v in domain.sample(self._grid_points)
                if lower[name] <= v <= bound
            }
            values.add(bound)
            values.add(lower[name])
            axes[name] = sorted(values)

        # Enrich continuous axes with the exact bandwidth fit at every
        # combination of the *other* axes' values (capped for tractability)
        # — this recovers the closed-form corners a uniform grid misses,
        # e.g. "highest frame rate at full resolution but low depth".
        combo_cap = 512
        for name, bound in upper.items():
            domain = self._parameters[name].domain
            if not isinstance(domain, ContinuousDomain):
                continue
            other_names = [n for n in axes if n != name]
            other_axes = [axes[n] for n in other_names]
            combos = 1
            for axis in other_axes:
                combos *= len(axis)
            if combos > combo_cap:
                continue  # fall back to the plain samples on huge grids
            extra: List[float] = []
            for combo in itertools.product(*other_axes):
                probe = Configuration(
                    {name: 1.0, **dict(zip(other_names, combo))}
                )
                fit = self._fit_single(probe, name, fmt, bandwidth)
                if not math.isinf(fit) and lower[name] <= fit <= bound:
                    extra.append(fit)
            if extra:
                axes[name] = sorted(set(axes[name]) | set(extra))
        return axes
