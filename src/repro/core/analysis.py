"""Structural analysis of adaptation graphs.

Operators deploying the framework want to know *why* a graph behaves the
way it does: which formats do the heavy lifting, which services can never
carry traffic, where the bandwidth bottlenecks sit, how rich the path
diversity is.  :class:`GraphAnalysis` computes those views; the examples
and benches print them, and capacity-planning tests assert on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.graph import AdaptationGraph, Edge
from repro.services.catalog import service_sort_key

__all__ = ["DegreeStats", "GraphAnalysis"]


@dataclass(frozen=True)
class DegreeStats:
    """Degree summary over the graph's transcoder vertices."""

    min_in: int
    max_in: int
    min_out: int
    max_out: int
    mean_in: float
    mean_out: float


class GraphAnalysis:
    """Read-only analytics over one adaptation graph."""

    def __init__(self, graph: AdaptationGraph) -> None:
        self._graph = graph

    # ------------------------------------------------------------------
    # Formats
    # ------------------------------------------------------------------
    def format_usage(self) -> Dict[str, int]:
        """How many edges carry each format, descending."""
        counts: Dict[str, int] = {}
        for edge in self._graph.edges():
            counts[edge.format_name] = counts.get(edge.format_name, 0) + 1
        return dict(
            sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        )

    def reachable_formats(self) -> List[str]:
        """Formats that can appear on some sender-originating edge chain.

        Flood outward from the sender, collecting edge formats; a format
        never collected cannot occur in any delivery.
        """
        graph = self._graph
        seen_vertices = {graph.sender_id}
        seen_formats: set = set()
        frontier = [graph.sender_id]
        while frontier:
            current = frontier.pop()
            for edge in graph.out_edges(current):
                seen_formats.add(edge.format_name)
                if edge.target not in seen_vertices:
                    seen_vertices.add(edge.target)
                    frontier.append(edge.target)
        return sorted(seen_formats)

    # ------------------------------------------------------------------
    # Services
    # ------------------------------------------------------------------
    def dead_services(self) -> List[str]:
        """Transcoders that can never sit on a sender→receiver chain."""
        graph = self._graph
        alive = graph.reachable_from_sender() & graph.co_reachable_to_receiver()
        return [
            v.service_id
            for v in graph.vertices()
            if v.service.is_transcoder and v.service_id not in alive
        ]

    def degree_stats(self) -> Optional[DegreeStats]:
        """In/out-degree summary over transcoders (None when there are
        none)."""
        graph = self._graph
        ins: List[int] = []
        outs: List[int] = []
        for vertex in graph.vertices():
            if not vertex.service.is_transcoder:
                continue
            ins.append(len(graph.in_edges(vertex.service_id)))
            outs.append(len(graph.out_edges(vertex.service_id)))
        if not ins:
            return None
        return DegreeStats(
            min_in=min(ins),
            max_in=max(ins),
            min_out=min(outs),
            max_out=max(outs),
            mean_in=sum(ins) / len(ins),
            mean_out=sum(outs) / len(outs),
        )

    # ------------------------------------------------------------------
    # Paths and bottlenecks
    # ------------------------------------------------------------------
    def path_count(self, max_paths: int = 100_000) -> int:
        """Number of distinct-format sender→receiver paths (bounded)."""
        return sum(1 for _ in self._graph.enumerate_paths(max_paths=max_paths))

    def widest_chain(self) -> Optional[Tuple[List[Edge], float]]:
        """The chain with the best bottleneck bandwidth, and that
        bottleneck.

        A max-bottleneck search at the *chain* level (not the raw network):
        the answer bounds how much quality any selection can ever push
        through this graph.
        """
        best: Optional[Tuple[List[Edge], float]] = None
        for path in self._graph.enumerate_paths(max_paths=100_000):
            bottleneck = min(edge.bandwidth_bps for edge in path)
            if best is None or bottleneck > best[1]:
                best = (path, bottleneck)
        return best

    def bottleneck_edges(self, top: int = 5) -> List[Edge]:
        """The lowest-bandwidth edges that sit on some usable chain."""
        graph = self._graph
        alive = graph.reachable_from_sender() & graph.co_reachable_to_receiver()
        usable = [
            edge
            for edge in graph.edges()
            if edge.source in alive and edge.target in alive
        ]
        usable.sort(key=lambda e: (e.bandwidth_bps, service_sort_key(e.source)))
        return usable[:top]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """A human-readable report of all the above."""
        graph = self._graph
        lines = [
            f"vertices:        {len(graph)} "
            f"({sum(1 for v in graph.vertices() if v.service.is_transcoder)} transcoders)",
            f"edges:           {graph.edge_count()}",
            f"paths:           {self.path_count()} (distinct-format)",
        ]
        stats = self.degree_stats()
        if stats is not None:
            lines.append(
                f"degree:          in {stats.min_in}..{stats.max_in} "
                f"(mean {stats.mean_in:.1f}), out {stats.min_out}.."
                f"{stats.max_out} (mean {stats.mean_out:.1f})"
            )
        dead = self.dead_services()
        lines.append(f"dead services:   {', '.join(dead) if dead else '(none)'}")
        usage = self.format_usage()
        busiest = ", ".join(f"{fmt} x{count}" for fmt, count in list(usage.items())[:5])
        lines.append(f"busiest formats: {busiest}")
        widest = self.widest_chain()
        if widest is not None:
            path, bottleneck = widest
            chain = " -> ".join([path[0].source] + [e.target for e in path])
            lines.append(
                f"widest chain:    {chain} (bottleneck "
                f"{bottleneck / 1e6:.2f} Mbit/s)"
            )
        return "\n".join(lines)
