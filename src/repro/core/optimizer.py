"""Per-service configuration choice: the ``Optimize(...)`` step of Figure 4.

For every candidate trans-coding service the selection algorithm "selects
the QoS parameter values x_i that optimize the satisfaction function in
Equa. 2, subject only to the constraint [of the] remaining user's budget and
the bandwidth availability that connects Ti to Tprev" (Section 4.4).

The feasible region for a candidate reached over edge ``(Tprev → Ti)`` in
format ``f`` is:

- **quality monotonicity** — every parameter is bounded above by the value
  the upstream service achieved (transcoders only reduce quality);
- **service capability** — every parameter is bounded above by the
  service's advertised output cap;
- **parameter domains** — values must be feasible (discrete sets snap down);
- **bandwidth** (Equation 2) — ``bandwidth_requirement(x_1..x_n) <=
  Bandwidth_AvailableBetween(Ti, Tprev)``, evaluated in the edge format's
  compression model.

(The budget constraint is configuration-independent, so the *selector*
checks it; see :mod:`repro.core.selection`.)

Because every satisfaction function is monotone non-decreasing and the
bandwidth requirement is monotone increasing in every parameter, the
unconstrained optimum is simply "everything at its upper bound"; only when
that violates Equation 2 is there a real trade-off.  The paper does not
specify how `Optimize` resolves it; we implement a deterministic four-phase
strategy (documented in DESIGN.md):

1. **Free reductions** — parameters the user has *no* satisfaction function
   for are reduced first (toward their domain minimum, exact single-
   parameter inversion), in the user's degrade-first policy order: they
   cost bandwidth but buy no satisfaction.
2. **Quality-ray bisection** — preference parameters are reduced jointly
   along the ray from their domain minima to their upper bounds; bandwidth
   is monotone along the ray, so the largest feasible ray position is found
   by bisection.
3. **Greedy polish** — leftover bandwidth (from discrete snapping) is spent
   by raising parameters one at a time, *last-to-degrade first*, using
   exact single-parameter inversion.
4. **Discrete exchange** — bounded hill-climbing that steps discrete
   preference parameters up past large domain gaps, re-fitting the
   continuous ones; catches the corners a proportional ray cannot reach
   (cross-validated against grid search in the tests and bench E14).

For a single preference parameter (the paper's worked example) this
degenerates to the exact closed-form inversion, e.g. the largest frame rate
the link can carry.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.configuration import Configuration
from repro.core.parameters import DiscreteDomain, ParameterSet
from repro.core.satisfaction import CombinedSatisfaction
from repro.errors import UnknownParameterError, ValidationError
from repro.formats.format import MediaFormat

__all__ = [
    "OptimizationConstraints",
    "OptimizedChoice",
    "OptimizeMemoStats",
    "OptimizeMemo",
    "ConfigurationOptimizer",
]

#: Bisection iterations for the quality-ray phase; 2^-60 of the parameter
#: range is far below any displayed precision.
_BISECTION_STEPS = 60

#: Relative tolerance when comparing a requirement against a bandwidth.
_FIT_SLACK = 1.0 + 1e-9


@dataclass(frozen=True)
class OptimizationConstraints:
    """The feasible region for one candidate service.

    ``upstream`` is the configuration achieved by the parent service (the
    quality ceiling); ``caps`` are the candidate's output capabilities;
    ``fmt`` and ``bandwidth_bps`` describe the edge the stream must cross.
    """

    upstream: Configuration
    caps: Mapping[str, float]
    fmt: MediaFormat
    bandwidth_bps: float


@dataclass(frozen=True)
class OptimizedChoice:
    """The optimizer's answer for one candidate."""

    configuration: Configuration
    satisfaction: float
    required_bandwidth_bps: float


@dataclass(frozen=True)
class OptimizeMemoStats:
    """One consistent snapshot of the optimize-memo counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the memo (0.0 when none ran)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class OptimizeMemo:
    """A bounded, thread-safe memo of :meth:`ConfigurationOptimizer.optimize`
    results.

    ``optimize()`` is a pure function of the constraint tuple *and* of the
    optimizer's own identity (parameter domains, satisfaction functions,
    degrade order), so entries are keyed by an interned fingerprint over
    both.  That makes one memo safely shareable across every selector run
    of a :class:`~repro.planner.batch.BatchPlanner`: two sessions for
    different users never collide (different context fingerprints), while
    sessions over the same infrastructure reuse each other's solved
    relaxations — including negative results (``None`` — "this edge cannot
    carry the stream" — is memoized too).

    The LRU bound keeps memory flat under open-ended traffic; eviction
    only costs recomputation, never correctness.
    """

    _MISS = object()

    def __init__(self, max_entries: int = 65536) -> None:
        if max_entries < 1:
            raise ValidationError("OptimizeMemo needs max_entries >= 1")
        self._max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, Optional[OptimizedChoice]]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def max_entries(self) -> int:
        return self._max_entries

    def lookup(self, key: Tuple) -> object:
        """The memoized result for ``key``, or the :attr:`_MISS` sentinel.

        The sentinel (exposed via :meth:`is_miss`) distinguishes "never
        solved" from the legitimately memoized ``None`` result.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
            self._misses += 1
            return self._MISS

    @classmethod
    def is_miss(cls, value: object) -> bool:
        return value is cls._MISS

    def store(self, key: Tuple, choice: Optional[OptimizedChoice]) -> None:
        with self._lock:
            self._entries[key] = choice
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def stats(self) -> OptimizeMemoStats:
        with self._lock:
            return OptimizeMemoStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        snapshot = self.stats
        return (
            f"OptimizeMemo(entries={snapshot.entries}/{self._max_entries}, "
            f"hits={snapshot.hits}, misses={snapshot.misses})"
        )


class ConfigurationOptimizer:
    """Maximizes user satisfaction inside an :class:`OptimizationConstraints`
    region."""

    def __init__(
        self,
        parameters: ParameterSet,
        satisfaction: CombinedSatisfaction,
        degrade_order: Optional[Sequence[str]] = None,
        memo: Optional[OptimizeMemo] = None,
    ) -> None:
        self._parameters = parameters
        self._satisfaction = satisfaction
        #: First-to-degrade-first ordering over parameter names; parameters
        #: not listed are degraded before listed ones (no stated preference
        #: means no objection).
        self._degrade_order = list(degrade_order or [])
        self._memo = memo
        self._context_key: Optional[Tuple] = None
        #: Per-instance counters (one optimizer serves one selector run, so
        #: these need no locking; the shared memo keeps its own).
        self.optimize_calls = 0
        self.memo_hits = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def optimize(self, constraints: OptimizationConstraints) -> Optional[OptimizedChoice]:
        """Best feasible configuration, or ``None`` when nothing fits.

        ``None`` means even every parameter at its domain minimum exceeds
        the link bandwidth — the edge is unusable for this stream.  With a
        memo attached, a constraint tuple solved before (by *any* optimizer
        sharing the memo and this optimizer's context fingerprint) returns
        the stored answer without re-running the four phases.
        """
        self.optimize_calls += 1
        if self._memo is None:
            return self._optimize_fresh(constraints)
        key = self._memo_key(constraints)
        cached = self._memo.lookup(key)
        if not OptimizeMemo.is_miss(cached):
            self.memo_hits += 1
            return cached  # type: ignore[return-value]
        choice = self._optimize_fresh(constraints)
        self._memo.store(key, choice)
        return choice

    def _optimize_fresh(
        self, constraints: OptimizationConstraints
    ) -> Optional[OptimizedChoice]:
        upper = self._upper_bounds(constraints)
        if upper is None:
            return None
        fmt, bandwidth = constraints.fmt, constraints.bandwidth_bps

        config = Configuration(upper)
        if config.fits_bandwidth(fmt, bandwidth):
            return self._choice(config, fmt)

        lower = self._lower_bounds(upper)
        floor_config = Configuration(lower)
        if not floor_config.fits_bandwidth(fmt, bandwidth):
            return None

        config = self._reduce_free_parameters(upper, lower, fmt, bandwidth)
        if not config.fits_bandwidth(fmt, bandwidth):
            config = self._ray_bisection(config, lower, fmt, bandwidth)
        config = self._polish(config, upper, fmt, bandwidth)
        config = self._discrete_exchange(config, upper, lower, fmt, bandwidth)
        return self._choice(config, fmt)

    def evaluate(self, configuration: Configuration) -> float:
        """Total satisfaction of a configuration (ignores constraints).

        Parameters the user has preferences for but that are absent from
        the configuration are skipped — the user cannot judge a dimension
        the stream does not have.  With no judgeable dimension at all the
        satisfaction is 0.
        """
        values = []
        for name in self._satisfaction.parameter_names():
            if name in configuration:
                values.append(self._satisfaction.individual(name, configuration[name]))
        if not values:
            return 0.0
        return self._satisfaction.combiner(values)

    # ------------------------------------------------------------------
    # Memo fingerprints
    # ------------------------------------------------------------------
    def _memo_key(self, constraints: OptimizationConstraints) -> Tuple:
        """An interned fingerprint of (optimizer identity, constraints).

        The context part is computed once per optimizer and reused for
        every call — the expensive satisfaction/domain keys are never
        rebuilt on the hot path.
        """
        if self._context_key is None:
            self._context_key = self._build_context_key()
        return (
            self._context_key,
            tuple(sorted(constraints.upstream.items())),
            tuple(sorted(constraints.caps.items())),
            constraints.fmt.cache_key(),
            constraints.bandwidth_bps,
        )

    def _build_context_key(self) -> Tuple:
        parameter_key = []
        for name in self._parameters.names():
            domain = self._parameters[name].domain
            if isinstance(domain, DiscreteDomain):
                parameter_key.append((name, "discrete", tuple(domain.values)))
            else:
                parameter_key.append(
                    (name, "continuous", domain.minimum, domain.maximum)
                )
        return (
            tuple(parameter_key),
            self._satisfaction.cache_key(),
            tuple(self._degrade_order),
        )

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------
    def _upper_bounds(
        self, constraints: OptimizationConstraints
    ) -> Optional[Dict[str, float]]:
        """Per-parameter ceilings: min(upstream, cap), snapped to the domain.

        Returns ``None`` when some ceiling falls below the parameter's
        domain minimum (no feasible value exists at all).
        """
        upper: Dict[str, float] = {}
        for name, upstream_value in constraints.upstream.items():
            if name not in self._parameters:
                raise UnknownParameterError(name)
            ceiling = min(upstream_value, constraints.caps.get(name, math.inf))
            snapped = self._parameters[name].clamp_down(ceiling)
            if snapped is None:
                return None
            upper[name] = snapped
        return upper

    def _lower_bounds(self, upper: Mapping[str, float]) -> Dict[str, float]:
        """Domain minima (never above the upper bound)."""
        return {
            name: min(self._parameters[name].minimum, bound)
            for name, bound in upper.items()
        }

    def _ordered(self, names: Sequence[str]) -> List[str]:
        """``names`` sorted first-to-degrade-first.

        Unlisted parameters come first (degrading them was never objected
        to), then listed ones by policy order.
        """
        listed = {name: index for index, name in enumerate(self._degrade_order)}
        return sorted(names, key=lambda n: listed.get(n, -1))

    # ------------------------------------------------------------------
    # Phase 1: free reductions
    # ------------------------------------------------------------------
    def _reduce_free_parameters(
        self,
        upper: Mapping[str, float],
        lower: Mapping[str, float],
        fmt: MediaFormat,
        bandwidth: float,
    ) -> Configuration:
        """Reduce no-preference parameters first; they buy pure bandwidth."""
        preference = set(self._satisfaction.parameter_names())
        free = self._ordered([n for n in upper if n not in preference])
        config = Configuration(upper)
        for name in free:
            if config.fits_bandwidth(fmt, bandwidth):
                break
            best_fit = self._fit_single(config, name, fmt, bandwidth)
            target = max(lower[name], best_fit)
            snapped = self._parameters[name].clamp_down(target)
            if snapped is None:
                snapped = lower[name]
            config = config.with_value(name, max(lower[name], min(snapped, upper[name])))
        return config

    # ------------------------------------------------------------------
    # Phase 2: quality-ray bisection
    # ------------------------------------------------------------------
    def _ray_bisection(
        self,
        start: Configuration,
        lower: Mapping[str, float],
        fmt: MediaFormat,
        bandwidth: float,
    ) -> Configuration:
        """Largest feasible point on the ray lower → start.

        Only preference parameters move; free parameters already sit where
        phase 1 left them.
        """
        preference = set(self._satisfaction.parameter_names())
        moving = [n for n in start if n in preference]

        def at(t: float) -> Configuration:
            values = start.as_dict()
            for name in moving:
                raw = lower[name] + t * (start[name] - lower[name])
                snapped = self._parameters[name].clamp_down(raw)
                values[name] = lower[name] if snapped is None else snapped
            return Configuration(values)

        low_t, high_t = 0.0, 1.0
        if at(0.0).required_bandwidth(fmt) > bandwidth * _FIT_SLACK:
            # Even the floor does not fit with the free parameters as they
            # are; push them to their lower bounds too and retry from there.
            values = start.as_dict()
            for name in start:
                if name not in preference:
                    values[name] = lower[name]
            start = Configuration(values)
            if at(0.0).required_bandwidth(fmt) > bandwidth * _FIT_SLACK:
                return at(0.0)
        for _ in range(_BISECTION_STEPS):
            mid = (low_t + high_t) / 2.0
            if at(mid).fits_bandwidth(fmt, bandwidth):
                low_t = mid
            else:
                high_t = mid
        return at(low_t)

    # ------------------------------------------------------------------
    # Phase 3: greedy polish
    # ------------------------------------------------------------------
    def _polish(
        self,
        config: Configuration,
        upper: Mapping[str, float],
        fmt: MediaFormat,
        bandwidth: float,
    ) -> Configuration:
        """Spend leftover bandwidth, most-valued parameter first."""
        preference = set(self._satisfaction.parameter_names())
        last_to_degrade_first = list(
            reversed(self._ordered([n for n in config if n in preference]))
        )
        for name in last_to_degrade_first:
            if config[name] >= upper[name]:
                continue
            best_fit = self._fit_single(config, name, fmt, bandwidth)
            raised = min(upper[name], best_fit)
            snapped = self._parameters[name].clamp_down(raised)
            if snapped is not None and snapped > config[name]:
                config = config.with_value(name, snapped)
        return config

    # ------------------------------------------------------------------
    # Phase 4: discrete exchange
    # ------------------------------------------------------------------
    def _discrete_exchange(
        self,
        config: Configuration,
        upper: Mapping[str, float],
        lower: Mapping[str, float],
        fmt: MediaFormat,
        bandwidth: float,
    ) -> Configuration:
        """Trade continuous headroom for higher discrete values.

        The proportional quality ray can get stuck below a large discrete
        step (e.g. resolution 500 → 1000 pixels): stepping the discrete
        parameter up while *re-fitting* the continuous ones may raise the
        combined satisfaction.  This phase tries every feasible higher
        value of every discrete preference parameter, shrinking the other
        preference parameters (first-to-degrade first) to restore
        Equation 2, and keeps strict improvements.  A few sweeps suffice —
        each sweep only ever raises discrete values.
        """
        preference = [
            name
            for name in config
            if name in set(self._satisfaction.parameter_names())
        ]
        best = config
        best_score = self.evaluate(config)
        for _ in range(4):  # bounded hill-climbing sweeps
            improved = False
            for name in preference:
                domain = self._parameters[name].domain
                if not isinstance(domain, DiscreteDomain):
                    continue
                for value in domain.values:
                    if value <= best[name] or value > upper[name]:
                        continue
                    candidate = self._refit_around(
                        best.with_value(name, value),
                        pinned=name,
                        preference=preference,
                        upper=upper,
                        lower=lower,
                        fmt=fmt,
                        bandwidth=bandwidth,
                    )
                    if candidate is None:
                        continue
                    score = self.evaluate(candidate)
                    if score > best_score + 1e-12:
                        best, best_score = candidate, score
                        improved = True
            if not improved:
                break
        return best

    def _refit_around(
        self,
        candidate: Configuration,
        pinned: str,
        preference: Sequence[str],
        upper: Mapping[str, float],
        lower: Mapping[str, float],
        fmt: MediaFormat,
        bandwidth: float,
    ) -> Optional[Configuration]:
        """Shrink non-pinned preference parameters until Equation 2 holds.

        Returns ``None`` when the candidate cannot be made to fit even
        with every other preference parameter at its lower bound.
        """
        if candidate.fits_bandwidth(fmt, bandwidth):
            return self._polish_except(candidate, pinned, upper, fmt, bandwidth)
        for other in self._ordered([p for p in preference if p != pinned]):
            fit = self._fit_single(candidate, other, fmt, bandwidth)
            target = min(candidate[other], max(lower[other], fit))
            snapped = self._parameters[other].clamp_down(target)
            if snapped is None:
                snapped = lower[other]
            candidate = candidate.with_value(other, max(lower[other], snapped))
            if candidate.fits_bandwidth(fmt, bandwidth):
                return self._polish_except(candidate, pinned, upper, fmt, bandwidth)
        return None

    def _polish_except(
        self,
        config: Configuration,
        pinned: str,
        upper: Mapping[str, float],
        fmt: MediaFormat,
        bandwidth: float,
    ) -> Configuration:
        """Polish, but leave the just-raised parameter where it is."""
        polished = self._polish(config, upper, fmt, bandwidth)
        if polished[pinned] != config[pinned]:
            polished = polished.with_value(pinned, config[pinned])
            if not polished.fits_bandwidth(fmt, bandwidth):
                return config
        return polished

    # ------------------------------------------------------------------
    # Exact single-parameter inversion
    # ------------------------------------------------------------------
    @staticmethod
    def _fit_single(
        config: Configuration,
        name: str,
        fmt: MediaFormat,
        bandwidth: float,
    ) -> float:
        """Largest value of one parameter fitting the bandwidth, others
        fixed.

        The bandwidth requirement is linear in each parameter individually
        (see :meth:`MediaFormat.required_bandwidth`), so the bound follows
        from two evaluations.  A parameter with no bandwidth effect (e.g.
        color depth of a pure-audio stream) is unbounded.
        """
        current = config[name]
        at_zero = config.with_value(name, 0.0).required_bandwidth(fmt)
        probe_value = current if current > 0 else 1.0
        at_probe = config.with_value(name, probe_value).required_bandwidth(fmt)
        slope = (at_probe - at_zero) / probe_value
        residual = bandwidth - at_zero
        if slope <= 0.0:
            return math.inf
        if residual <= 0.0:
            return 0.0
        return residual / slope

    # ------------------------------------------------------------------
    def _choice(self, config: Configuration, fmt: MediaFormat) -> OptimizedChoice:
        return OptimizedChoice(
            configuration=config,
            satisfaction=self.evaluate(config),
            required_bandwidth_bps=config.required_bandwidth(fmt),
        )
