"""Per-round tracing of the selection algorithm (Table 1's columns).

Table 1 of the paper shows, for every iteration of the algorithm: the
considered set ``VT``, the candidate set ``CS``, the selected trans-coding
service, the selected path, the delivered frame rate, and the user
satisfaction.  :class:`SelectionRound` is exactly one such row;
:class:`SelectionTrace` is the full table, with renderers that round the
way the paper rounds (two decimals for satisfaction, whole frames per
second) so the regenerated table can be compared cell by cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["SelectionRound", "SelectionTrace"]


@dataclass(frozen=True)
class SelectionRound:
    """One row of Table 1.

    ``considered_set`` (VT) and ``candidate_set`` (CS) are snapshots taken
    *before* the round's selection, in insertion order with the receiver
    pinned last — the order the paper lists them in.  ``frame_rate`` and
    ``satisfaction`` describe the selected candidate's optimized
    configuration; ``frame_rate`` is ``None`` when the scenario has no
    frame-rate parameter.
    """

    number: int
    considered_set: Tuple[str, ...]
    candidate_set: Tuple[str, ...]
    selected: str
    path: Tuple[str, ...]
    frame_rate: Optional[float]
    satisfaction: float

    # ------------------------------------------------------------------
    # Paper-style rounded views
    # ------------------------------------------------------------------
    def displayed_frame_rate(self) -> str:
        """Frame rate rounded to a whole number, as Table 1 prints it."""
        if self.frame_rate is None:
            return "-"
        return str(int(round(self.frame_rate)))

    def displayed_satisfaction(self) -> str:
        """Satisfaction rounded to two decimals, as Table 1 prints it."""
        return f"{self.satisfaction:.2f}"

    def displayed_path(self) -> str:
        return ",".join(self.path)

    def displayed_sets(self) -> Tuple[str, str]:
        vt = "{ " + ", ".join(self.considered_set) + " }"
        cs = "{" + ", ".join(self.candidate_set) + "}"
        return vt, cs

    def as_paper_row(self) -> Tuple[str, str, str, str, str, str]:
        """The row in the paper's column order (Round is the row index)."""
        vt, cs = self.displayed_sets()
        return (
            vt,
            cs,
            self.selected,
            self.displayed_path(),
            self.displayed_frame_rate(),
            self.displayed_satisfaction(),
        )


@dataclass
class SelectionTrace:
    """The full per-round record of one selector run."""

    rounds: List[SelectionRound] = field(default_factory=list)

    def append(self, round_: SelectionRound) -> None:
        expected = len(self.rounds) + 1
        if round_.number != expected:
            raise ValueError(
                f"round numbered {round_.number}, expected {expected}"
            )
        self.rounds.append(round_)

    def __len__(self) -> int:
        return len(self.rounds)

    def __iter__(self):
        return iter(self.rounds)

    def __getitem__(self, index: int) -> SelectionRound:
        return self.rounds[index]

    def selected_sequence(self) -> List[str]:
        """The services in settlement order (Table 1's 'Selected' column)."""
        return [r.selected for r in self.rounds]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self, max_set_width: int = 48) -> str:
        """A fixed-width text table mirroring Table 1's columns.

        Long VT/CS sets wrap onto continuation lines so the table stays
        readable in a terminal.
        """
        headers = (
            "Round",
            "Considered Set (VT)",
            "Candidate set (CS)",
            "Selected",
            "Path",
            "FPS",
            "Satisfaction",
        )
        rows = []
        for round_ in self.rounds:
            vt, cs = round_.displayed_sets()
            rows.append(
                (
                    str(round_.number),
                    vt,
                    cs,
                    round_.selected,
                    round_.displayed_path(),
                    round_.displayed_frame_rate(),
                    round_.displayed_satisfaction(),
                )
            )
        widths = [
            min(max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i]), max_set_width)
            for i in range(len(headers))
        ]

        def wrap(text: str, width: int) -> List[str]:
            if len(text) <= width:
                return [text]
            pieces: List[str] = []
            current = ""
            for token in text.split(" "):
                extended = f"{current} {token}".strip()
                if len(extended) > width and current:
                    pieces.append(current)
                    current = token
                else:
                    current = extended
            if current:
                pieces.append(current)
            return pieces

        def emit(cells: Sequence[str]) -> List[str]:
            wrapped = [wrap(cell, widths[i]) for i, cell in enumerate(cells)]
            height = max(len(w) for w in wrapped)
            lines = []
            for line_index in range(height):
                parts = []
                for column, cell_lines in enumerate(wrapped):
                    text = cell_lines[line_index] if line_index < len(cell_lines) else ""
                    parts.append(text.ljust(widths[column]))
                lines.append("  ".join(parts).rstrip())
            return lines

        out: List[str] = []
        out.extend(emit(headers))
        out.append("  ".join("-" * w for w in widths))
        for row in rows:
            out.extend(emit(row))
        return "\n".join(out)

    def paper_rows(self) -> List[Tuple[str, str, str, str, str, str]]:
        """All rows in paper form, for cell-by-cell comparison in tests."""
        return [round_.as_paper_row() for round_ in self.rounds]
