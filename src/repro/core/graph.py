"""Construction of the directed adaptation graph (Section 4.2).

Graph elements, exactly as the paper defines them:

- **Vertices** represent trans-coding services (plus the sender, "a special
  case vertex with only output links", and the receiver, "another special
  vertex with only input links").  Each vertex carries the computation and
  memory requirements of its service and the network node hosting it.
- **Edges** "represent the network connecting two vertices, where the input
  link of one vertex matches the output link of another vertex".  Each edge
  carries the format it transports, the available bandwidth between the two
  hosts (Section 4.3), and the transmission cost.

Acyclicity: the paper keeps the graph acyclic by "continuously verif[ying]
that all the formats along any path are distinct".  The *static* service
digraph built here may contain directed cycles (T1 → T2 → T1 on different
formats); the distinct-format rule is enforced on *paths* — during
selection, enumeration, and chain validation — which is what makes every
traversal acyclic.  :meth:`AdaptationGraph.enumerate_paths` implements that
rule and is the reference the property tests check against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.configuration import Configuration
from repro.errors import GraphConstructionError, UnknownServiceError
from repro.network.placement import ServicePlacement
from repro.profiles.content import ContentProfile
from repro.profiles.device import DeviceProfile
from repro.services.catalog import ServiceCatalog, service_sort_key
from repro.services.descriptor import ServiceDescriptor, ServiceKind

__all__ = ["Vertex", "Edge", "AdaptationGraph", "AdaptationGraphBuilder"]


@dataclass(frozen=True)
class Vertex:
    """One vertex of the adaptation graph.

    ``source_configurations`` is populated only on the sender vertex: one
    configuration per output link, taken from the content profile's
    variants (the quality each stored variant was encoded at).
    """

    service: ServiceDescriptor
    node_id: str
    source_configurations: Mapping[str, Configuration] = field(default_factory=dict)

    @property
    def service_id(self) -> str:
        return self.service.service_id

    @property
    def is_sender(self) -> bool:
        return self.service.is_sender

    @property
    def is_receiver(self) -> bool:
        return self.service.is_receiver

    def __str__(self) -> str:
        return self.service_id


@dataclass(frozen=True)
class Edge:
    """One directed, format-labeled edge of the adaptation graph.

    ``delay_ms`` is the one-way propagation delay of the network route
    realizing the edge (Section 3's network profile lists maximum delay
    among the measured characteristics; delay-sensitive users bound it).
    """

    source: str
    target: str
    format_name: str
    bandwidth_bps: float
    transmission_cost: float = 0.0
    delay_ms: float = 0.0

    def __str__(self) -> str:
        return f"{self.source} --{self.format_name}--> {self.target}"


class AdaptationGraph:
    """The directed graph the QoS selection algorithm runs on."""

    def __init__(
        self,
        vertices: Sequence[Vertex],
        edges: Sequence[Edge],
        sender_id: str,
        receiver_id: str,
    ) -> None:
        self._vertices: Dict[str, Vertex] = {}
        for vertex in vertices:
            if vertex.service_id in self._vertices:
                raise GraphConstructionError(
                    f"duplicate vertex {vertex.service_id!r}"
                )
            self._vertices[vertex.service_id] = vertex
        for endpoint_id, role in ((sender_id, "sender"), (receiver_id, "receiver")):
            if endpoint_id not in self._vertices:
                raise GraphConstructionError(f"{role} vertex {endpoint_id!r} missing")
        self.sender_id = sender_id
        self.receiver_id = receiver_id
        out_lists: Dict[str, List[Edge]] = {v: [] for v in self._vertices}
        in_lists: Dict[str, List[Edge]] = {v: [] for v in self._vertices}
        for edge in edges:
            if edge.source not in self._vertices:
                raise GraphConstructionError(f"edge from unknown vertex {edge.source!r}")
            if edge.target not in self._vertices:
                raise GraphConstructionError(f"edge to unknown vertex {edge.target!r}")
            out_lists[edge.source].append(edge)
            in_lists[edge.target].append(edge)
        # The graph is frozen after construction, so the adjacency order the
        # selectors rely on is computed exactly once here instead of on
        # every out_edges()/in_edges() call (the seed re-sorted per call).
        self._out_edges: Dict[str, Tuple[Edge, ...]] = {
            v: tuple(
                sorted(es, key=lambda e: (service_sort_key(e.target), e.format_name))
            )
            for v, es in out_lists.items()
        }
        self._in_edges: Dict[str, Tuple[Edge, ...]] = {
            v: tuple(
                sorted(es, key=lambda e: (service_sort_key(e.source), e.format_name))
            )
            for v, es in in_lists.items()
        }
        self._ordered_ids: Tuple[str, ...] = tuple(
            sorted(self._vertices, key=service_sort_key)
        )
        #: Natural-order rank per vertex id; selectors use it to turn the
        #: string-keyed tie-break orderings into cheap integer comparisons.
        self._vertex_rank: Dict[str, int] = {
            service_id: rank for rank, service_id in enumerate(self._ordered_ids)
        }

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def sender(self) -> Vertex:
        return self._vertices[self.sender_id]

    @property
    def receiver(self) -> Vertex:
        return self._vertices[self.receiver_id]

    def vertex(self, service_id: str) -> Vertex:
        try:
            return self._vertices[service_id]
        except KeyError:
            raise UnknownServiceError(service_id) from None

    def vertices(self) -> List[Vertex]:
        """All vertices in natural service-id order."""
        return [self._vertices[service_id] for service_id in self._ordered_ids]

    def vertex_ids(self) -> List[str]:
        return list(self._ordered_ids)

    def vertex_rank(self) -> Mapping[str, int]:
        """Natural-order rank per vertex id (``T2`` < ``T10``), frozen at
        construction.  Shared by the heap selectors' tie-break keys."""
        return self._vertex_rank

    def edges(self) -> List[Edge]:
        return [edge for edges in self._out_edges.values() for edge in edges]

    def out_edges(self, service_id: str) -> Tuple[Edge, ...]:
        """Outgoing edges, ordered by target id then format name.

        The tuple is built once at construction time; callers share it, so
        repeated calls are O(1) and always return the identical ordering.
        """
        try:
            return self._out_edges[service_id]
        except KeyError:
            raise UnknownServiceError(service_id) from None

    def in_edges(self, service_id: str) -> Tuple[Edge, ...]:
        """Incoming edges, ordered by source id then format name (cached)."""
        try:
            return self._in_edges[service_id]
        except KeyError:
            raise UnknownServiceError(service_id) from None

    def successors(self, service_id: str) -> List[str]:
        """Distinct successor ids in natural order (the paper's
        ``neighbor(Ti)``)."""
        # Out-edges are already sorted by target, so de-duping in order
        # preserves the natural ordering without a fresh sort.
        return list(dict.fromkeys(e.target for e in self._out_edges[service_id]))

    def __contains__(self, service_id: object) -> bool:
        return service_id in self._vertices

    def __len__(self) -> int:
        return len(self._vertices)

    def edge_count(self) -> int:
        return sum(len(edges) for edges in self._out_edges.values())

    # ------------------------------------------------------------------
    # Path enumeration under the distinct-format rule
    # ------------------------------------------------------------------
    def enumerate_paths(
        self,
        max_paths: Optional[int] = None,
        max_hops: Optional[int] = None,
    ) -> Iterator[List[Edge]]:
        """Yield every sender→receiver path with pairwise-distinct formats.

        Paths are edge sequences.  ``max_paths`` bounds the yield count and
        ``max_hops`` the path length (both optional) so callers can keep
        exhaustive enumeration tractable on large graphs.  Vertices never
        repeat along a path (a repeated service would re-encounter one of
        its formats anyway in all but degenerate cap configurations, and the
        paper's chains are service-distinct).
        """
        yielded = 0
        stack: List[Tuple[str, List[Edge], Set[str], Set[str]]] = [
            (self.sender_id, [], {self.sender_id}, set())
        ]
        while stack:
            current, path, visited, formats = stack.pop()
            if current == self.receiver_id:
                yield list(path)
                yielded += 1
                if max_paths is not None and yielded >= max_paths:
                    return
                continue
            if max_hops is not None and len(path) >= max_hops:
                continue
            # Reverse order keeps DFS exploring in natural order.
            for edge in reversed(self.out_edges(current)):
                if edge.target in visited:
                    continue
                if edge.format_name in formats:
                    continue
                stack.append(
                    (
                        edge.target,
                        path + [edge],
                        visited | {edge.target},
                        formats | {edge.format_name},
                    )
                )

    def reachable_from_sender(self) -> Set[str]:
        """Vertices reachable from the sender, ignoring format rules."""
        return self._flood(self.sender_id, self._out_edges, forward=True)

    def co_reachable_to_receiver(self) -> Set[str]:
        """Vertices from which the receiver is reachable."""
        return self._flood(self.receiver_id, self._in_edges, forward=False)

    def _flood(
        self,
        start: str,
        adjacency: Mapping[str, Sequence[Edge]],
        forward: bool,
    ) -> Set[str]:
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for edge in adjacency[current]:
                neighbor = edge.target if forward else edge.source
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return seen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdaptationGraph(vertices={len(self._vertices)}, "
            f"edges={self.edge_count()})"
        )


class AdaptationGraphBuilder:
    """Builds the adaptation graph from profiles + catalog (Section 4.2).

    "To construct the adaptation graph, we start with the sender node, and
    then connect the outgoing edges of the sender with all the input edges
    of all other vertices that have the same format.  The same process is
    repeated for all vertices."
    """

    def __init__(
        self,
        catalog: ServiceCatalog,
        placement: ServicePlacement,
        check_resources: bool = True,
        reference_input_bps: float = 1e6,
    ) -> None:
        self._catalog = catalog
        self._placement = placement
        self._check_resources = check_resources
        self._reference_input_bps = reference_input_bps

    def build(
        self,
        content: ContentProfile,
        device: DeviceProfile,
        sender_node: str,
        receiver_node: str,
        sender_id: str = "sender",
        receiver_id: str = "receiver",
        context_caps: Optional[Mapping[str, float]] = None,
    ) -> AdaptationGraph:
        """Construct the graph for one delivery session.

        ``context_caps`` (from the context profile) merge into the
        receiver's rendering caps — the context can only tighten them.
        """
        topology = self._placement.topology
        if sender_node not in topology:
            raise GraphConstructionError(f"sender node {sender_node!r} not in topology")
        if receiver_node not in topology:
            raise GraphConstructionError(
                f"receiver node {receiver_node!r} not in topology"
            )

        sender_descriptor = content.sender_descriptor(sender_id)
        receiver_caps = device.rendering_caps()
        for name, cap in (context_caps or {}).items():
            receiver_caps[name] = min(cap, receiver_caps.get(name, math.inf))
        receiver_descriptor = ServiceDescriptor(
            service_id=receiver_id,
            input_formats=tuple(device.decoders),
            output_caps=receiver_caps,
            kind=ServiceKind.RECEIVER,
            description=f"rendering device {device.device_id!r}",
        )

        vertices: List[Vertex] = [
            Vertex(
                service=sender_descriptor,
                node_id=sender_node,
                source_configurations={
                    variant.format.name: variant.configuration
                    for variant in content.variants
                },
            ),
            Vertex(service=receiver_descriptor, node_id=receiver_node),
        ]
        for descriptor in self._catalog.transcoders():
            if descriptor.service_id in (sender_id, receiver_id):
                raise GraphConstructionError(
                    f"catalog service id {descriptor.service_id!r} collides "
                    f"with an endpoint id"
                )
            if not self._placement.is_placed(descriptor.service_id):
                continue  # Unplaced services cannot carry traffic.
            if self._check_resources and not self._host_can_run(descriptor):
                continue
            vertices.append(
                Vertex(
                    service=descriptor,
                    node_id=self._placement.node_of(descriptor.service_id),
                )
            )

        edges = self._connect(vertices)
        return AdaptationGraph(vertices, edges, sender_id, receiver_id)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _host_can_run(self, descriptor: ServiceDescriptor) -> bool:
        node = self._placement.topology.get_node(
            self._placement.node_of(descriptor.service_id)
        )
        return (
            descriptor.cpu_required(self._reference_input_bps) <= node.cpu_mips
            and descriptor.memory_mb <= node.memory_mb
        )

    def _connect(self, vertices: Sequence[Vertex]) -> List[Edge]:
        """Create one edge per (producer, consumer, shared format) triple."""
        topology = self._placement.topology
        edges: List[Edge] = []
        # Cache host-pair bandwidth: quadratic vertex pairs share few pairs.
        bandwidth_cache: Dict[Tuple[str, str], Tuple[float, float, float]] = {}

        def between(a: str, b: str) -> Tuple[float, float, float]:
            key = (a, b)
            hit = bandwidth_cache.get(key)
            if hit is not None:
                return hit
            if a == b:
                result = (math.inf, 0.0, 0.0)
            else:
                path = topology.widest_path(a, b)
                if path is None:
                    result = (0.0, 0.0, 0.0)
                else:
                    result = (
                        topology.path_bottleneck(path),
                        topology.path_cost(path),
                        topology.path_delay_ms(path),
                    )
            bandwidth_cache[key] = result
            return result

        consumers_of: Dict[str, List[Vertex]] = {}
        for vertex in vertices:
            for fmt in vertex.service.input_formats:
                consumers_of.setdefault(fmt, []).append(vertex)

        for producer in vertices:
            for fmt in producer.service.output_formats:
                for consumer in consumers_of.get(fmt, ()):
                    if consumer.service_id == producer.service_id:
                        continue
                    bandwidth, cost, delay = between(
                        producer.node_id, consumer.node_id
                    )
                    if bandwidth <= 0.0:
                        continue  # Disconnected hosts cannot form an edge.
                    edges.append(
                        Edge(
                            source=producer.service_id,
                            target=consumer.service_id,
                            format_name=fmt,
                            bandwidth_bps=bandwidth,
                            transmission_cost=cost,
                            delay_ms=delay,
                        )
                    )
        return edges
