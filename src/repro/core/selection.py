"""The QoS path-selection algorithm (Section 4.4, Figure 4).

The algorithm maintains two sets: ``VT``, the already considered
trans-coding services (initially just the sender), and ``CS``, the candidate
services reachable over one edge from ``VT``.  Each round it

1. computes, for every candidate ``Ti`` with settled parent ``Tprev``, the
   configuration maximizing the user's satisfaction subject to the
   bandwidth available between ``Ti`` and ``Tprev`` and the remaining
   budget (the ``Optimize`` call — :mod:`repro.core.optimizer`);
2. settles the candidate with the highest satisfaction (Step 4), recording
   its parent and accumulated cost (Step 6);
3. terminates with success when the receiver is settled (Step 7) or with
   FAILURE when ``CS`` empties first (Step 3);
4. otherwise inserts the settled service's neighbors into ``CS`` (Step 8).

Because transcoders can only reduce quality, the satisfaction of settled
candidates is non-increasing over rounds and the first time the receiver is
settled it carries the maximum achievable satisfaction — the Figure 5
optimality argument, which the property tests check against exhaustive
search.

The paper never needs a tie-break (Table 1's underlying satisfactions are
strictly decreasing), but real scenarios do; :class:`TieBreakPolicy`
provides deterministic options, ablated in benchmark E8/E13.
"""

from __future__ import annotations

import enum
import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.configuration import Configuration
from repro.core.graph import AdaptationGraph, Edge
from repro.core.optimizer import (
    ConfigurationOptimizer,
    OptimizationConstraints,
    OptimizedChoice,
    OptimizeMemo,
)
from repro.core.parameters import FRAME_RATE, ParameterSet
from repro.core.satisfaction import CombinedSatisfaction
from repro.core.trace import SelectionRound, SelectionTrace
from repro.errors import NoPathError
from repro.formats.registry import FormatRegistry
from repro.profiles.user import UserProfile
from repro.services.chains import AdaptationChain, ChainHop

__all__ = [
    "TieBreakPolicy",
    "LazySettleHeap",
    "SelectionStats",
    "SelectionResult",
    "QoSPathSelector",
    "build_chain",
]


class LazySettleHeap:
    """A counter-tied binary min-heap with lazy deletion.

    The settle loops in :class:`QoSPathSelector` and the Dijkstra-shaped
    baselines all share the same access pattern: push (key, payload) pairs,
    repeatedly extract the minimum *live* payload, and never pay to delete
    a superseded or already-settled one — those stay in the heap and are
    skipped at pop time via the caller's ``is_current`` predicate.  The
    monotone counter tie-breaks exactly-equal keys by push order, which
    also guarantees payloads themselves are never compared.

    Counters (``pushes`` / ``settled_pops`` / ``stale_pops``) feed the
    hot-path benchmark and :class:`SelectionStats`.
    """

    __slots__ = ("_heap", "_counter", "pushes", "settled_pops", "stale_pops")

    def __init__(self) -> None:
        self._heap: List[Tuple] = []
        self._counter = 0
        self.pushes = 0
        self.settled_pops = 0
        self.stale_pops = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, key, payload) -> None:
        heapq.heappush(self._heap, (key, self._counter, payload))
        self._counter += 1
        self.pushes += 1

    def pop_current(self, is_current: Callable) -> Optional[Tuple]:
        """The minimal (key, payload) with ``is_current(payload)`` true.

        Stale entries encountered on the way are dropped.  Returns ``None``
        when no live payload remains.
        """
        while self._heap:
            key, _, payload = heapq.heappop(self._heap)
            if is_current(payload):
                self.settled_pops += 1
                return key, payload
            self.stale_pops += 1
        return None


class TieBreakPolicy(enum.Enum):
    """How to order candidates whose satisfactions tie exactly.

    - ``PAPER``: transcoders before the receiver, most recently updated
      first, then descending service id — the ordering consistent with how
      Table 1 lists its rounds.
    - ``ASCENDING_ID`` / ``DESCENDING_ID``: by natural service-id order.
    - ``INSERTION_ORDER``: first entered into CS wins.

    Every policy yields the same *final* satisfaction (ties are equal by
    definition); they differ in which equally good path gets reported and
    in how many rounds run before the receiver settles.
    """

    PAPER = "paper"
    ASCENDING_ID = "ascending-id"
    DESCENDING_ID = "descending-id"
    INSERTION_ORDER = "insertion-order"


@dataclass
class _Entry:
    """Bookkeeping for one service, candidate or settled."""

    service_id: str
    parent_id: Optional[str]
    via_format: Optional[str]
    choice: Optional[OptimizedChoice]
    accumulated_cost: float
    accumulated_delay_ms: float
    path: Tuple[str, ...]
    formats_on_path: frozenset
    insertion_index: int
    insertion_round: int
    update_round: int

    @property
    def satisfaction(self) -> float:
        return self.choice.satisfaction if self.choice is not None else 1.0


@dataclass(frozen=True)
class SelectionStats:
    """Where one selector run spent its planning effort.

    ``optimize_calls`` counts every ``Optimize(...)`` invocation of the run
    (memo hits included); ``dominance_skips`` counts relaxations pruned
    before ``Optimize`` because the incumbent candidate already matched the
    parent's satisfaction ceiling.  The heap counters describe the settle
    loop itself.
    """

    rounds: int
    optimize_calls: int
    optimize_memo_hits: int
    dominance_skips: int
    heap_pushes: int
    heap_settled_pops: int
    heap_stale_pops: int

    @property
    def memo_hit_rate(self) -> float:
        """Fraction of optimize() calls served from the memo."""
        if self.optimize_calls == 0:
            return 0.0
        return self.optimize_memo_hits / self.optimize_calls


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of one selector run.

    ``success`` mirrors Figure 4's two exits: True when the receiver was
    settled (Step 10 printed the reverse path), False when CS emptied
    first (Step 3's ``TERMINATE(FAILURE)``).

    ``stats`` is observability only — it never participates in equality,
    so results from differently-instrumented selectors still compare
    bit-identical on everything the paper's algorithm defines.
    """

    success: bool
    path: Tuple[str, ...]
    formats: Tuple[str, ...]
    configuration: Optional[Configuration]
    satisfaction: float
    accumulated_cost: float
    rounds_run: int
    trace: Optional[SelectionTrace]
    failure_reason: str = ""
    accumulated_delay_ms: float = 0.0
    stats: Optional[SelectionStats] = field(default=None, compare=False)

    @property
    def delivered_frame_rate(self) -> Optional[float]:
        if self.configuration is None:
            return None
        return self.configuration.get_value(FRAME_RATE)

    def describe(self) -> str:
        if not self.success:
            text = f"FAILURE after {self.rounds_run} rounds: {self.failure_reason}"
        else:
            text = (
                f"path {','.join(self.path)} | satisfaction "
                f"{self.satisfaction:.4f} | cost {self.accumulated_cost:.2f}"
            )
        if self.stats is not None:
            text += (
                f" | rounds {self.stats.rounds}"
                f" | optimize {self.stats.optimize_calls}"
                f" ({self.stats.memo_hit_rate * 100:.0f}% memoized)"
            )
        return text


class QoSPathSelector:
    """Runs the Figure 4 algorithm over an adaptation graph.

    The settle loop is heap-based: candidates live in a
    :class:`LazySettleHeap` under a composite key that encodes satisfaction
    first and the configured :class:`TieBreakPolicy` second, so Step 4 is
    ``O(log |CS|)`` instead of the seed implementation's three full sorts
    of ``CS`` per round.  Results are bit-identical to the linear-scan
    seed selector for all four policies — the equivalence property suite
    (``tests/test_selector_equivalence.py``) pins that.
    """

    #: Subclass hook: the equivalence reference disables the pre-filter to
    #: reproduce the seed's exact work profile (results are identical
    #: either way; the filter only skips provably rejected relaxations).
    _use_dominance_filter = True

    def __init__(
        self,
        graph: AdaptationGraph,
        registry: FormatRegistry,
        parameters: ParameterSet,
        satisfaction: CombinedSatisfaction,
        budget: float = math.inf,
        degrade_order: Optional[Sequence[str]] = None,
        tie_break: TieBreakPolicy = TieBreakPolicy.PAPER,
        record_trace: bool = True,
        max_delay_ms: float = math.inf,
        optimize_memo: Optional[OptimizeMemo] = None,
    ) -> None:
        self._graph = graph
        self._registry = registry
        self._budget = budget
        self._max_delay_ms = max_delay_ms
        self._tie_break = tie_break
        self._record_trace = record_trace
        self._optimizer = ConfigurationOptimizer(
            parameters, satisfaction, degrade_order, memo=optimize_memo
        )

    @classmethod
    def for_user(
        cls,
        graph: AdaptationGraph,
        registry: FormatRegistry,
        parameters: ParameterSet,
        user: UserProfile,
        peer: Optional[str] = None,
        tie_break: TieBreakPolicy = TieBreakPolicy.PAPER,
        record_trace: bool = True,
        optimize_memo: Optional[OptimizeMemo] = None,
    ) -> "QoSPathSelector":
        """Build a selector straight from a user profile."""
        satisfaction = user.satisfaction(peer)
        return cls(
            graph=graph,
            registry=registry,
            parameters=parameters,
            satisfaction=satisfaction,
            budget=user.budget,
            degrade_order=user.degrade_order(parameters.names()),
            tie_break=tie_break,
            record_trace=record_trace,
            max_delay_ms=user.max_delay_ms,
            optimize_memo=optimize_memo,
        )

    # ------------------------------------------------------------------
    # The algorithm
    # ------------------------------------------------------------------
    def run(self) -> SelectionResult:
        graph = self._graph
        trace = SelectionTrace() if self._record_trace else None
        optimizer = self._optimizer
        calls_before = optimizer.optimize_calls
        memo_hits_before = optimizer.memo_hits

        # Step 1: VT = {sender}; CS = neighbor(sender).
        settled: Dict[str, _Entry] = {}
        settled_order: List[str] = []
        candidates: Dict[str, _Entry] = {}
        insertion_counter = 0
        dominance_skips = 0
        heap = LazySettleHeap()
        heap_key = self._heap_key_fn()
        use_dominance = self._use_dominance_filter

        sender_entry = _Entry(
            service_id=graph.sender_id,
            parent_id=None,
            via_format=None,
            choice=None,
            accumulated_cost=0.0,
            accumulated_delay_ms=0.0,
            path=(graph.sender_id,),
            formats_on_path=frozenset(),
            insertion_index=-1,
            insertion_round=0,
            update_round=0,
        )
        settled[graph.sender_id] = sender_entry
        settled_order.append(graph.sender_id)

        def consider(edge: Edge, current_round: int) -> None:
            nonlocal insertion_counter, dominance_skips
            if edge.target in settled:
                return
            parent = settled[edge.source]
            if edge.format_name in parent.formats_on_path:
                return  # Distinct-format rule (Section 4.2).
            if edge.target in parent.path:
                return  # No repeated services along a path.
            incumbent = candidates.get(edge.target)
            if (
                use_dominance
                and incumbent is not None
                and parent.satisfaction <= incumbent.satisfaction
            ):
                # Dominance pre-filter: quality only degrades along a path,
                # so no relaxation through this parent can exceed the
                # parent's own satisfaction.  With the incumbent already at
                # or above that ceiling, Optimize() could at best tie — and
                # ties never replace — so the call is skipped outright.
                dominance_skips += 1
                return
            target_vertex = graph.vertex(edge.target)
            upstream = self._upstream_configuration(parent, edge)
            if upstream is None:
                return
            cost = (
                parent.accumulated_cost
                + target_vertex.service.cost
                + edge.transmission_cost
            )
            if cost > self._budget:
                return  # Remaining-budget constraint (Figure 4, Step 2).
            delay = parent.accumulated_delay_ms + edge.delay_ms
            if delay > self._max_delay_ms:
                return  # The user's end-to-end delay bound (Section 3).
            choice = optimizer.optimize(
                OptimizationConstraints(
                    upstream=upstream,
                    caps=target_vertex.service.output_caps,
                    fmt=self._registry.get(edge.format_name),
                    bandwidth_bps=edge.bandwidth_bps,
                )
            )
            if choice is None:
                return  # Equation 2 cannot be met on this edge at all.
            if incumbent is not None and choice.satisfaction <= incumbent.satisfaction:
                return
            if incumbent is None:
                insertion_index = insertion_counter
                insertion_round = current_round
                insertion_counter += 1
            else:
                insertion_index = incumbent.insertion_index
                insertion_round = incumbent.insertion_round
            entry = _Entry(
                service_id=edge.target,
                parent_id=edge.source,
                via_format=edge.format_name,
                choice=choice,
                accumulated_cost=cost,
                accumulated_delay_ms=delay,
                path=parent.path + (edge.target,),
                formats_on_path=parent.formats_on_path | {edge.format_name},
                insertion_index=insertion_index,
                insertion_round=insertion_round,
                update_round=current_round,
            )
            candidates[edge.target] = entry
            # Lazy deletion: the superseded incumbent stays in the heap and
            # is recognized as stale (identity mismatch) when popped.
            heap.push(heap_key(entry), entry)

        for edge in self._relaxation_edges(graph.sender_id):
            consider(edge, current_round=0)

        rounds_run = 0
        while candidates:
            rounds_run += 1
            # Step 4: settle the candidate with the highest satisfaction.
            selected = self._select_candidate(candidates, heap)
            if trace is not None:
                trace.append(
                    SelectionRound(
                        number=rounds_run,
                        considered_set=tuple(settled_order),
                        candidate_set=self._candidate_snapshot(candidates),
                        selected=selected.service_id,
                        path=selected.path,
                        frame_rate=(
                            selected.choice.configuration.get_value(FRAME_RATE)
                            if selected.choice is not None
                            else None
                        ),
                        satisfaction=selected.satisfaction,
                    )
                )
            del candidates[selected.service_id]
            settled[selected.service_id] = selected
            settled_order.append(selected.service_id)

            # Step 7: the receiver terminates the search.
            if selected.service_id == graph.receiver_id:
                stats = SelectionStats(
                    rounds=rounds_run,
                    optimize_calls=optimizer.optimize_calls - calls_before,
                    optimize_memo_hits=optimizer.memo_hits - memo_hits_before,
                    dominance_skips=dominance_skips,
                    heap_pushes=heap.pushes,
                    heap_settled_pops=heap.settled_pops,
                    heap_stale_pops=heap.stale_pops,
                )
                return self._success(selected, settled, rounds_run, trace, stats)

            # Step 8: fold the settled service's neighbors into CS.
            for edge in self._relaxation_edges(selected.service_id):
                consider(edge, current_round=rounds_run)

        # Step 3: CS empty and the receiver was never reached.
        return SelectionResult(
            success=False,
            path=(),
            formats=(),
            configuration=None,
            satisfaction=0.0,
            accumulated_cost=0.0,
            rounds_run=rounds_run,
            trace=trace,
            failure_reason="candidate set exhausted before reaching the receiver",
            stats=SelectionStats(
                rounds=rounds_run,
                optimize_calls=optimizer.optimize_calls - calls_before,
                optimize_memo_hits=optimizer.memo_hits - memo_hits_before,
                dominance_skips=dominance_skips,
                heap_pushes=heap.pushes,
                heap_settled_pops=heap.settled_pops,
                heap_stale_pops=heap.stale_pops,
            ),
        )

    def run_or_raise(self) -> SelectionResult:
        """Like :meth:`run`, but FAILURE raises :class:`NoPathError`."""
        result = self.run()
        if not result.success:
            raise NoPathError(result.failure_reason)
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _upstream_configuration(
        self, parent: _Entry, edge: Edge
    ) -> Optional[Configuration]:
        """The quality ceiling arriving at ``edge``'s target.

        For regular parents this is the configuration the parent achieved;
        for the sender it is the stored variant encoded in the edge's
        format (one sender output link per variant, Section 4.2).
        """
        if parent.choice is not None:
            return parent.choice.configuration
        vertex = self._graph.vertex(parent.service_id)
        return vertex.source_configurations.get(edge.format_name)

    def _candidate_snapshot(self, candidates: Dict[str, _Entry]) -> Tuple[str, ...]:
        """CS in insertion order, receiver pinned last (Table 1's layout)."""
        ordered = sorted(candidates.values(), key=lambda e: e.insertion_index)
        names = [e.service_id for e in ordered if e.service_id != self._graph.receiver_id]
        if self._graph.receiver_id in candidates:
            names.append(self._graph.receiver_id)
        return tuple(names)

    def _relaxation_edges(self, service_id: str) -> Iterable[Edge]:
        """The just-settled vertex's out-edges, in relaxation order.

        The graph caches the sorted adjacency at freeze time; the seed
        implementation re-sorted per settle, which the test-only reference
        selector reproduces by overriding this hook.
        """
        return self._graph.out_edges(service_id)

    def _heap_key_fn(self) -> Callable[[_Entry], Tuple]:
        """The composite heap key for the configured tie-break policy.

        The seed ``_pick()`` pre-sorted ``CS`` most-preferred-first for the
        policy, then took ``max`` by satisfaction (keeping the *first* of
        equals) — i.e. it settled the entry minimizing
        ``(-satisfaction, policy order)``.  The keys below encode exactly
        that ordering, with the policy's string comparisons replaced by the
        graph's frozen integer ranks:

        - ``PAPER`` sorts by id descending, then update-round descending,
          then receiver-last; successive stable sorts make the *last* key
          primary, so ascending order is
          ``(is_receiver, -update_round, -rank)``.
        - ``ASCENDING_ID`` / ``DESCENDING_ID`` are ``rank`` / ``-rank``.
        - ``INSERTION_ORDER`` is the first-entered index, preserved across
          in-place candidate improvements.
        """
        policy = self._tie_break
        rank = self._graph.vertex_rank()
        receiver_id = self._graph.receiver_id
        if policy is TieBreakPolicy.PAPER:
            return lambda e: (
                -e.satisfaction,
                e.service_id == receiver_id,
                -e.update_round,
                -rank[e.service_id],
            )
        if policy is TieBreakPolicy.ASCENDING_ID:
            return lambda e: (-e.satisfaction, rank[e.service_id])
        if policy is TieBreakPolicy.DESCENDING_ID:
            return lambda e: (-e.satisfaction, -rank[e.service_id])
        return lambda e: (-e.satisfaction, e.insertion_index)

    def _select_candidate(
        self, candidates: Dict[str, _Entry], heap: LazySettleHeap
    ) -> _Entry:
        """Step 4 in ``O(log |CS|)``: pop the minimal live heap entry.

        Every live candidate sits in the heap under its latest key, so the
        first pop surviving the staleness check (identity against the
        candidate map) is exactly the entry the seed's scan-and-sort pick
        would have chosen.  Callers guarantee ``candidates`` is non-empty.
        """
        popped = heap.pop_current(
            lambda entry: candidates.get(entry.service_id) is entry
        )
        assert popped is not None, "live candidates must be present in the heap"
        return popped[1]

    @staticmethod
    def _success(
        receiver_entry: _Entry,
        settled: Dict[str, _Entry],
        rounds_run: int,
        trace: Optional[SelectionTrace],
        stats: Optional[SelectionStats] = None,
    ) -> SelectionResult:
        # Step 10: print the reverse path by following the "previous" links
        # from the receiver.  Caution: a settled service on the winning
        # path may itself have been settled via a *different* parent than
        # the winning path uses — but the winning entry's path tuple was
        # recorded when its satisfaction was computed, and every service on
        # it was settled (only settled services feed consider()), so the
        # via-format walk below follows the recorded winning chain.
        via: List[str] = []
        current = receiver_entry
        while current.parent_id is not None:
            via.append(current.via_format)  # type: ignore[arg-type]
            parent = settled[current.parent_id]
            if parent.path != current.path[:-1]:
                # The parent settled along a different route than the one
                # this entry's satisfaction was computed against.  The
                # satisfactions are equal or better along the settled route
                # (entries only improve), so the settled route is reported.
                pass
            current = parent
        via.reverse()
        return SelectionResult(
            success=True,
            path=receiver_entry.path,
            formats=tuple(via),
            configuration=(
                receiver_entry.choice.configuration
                if receiver_entry.choice is not None
                else None
            ),
            satisfaction=receiver_entry.satisfaction,
            accumulated_cost=receiver_entry.accumulated_cost,
            accumulated_delay_ms=receiver_entry.accumulated_delay_ms,
            rounds_run=rounds_run,
            trace=trace,
            stats=stats,
        )


def build_chain(graph: AdaptationGraph, result: SelectionResult) -> AdaptationChain:
    """Materialize a selector result as an executable adaptation chain."""
    if not result.success:
        raise NoPathError("cannot build a chain from a FAILURE result")
    hops = [ChainHop(graph.vertex(result.path[0]).service, None)]
    hops.extend(
        ChainHop(graph.vertex(service_id).service, fmt)
        for service_id, fmt in zip(result.path[1:], result.formats)
    )
    return AdaptationChain(hops)
