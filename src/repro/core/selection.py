"""The QoS path-selection algorithm (Section 4.4, Figure 4).

The algorithm maintains two sets: ``VT``, the already considered
trans-coding services (initially just the sender), and ``CS``, the candidate
services reachable over one edge from ``VT``.  Each round it

1. computes, for every candidate ``Ti`` with settled parent ``Tprev``, the
   configuration maximizing the user's satisfaction subject to the
   bandwidth available between ``Ti`` and ``Tprev`` and the remaining
   budget (the ``Optimize`` call — :mod:`repro.core.optimizer`);
2. settles the candidate with the highest satisfaction (Step 4), recording
   its parent and accumulated cost (Step 6);
3. terminates with success when the receiver is settled (Step 7) or with
   FAILURE when ``CS`` empties first (Step 3);
4. otherwise inserts the settled service's neighbors into ``CS`` (Step 8).

Because transcoders can only reduce quality, the satisfaction of settled
candidates is non-increasing over rounds and the first time the receiver is
settled it carries the maximum achievable satisfaction — the Figure 5
optimality argument, which the property tests check against exhaustive
search.

The paper never needs a tie-break (Table 1's underlying satisfactions are
strictly decreasing), but real scenarios do; :class:`TieBreakPolicy`
provides deterministic options, ablated in benchmark E8/E13.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.configuration import Configuration
from repro.core.graph import AdaptationGraph, Edge
from repro.core.optimizer import (
    ConfigurationOptimizer,
    OptimizationConstraints,
    OptimizedChoice,
)
from repro.core.parameters import FRAME_RATE, ParameterSet
from repro.core.satisfaction import CombinedSatisfaction
from repro.core.trace import SelectionRound, SelectionTrace
from repro.errors import NoPathError
from repro.formats.registry import FormatRegistry
from repro.profiles.user import UserProfile
from repro.services.catalog import service_sort_key
from repro.services.chains import AdaptationChain, ChainHop

__all__ = [
    "TieBreakPolicy",
    "SelectionResult",
    "QoSPathSelector",
    "build_chain",
]


class TieBreakPolicy(enum.Enum):
    """How to order candidates whose satisfactions tie exactly.

    - ``PAPER``: transcoders before the receiver, most recently updated
      first, then descending service id — the ordering consistent with how
      Table 1 lists its rounds.
    - ``ASCENDING_ID`` / ``DESCENDING_ID``: by natural service-id order.
    - ``INSERTION_ORDER``: first entered into CS wins.

    Every policy yields the same *final* satisfaction (ties are equal by
    definition); they differ in which equally good path gets reported and
    in how many rounds run before the receiver settles.
    """

    PAPER = "paper"
    ASCENDING_ID = "ascending-id"
    DESCENDING_ID = "descending-id"
    INSERTION_ORDER = "insertion-order"


@dataclass
class _Entry:
    """Bookkeeping for one service, candidate or settled."""

    service_id: str
    parent_id: Optional[str]
    via_format: Optional[str]
    choice: Optional[OptimizedChoice]
    accumulated_cost: float
    accumulated_delay_ms: float
    path: Tuple[str, ...]
    formats_on_path: frozenset
    insertion_index: int
    insertion_round: int
    update_round: int

    @property
    def satisfaction(self) -> float:
        return self.choice.satisfaction if self.choice is not None else 1.0


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of one selector run.

    ``success`` mirrors Figure 4's two exits: True when the receiver was
    settled (Step 10 printed the reverse path), False when CS emptied
    first (Step 3's ``TERMINATE(FAILURE)``).
    """

    success: bool
    path: Tuple[str, ...]
    formats: Tuple[str, ...]
    configuration: Optional[Configuration]
    satisfaction: float
    accumulated_cost: float
    rounds_run: int
    trace: Optional[SelectionTrace]
    failure_reason: str = ""
    accumulated_delay_ms: float = 0.0

    @property
    def delivered_frame_rate(self) -> Optional[float]:
        if self.configuration is None:
            return None
        return self.configuration.get_value(FRAME_RATE)

    def describe(self) -> str:
        if not self.success:
            return f"FAILURE after {self.rounds_run} rounds: {self.failure_reason}"
        return (
            f"path {','.join(self.path)} | satisfaction "
            f"{self.satisfaction:.4f} | cost {self.accumulated_cost:.2f}"
        )


class QoSPathSelector:
    """Runs the Figure 4 algorithm over an adaptation graph."""

    def __init__(
        self,
        graph: AdaptationGraph,
        registry: FormatRegistry,
        parameters: ParameterSet,
        satisfaction: CombinedSatisfaction,
        budget: float = math.inf,
        degrade_order: Optional[Sequence[str]] = None,
        tie_break: TieBreakPolicy = TieBreakPolicy.PAPER,
        record_trace: bool = True,
        max_delay_ms: float = math.inf,
    ) -> None:
        self._graph = graph
        self._registry = registry
        self._budget = budget
        self._max_delay_ms = max_delay_ms
        self._tie_break = tie_break
        self._record_trace = record_trace
        self._optimizer = ConfigurationOptimizer(
            parameters, satisfaction, degrade_order
        )

    @classmethod
    def for_user(
        cls,
        graph: AdaptationGraph,
        registry: FormatRegistry,
        parameters: ParameterSet,
        user: UserProfile,
        peer: Optional[str] = None,
        tie_break: TieBreakPolicy = TieBreakPolicy.PAPER,
        record_trace: bool = True,
    ) -> "QoSPathSelector":
        """Build a selector straight from a user profile."""
        satisfaction = user.satisfaction(peer)
        return cls(
            graph=graph,
            registry=registry,
            parameters=parameters,
            satisfaction=satisfaction,
            budget=user.budget,
            degrade_order=user.degrade_order(parameters.names()),
            tie_break=tie_break,
            record_trace=record_trace,
            max_delay_ms=user.max_delay_ms,
        )

    # ------------------------------------------------------------------
    # The algorithm
    # ------------------------------------------------------------------
    def run(self) -> SelectionResult:
        graph = self._graph
        trace = SelectionTrace() if self._record_trace else None

        # Step 1: VT = {sender}; CS = neighbor(sender).
        settled: Dict[str, _Entry] = {}
        settled_order: List[str] = []
        candidates: Dict[str, _Entry] = {}
        insertion_counter = 0

        sender_entry = _Entry(
            service_id=graph.sender_id,
            parent_id=None,
            via_format=None,
            choice=None,
            accumulated_cost=0.0,
            accumulated_delay_ms=0.0,
            path=(graph.sender_id,),
            formats_on_path=frozenset(),
            insertion_index=-1,
            insertion_round=0,
            update_round=0,
        )
        settled[graph.sender_id] = sender_entry
        settled_order.append(graph.sender_id)

        def consider(edge: Edge, current_round: int) -> None:
            nonlocal insertion_counter
            if edge.target in settled:
                return
            parent = settled[edge.source]
            if edge.format_name in parent.formats_on_path:
                return  # Distinct-format rule (Section 4.2).
            if edge.target in parent.path:
                return  # No repeated services along a path.
            target_vertex = graph.vertex(edge.target)
            upstream = self._upstream_configuration(parent, edge)
            if upstream is None:
                return
            cost = (
                parent.accumulated_cost
                + target_vertex.service.cost
                + edge.transmission_cost
            )
            if cost > self._budget:
                return  # Remaining-budget constraint (Figure 4, Step 2).
            delay = parent.accumulated_delay_ms + edge.delay_ms
            if delay > self._max_delay_ms:
                return  # The user's end-to-end delay bound (Section 3).
            choice = self._optimizer.optimize(
                OptimizationConstraints(
                    upstream=upstream,
                    caps=target_vertex.service.output_caps,
                    fmt=self._registry.get(edge.format_name),
                    bandwidth_bps=edge.bandwidth_bps,
                )
            )
            if choice is None:
                return  # Equation 2 cannot be met on this edge at all.
            incumbent = candidates.get(edge.target)
            if incumbent is not None and choice.satisfaction <= incumbent.satisfaction:
                return
            if incumbent is None:
                insertion_index = insertion_counter
                insertion_round = current_round
                insertion_counter += 1
            else:
                insertion_index = incumbent.insertion_index
                insertion_round = incumbent.insertion_round
            candidates[edge.target] = _Entry(
                service_id=edge.target,
                parent_id=edge.source,
                via_format=edge.format_name,
                choice=choice,
                accumulated_cost=cost,
                accumulated_delay_ms=delay,
                path=parent.path + (edge.target,),
                formats_on_path=parent.formats_on_path | {edge.format_name},
                insertion_index=insertion_index,
                insertion_round=insertion_round,
                update_round=current_round,
            )

        for edge in graph.out_edges(graph.sender_id):
            consider(edge, current_round=0)

        rounds_run = 0
        while candidates:
            rounds_run += 1
            # Step 4: settle the candidate with the highest satisfaction.
            selected = self._pick(candidates)
            if trace is not None:
                trace.append(
                    SelectionRound(
                        number=rounds_run,
                        considered_set=tuple(settled_order),
                        candidate_set=self._candidate_snapshot(candidates),
                        selected=selected.service_id,
                        path=selected.path,
                        frame_rate=(
                            selected.choice.configuration.get_value(FRAME_RATE)
                            if selected.choice is not None
                            else None
                        ),
                        satisfaction=selected.satisfaction,
                    )
                )
            del candidates[selected.service_id]
            settled[selected.service_id] = selected
            settled_order.append(selected.service_id)

            # Step 7: the receiver terminates the search.
            if selected.service_id == graph.receiver_id:
                return self._success(selected, settled, rounds_run, trace)

            # Step 8: fold the settled service's neighbors into CS.
            for edge in graph.out_edges(selected.service_id):
                consider(edge, current_round=rounds_run)

        # Step 3: CS empty and the receiver was never reached.
        return SelectionResult(
            success=False,
            path=(),
            formats=(),
            configuration=None,
            satisfaction=0.0,
            accumulated_cost=0.0,
            rounds_run=rounds_run,
            trace=trace,
            failure_reason="candidate set exhausted before reaching the receiver",
        )

    def run_or_raise(self) -> SelectionResult:
        """Like :meth:`run`, but FAILURE raises :class:`NoPathError`."""
        result = self.run()
        if not result.success:
            raise NoPathError(result.failure_reason)
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _upstream_configuration(
        self, parent: _Entry, edge: Edge
    ) -> Optional[Configuration]:
        """The quality ceiling arriving at ``edge``'s target.

        For regular parents this is the configuration the parent achieved;
        for the sender it is the stored variant encoded in the edge's
        format (one sender output link per variant, Section 4.2).
        """
        if parent.choice is not None:
            return parent.choice.configuration
        vertex = self._graph.vertex(parent.service_id)
        return vertex.source_configurations.get(edge.format_name)

    def _candidate_snapshot(self, candidates: Dict[str, _Entry]) -> Tuple[str, ...]:
        """CS in insertion order, receiver pinned last (Table 1's layout)."""
        ordered = sorted(candidates.values(), key=lambda e: e.insertion_index)
        names = [e.service_id for e in ordered if e.service_id != self._graph.receiver_id]
        if self._graph.receiver_id in candidates:
            names.append(self._graph.receiver_id)
        return tuple(names)

    def _pick(self, candidates: Dict[str, _Entry]) -> _Entry:
        """Highest satisfaction, ties resolved by the configured policy.

        Entries are pre-sorted most-preferred-first for the tie-break, then
        ``max`` (which keeps the first of equals) applies the primary
        satisfaction criterion.
        """
        entries = list(candidates.values())
        receiver_id = self._graph.receiver_id
        policy = self._tie_break
        if policy is TieBreakPolicy.PAPER:
            entries.sort(key=lambda e: service_sort_key(e.service_id), reverse=True)
            entries.sort(key=lambda e: e.update_round, reverse=True)
            entries.sort(key=lambda e: e.service_id == receiver_id)
        elif policy is TieBreakPolicy.ASCENDING_ID:
            entries.sort(key=lambda e: service_sort_key(e.service_id))
        elif policy is TieBreakPolicy.DESCENDING_ID:
            entries.sort(key=lambda e: service_sort_key(e.service_id), reverse=True)
        else:  # INSERTION_ORDER
            entries.sort(key=lambda e: e.insertion_index)
        return max(entries, key=lambda e: e.satisfaction)

    @staticmethod
    def _success(
        receiver_entry: _Entry,
        settled: Dict[str, _Entry],
        rounds_run: int,
        trace: Optional[SelectionTrace],
    ) -> SelectionResult:
        # Step 10: print the reverse path by following the "previous" links
        # from the receiver.  Caution: a settled service on the winning
        # path may itself have been settled via a *different* parent than
        # the winning path uses — but the winning entry's path tuple was
        # recorded when its satisfaction was computed, and every service on
        # it was settled (only settled services feed consider()), so the
        # via-format walk below follows the recorded winning chain.
        via: List[str] = []
        current = receiver_entry
        while current.parent_id is not None:
            via.append(current.via_format)  # type: ignore[arg-type]
            parent = settled[current.parent_id]
            if parent.path != current.path[:-1]:
                # The parent settled along a different route than the one
                # this entry's satisfaction was computed against.  The
                # satisfactions are equal or better along the settled route
                # (entries only improve), so the settled route is reported.
                pass
            current = parent
        via.reverse()
        return SelectionResult(
            success=True,
            path=receiver_entry.path,
            formats=tuple(via),
            configuration=(
                receiver_entry.choice.configuration
                if receiver_entry.choice is not None
                else None
            ),
            satisfaction=receiver_entry.satisfaction,
            accumulated_cost=receiver_entry.accumulated_cost,
            accumulated_delay_ms=receiver_entry.accumulated_delay_ms,
            rounds_run=rounds_run,
            trace=trace,
        )


def build_chain(graph: AdaptationGraph, result: SelectionResult) -> AdaptationChain:
    """Materialize a selector result as an executable adaptation chain."""
    if not result.success:
        raise NoPathError("cannot build a chain from a FAILURE result")
    hops = [ChainHop(graph.vertex(result.path[0]).service, None)]
    hops.extend(
        ChainHop(graph.vertex(service_id).service, fmt)
        for service_id, fmt in zip(result.path[1:], result.formats)
    )
    return AdaptationChain(hops)
