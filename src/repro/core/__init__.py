"""Core algorithms: the paper's primary contribution.

This package implements Section 4 of the paper:

- :mod:`repro.core.parameters` — application-layer QoS parameters and their
  value domains (Section 4.1's ``x_i`` variables);
- :mod:`repro.core.satisfaction` — satisfaction functions ``S_i(x_i)`` and
  the combination function ``f_comb`` (Equation 1);
- :mod:`repro.core.configuration` — concrete parameter assignments for one
  service and their bandwidth requirements;
- :mod:`repro.core.optimizer` — per-service configuration choice subject to
  bandwidth, budget, and quality-monotonicity constraints (Equation 2);
- :mod:`repro.core.graph` — construction of the directed acyclic adaptation
  graph (Section 4.2) and :mod:`repro.core.pruning` optimizations
  (Section 4.3's graph cleanup);
- :mod:`repro.core.selection` — the greedy QoS path-selection algorithm of
  Figure 4, with full per-round tracing (:mod:`repro.core.trace`) so Table 1
  can be regenerated verbatim;
- :mod:`repro.core.baselines` — reference algorithms (exhaustive optimum,
  fewest hops, widest path, cheapest path, random) used in the evaluation.
"""

from repro.core.parameters import (
    ContinuousDomain,
    DiscreteDomain,
    Parameter,
    ParameterSet,
    standard_parameters,
)
from repro.core.satisfaction import (
    CombinedSatisfaction,
    GeometricCombiner,
    HarmonicCombiner,
    LinearSatisfaction,
    LogisticSatisfaction,
    MinimumCombiner,
    PiecewiseLinearSatisfaction,
    SatisfactionFunction,
    StepSatisfaction,
    TableSatisfaction,
    WeightedHarmonicCombiner,
)
from repro.core.configuration import Configuration
from repro.core.optimizer import ConfigurationOptimizer, OptimizationConstraints, OptimizedChoice
from repro.core.graph import AdaptationGraph, AdaptationGraphBuilder, Edge, Vertex
from repro.core.pruning import GraphPruner, PruningReport
from repro.core.selection import (
    QoSPathSelector,
    SelectionResult,
    TieBreakPolicy,
)
from repro.core.trace import SelectionRound, SelectionTrace
from repro.core.baselines import (
    CheapestPathSelector,
    ExhaustiveSelector,
    FewestHopsSelector,
    RandomPathSelector,
    WidestPathSelector,
)

__all__ = [
    "Parameter",
    "ParameterSet",
    "ContinuousDomain",
    "DiscreteDomain",
    "standard_parameters",
    "SatisfactionFunction",
    "LinearSatisfaction",
    "PiecewiseLinearSatisfaction",
    "StepSatisfaction",
    "LogisticSatisfaction",
    "TableSatisfaction",
    "CombinedSatisfaction",
    "HarmonicCombiner",
    "WeightedHarmonicCombiner",
    "MinimumCombiner",
    "GeometricCombiner",
    "Configuration",
    "ConfigurationOptimizer",
    "OptimizationConstraints",
    "OptimizedChoice",
    "AdaptationGraph",
    "AdaptationGraphBuilder",
    "Vertex",
    "Edge",
    "GraphPruner",
    "PruningReport",
    "QoSPathSelector",
    "SelectionResult",
    "TieBreakPolicy",
    "SelectionRound",
    "SelectionTrace",
    "ExhaustiveSelector",
    "FewestHopsSelector",
    "WidestPathSelector",
    "CheapestPathSelector",
    "RandomPathSelector",
]
