"""Graph optimization: removing the extra edges and vertices (Section 4).

The paper applies "some optimization techniques on the graph to remove the
extra edges in the graph" before running the selection algorithm.  We
implement three safe reductions:

1. **Reachability pruning** — drop every vertex the sender cannot reach and
   every vertex from which the receiver is unreachable (and all their
   edges).  Such vertices can never appear on a delivered chain.
2. **Dead-edge pruning** — drop edges whose bandwidth is zero: no
   configuration can cross them (Equation 2 would always fail).
3. **Dominated-parallel-edge pruning** — between the same ordered vertex
   pair, keep only one edge per format; if the builder ever produced
   duplicates, the one with the higher bandwidth and lower cost dominates.
   (Edges in *different* formats are never merged — the distinct-format
   rule makes the format part of the path's identity.)

All reductions are *satisfaction-preserving*: the optimal chain in the
pruned graph equals the optimal chain in the original, which the property
tests verify by comparing exhaustive search results before and after.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.graph import AdaptationGraph, Edge

__all__ = ["PruningReport", "GraphPruner"]


@dataclass(frozen=True)
class PruningReport:
    """What one pruning pass removed."""

    vertices_before: int
    vertices_after: int
    edges_before: int
    edges_after: int

    @property
    def vertices_removed(self) -> int:
        return self.vertices_before - self.vertices_after

    @property
    def edges_removed(self) -> int:
        return self.edges_before - self.edges_after

    def summary(self) -> str:
        return (
            f"pruned {self.vertices_removed} of {self.vertices_before} vertices, "
            f"{self.edges_removed} of {self.edges_before} edges"
        )


class GraphPruner:
    """Applies the Section-4 graph reductions."""

    def prune(self, graph: AdaptationGraph) -> Tuple[AdaptationGraph, PruningReport]:
        """Return the reduced graph plus a report of what was removed."""
        vertices_before = len(graph)
        edges_before = graph.edge_count()

        keep = graph.reachable_from_sender() & graph.co_reachable_to_receiver()
        # The endpoints always survive: even a disconnected scenario keeps a
        # well-formed (if edgeless) graph, which the selector reports as
        # FAILURE rather than crashing.
        keep.add(graph.sender_id)
        keep.add(graph.receiver_id)

        surviving_vertices = [v for v in graph.vertices() if v.service_id in keep]

        best_edge: Dict[Tuple[str, str, str], Edge] = {}
        for edge in graph.edges():
            if edge.source not in keep or edge.target not in keep:
                continue
            if edge.bandwidth_bps <= 0.0:
                continue
            key = (edge.source, edge.target, edge.format_name)
            incumbent = best_edge.get(key)
            if incumbent is None or self._dominates(edge, incumbent):
                best_edge[key] = edge
        surviving_edges = list(best_edge.values())

        pruned = AdaptationGraph(
            surviving_vertices,
            surviving_edges,
            graph.sender_id,
            graph.receiver_id,
        )
        report = PruningReport(
            vertices_before=vertices_before,
            vertices_after=len(pruned),
            edges_before=edges_before,
            edges_after=pruned.edge_count(),
        )
        return pruned, report

    @staticmethod
    def _dominates(challenger: Edge, incumbent: Edge) -> bool:
        """Prefer more bandwidth; break ties toward lower cost."""
        if challenger.bandwidth_bps != incumbent.bandwidth_bps:
            return challenger.bandwidth_bps > incumbent.bandwidth_bps
        return challenger.transmission_cost < incumbent.transmission_cost
