"""Report rendering: traces and results as Markdown / CSV.

The fixed-width renderer in :mod:`repro.core.trace` targets terminals;
papers, wikis, and spreadsheets want Markdown tables and CSV rows.  This
module renders the framework's result objects into both, without any
third-party dependency:

- :func:`trace_to_markdown` / :func:`trace_to_csv` — a
  :class:`~repro.core.trace.SelectionTrace` in Table 1's column layout;
- :func:`result_to_markdown` — a one-result summary block;
- :func:`comparison_table` — generic algorithm-comparison tables (used by
  benches and the examples to render their sweeps).
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, List, Optional, Sequence

from repro.core.selection import SelectionResult
from repro.core.trace import SelectionTrace

__all__ = [
    "markdown_table",
    "trace_to_markdown",
    "trace_to_csv",
    "result_to_markdown",
    "comparison_table",
]

_TRACE_HEADERS = (
    "Round",
    "Considered Set (VT)",
    "Candidate set (CS)",
    "Selected",
    "Selected Path",
    "Frame Rate",
    "Satisfaction",
)


def markdown_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """A GitHub-flavored Markdown table.

    Pipes inside cells are escaped; all cells are stringified.
    """

    def clean(cell: object) -> str:
        return str(cell).replace("|", "\\|")

    lines = [
        "| " + " | ".join(clean(h) for h in headers) + " |",
        "|" + "|".join(" --- " for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(clean(cell) for cell in row) + " |")
    return "\n".join(lines)


def _trace_rows(trace: SelectionTrace) -> List[Sequence[str]]:
    rows: List[Sequence[str]] = []
    for round_ in trace:
        vt, cs = round_.displayed_sets()
        rows.append(
            (
                str(round_.number),
                vt,
                cs,
                round_.selected,
                round_.displayed_path(),
                round_.displayed_frame_rate(),
                round_.displayed_satisfaction(),
            )
        )
    return rows


def trace_to_markdown(trace: SelectionTrace) -> str:
    """The selection trace as a Markdown table (Table 1's layout)."""
    return markdown_table(_TRACE_HEADERS, _trace_rows(trace))


def trace_to_csv(trace: SelectionTrace) -> str:
    """The selection trace as CSV text with a header row."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_TRACE_HEADERS)
    writer.writerows(_trace_rows(trace))
    return buffer.getvalue()


def result_to_markdown(result: SelectionResult, title: str = "Selection result") -> str:
    """A compact Markdown summary of one selection result."""
    lines = [f"### {title}", ""]
    if not result.success:
        lines.append(f"**FAILURE** after {result.rounds_run} rounds: "
                     f"{result.failure_reason}")
        return "\n".join(lines)
    rows = [
        ("selected path", ",".join(result.path)),
        ("via formats", " → ".join(result.formats)),
        ("satisfaction", f"{result.satisfaction:.4f}"),
        ("accumulated cost", f"{result.accumulated_cost:.2f}"),
        ("rounds run", str(result.rounds_run)),
    ]
    frame_rate = result.delivered_frame_rate
    if frame_rate is not None:
        rows.insert(2, ("delivered frame rate", f"{frame_rate:.2f} fps"))
    if result.stats is not None:
        rows.append(
            (
                "optimize calls",
                f"{result.stats.optimize_calls} "
                f"({result.stats.memo_hit_rate * 100:.0f}% memoized)",
            )
        )
    lines.append(markdown_table(("property", "value"), rows))
    return "\n".join(lines)


def comparison_table(
    criteria: Sequence[str],
    entries: Sequence[tuple],
    highlight_best: Optional[int] = None,
) -> str:
    """A Markdown comparison of named alternatives.

    ``entries`` are ``(name, value_1, ..., value_n)`` tuples matching
    ``criteria``.  With ``highlight_best`` set to a column index (into the
    values), the row whose *numeric* value in that column is largest gets
    bolded — handy for "which algorithm won" tables.
    """
    best_row = -1
    if highlight_best is not None and entries:
        def key(entry: tuple) -> float:
            try:
                return float(entry[1 + highlight_best])
            except (TypeError, ValueError):
                return float("-inf")

        best_row = max(range(len(entries)), key=lambda i: key(entries[i]))
    rows = []
    for index, entry in enumerate(entries):
        name, *values = entry
        if index == best_row:
            name = f"**{name}**"
        rows.append((name, *[str(v) for v in values]))
    return markdown_table(("alternative", *criteria), rows)
