"""Name-indexed registry of media formats.

The registry is the single source of truth for format identity within a
scenario: profiles, service descriptors, and graph edges all refer to
formats by name and resolve them here.  Two formats are "the same" for the
purposes of edge matching (Section 4.2 of the paper) iff their names are
equal.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import UnknownFormatError, ValidationError
from repro.formats.format import MediaFormat, MediaType

__all__ = ["FormatRegistry", "standard_registry"]


class FormatRegistry:
    """A mutable, name-indexed collection of :class:`MediaFormat` objects."""

    def __init__(self, formats: Iterable[MediaFormat] = ()) -> None:
        self._formats: Dict[str, MediaFormat] = {}
        for fmt in formats:
            self.register(fmt)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def register(self, fmt: MediaFormat, replace: bool = False) -> MediaFormat:
        """Add ``fmt`` to the registry and return it.

        Re-registering the *identical* format object (or an equal one) is a
        no-op; registering a different format under an existing name raises
        :class:`ValidationError` unless ``replace`` is true.
        """
        existing = self._formats.get(fmt.name)
        if existing is not None and existing != fmt and not replace:
            raise ValidationError(
                f"format {fmt.name!r} already registered with different "
                f"definition; pass replace=True to overwrite"
            )
        self._formats[fmt.name] = fmt
        return fmt

    def define(
        self,
        name: str,
        media_type: MediaType = MediaType.VIDEO,
        codec: str = "",
        container: Optional[str] = None,
        compression_ratio: float = 1.0,
    ) -> MediaFormat:
        """Create, register, and return a new format in one call."""
        fmt = MediaFormat(
            name=name,
            media_type=media_type,
            codec=codec,
            container=container,
            compression_ratio=compression_ratio,
        )
        return self.register(fmt)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> MediaFormat:
        """Return the format registered under ``name``.

        Raises :class:`UnknownFormatError` when absent.
        """
        try:
            return self._formats[name]
        except KeyError:
            raise UnknownFormatError(name) from None

    def __getitem__(self, name: str) -> MediaFormat:
        return self.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._formats

    def __iter__(self) -> Iterator[MediaFormat]:
        return iter(self._formats.values())

    def __len__(self) -> int:
        return len(self._formats)

    def names(self) -> List[str]:
        """All registered format names, in registration order."""
        return list(self._formats)

    def by_media_type(self, media_type: MediaType) -> List[MediaFormat]:
        """All formats of the given media type, in registration order."""
        return [f for f in self._formats.values() if f.media_type is media_type]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FormatRegistry({sorted(self._formats)})"


def standard_registry() -> FormatRegistry:
    """A registry pre-populated with common real-world formats.

    These are the formats the paper's introduction motivates (HTML→WML,
    JPEG→GIF, MPEG video at several qualities, ...).  Compression ratios are
    rough public figures; the algorithms only need them to be plausible and
    monotone.
    """
    registry = FormatRegistry()
    registry.define("raw-video", MediaType.VIDEO, codec="rawvideo", compression_ratio=1.0)
    registry.define("mpeg1-video", MediaType.VIDEO, codec="mpeg1", compression_ratio=26.0)
    registry.define("mpeg2-hq", MediaType.VIDEO, codec="mpeg2", container="ts", compression_ratio=20.0)
    registry.define("mpeg2-sd", MediaType.VIDEO, codec="mpeg2", container="ts", compression_ratio=35.0)
    registry.define("mpeg4-asp", MediaType.VIDEO, codec="mpeg4", container="mp4", compression_ratio=60.0)
    registry.define("h263-mobile", MediaType.VIDEO, codec="h263", container="3gp", compression_ratio=90.0)
    registry.define("motion-jpeg", MediaType.VIDEO, codec="mjpeg", compression_ratio=12.0)
    registry.define("pcm-audio", MediaType.AUDIO, codec="pcm")
    registry.define("cd-audio", MediaType.AUDIO, codec="pcm-cd")
    registry.define("mp3-audio", MediaType.AUDIO, codec="mp3", compression_ratio=11.0)
    registry.define("gsm-audio", MediaType.AUDIO, codec="gsm", compression_ratio=96.0)
    registry.define("jpeg-image", MediaType.IMAGE, codec="jpeg", compression_ratio=10.0)
    registry.define("gif-image", MediaType.IMAGE, codec="gif", compression_ratio=4.0)
    registry.define("png-image", MediaType.IMAGE, codec="png", compression_ratio=3.0)
    registry.define("bw-gif-image", MediaType.IMAGE, codec="gif-2color", compression_ratio=8.0)
    registry.define("html-text", MediaType.TEXT, codec="html", compression_ratio=1.0)
    registry.define("wml-text", MediaType.TEXT, codec="wml", compression_ratio=1.0)
    registry.define("plain-text", MediaType.TEXT, codec="txt", compression_ratio=1.0)
    return registry
