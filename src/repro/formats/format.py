"""The media-format model.

A :class:`MediaFormat` describes one concrete encoding of a media stream:
its media type (video, audio, image, text), codec and container names, and a
*compression ratio* that turns raw pixel data into on-the-wire bits.  The
compression ratio is the piece the QoS algorithms depend on: together with
the QoS parameters of a configuration (frame rate, resolution, color depth,
audio bitrate) it determines the bandwidth a stream requires, which is the
constraint in Equation 2 of the paper.

Bandwidth model
---------------

For a video stream the required bandwidth is::

    bits_per_frame = resolution_pixels * color_depth / compression_ratio
    video_bps      = frame_rate * bits_per_frame

Audio contributes ``audio_kbps * 1000`` bits per second.  Non-video formats
simply drop the video term.  The model is deliberately simple — the paper's
algorithms consume only the *aggregate* bandwidth requirement — but it is
monotone in every QoS parameter, which the configuration optimizer relies
on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.errors import ValidationError

__all__ = ["MediaType", "MediaFormat"]


class MediaType(enum.Enum):
    """The broad class of media a format encodes."""

    VIDEO = "video"
    AUDIO = "audio"
    IMAGE = "image"
    TEXT = "text"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class MediaFormat:
    """An immutable description of one media encoding.

    Parameters
    ----------
    name:
        Unique registry key, e.g. ``"mpeg2-hq"`` or the paper's abstract
        labels ``"F5"``.
    media_type:
        The :class:`MediaType` this format encodes.
    codec:
        Codec identifier (informational; equality is by ``name``).
    container:
        Optional container identifier (e.g. ``"mp4"``).
    compression_ratio:
        Raw-to-encoded compression factor, ``>= 1``.  Raw video bits are
        divided by this factor to obtain on-the-wire bits.  Text and image
        formats may use it the same way for their payload model.
    attributes:
        Free-form descriptive attributes (MPEG-7 style metadata).  Not used
        by the algorithms; carried for round-tripping profiles.
    """

    name: str
    media_type: MediaType = MediaType.VIDEO
    codec: str = ""
    container: Optional[str] = None
    compression_ratio: float = 1.0
    attributes: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("media format name must be non-empty")
        if self.compression_ratio < 1.0:
            raise ValidationError(
                f"compression_ratio must be >= 1, got {self.compression_ratio}"
                f" for format {self.name!r}"
            )

    def cache_key(self) -> Tuple:
        """A stable, hashable tuple identifying this format exactly.

        Used by the plan-cache fingerprint; every field participates so any
        mutation (even of descriptive attributes) changes the key.
        """
        return (
            self.name,
            self.media_type.value,
            self.codec,
            self.container,
            self.compression_ratio,
            tuple(sorted(self.attributes.items())),
        )

    # The generated dataclass hash would choke on the ``attributes``
    # mapping; hash the canonical key instead (consistent with field-wise
    # equality).
    def __hash__(self) -> int:
        return hash(self.cache_key())

    # ------------------------------------------------------------------
    # Bandwidth model
    # ------------------------------------------------------------------
    def bits_per_frame(self, resolution_pixels: float, color_depth: float) -> float:
        """Encoded size of one video frame, in bits.

        ``resolution_pixels`` is the total pixel count (width x height) and
        ``color_depth`` the bits per pixel before compression.
        """
        if resolution_pixels < 0 or color_depth < 0:
            raise ValidationError("resolution and color depth must be >= 0")
        return resolution_pixels * color_depth / self.compression_ratio

    def required_bandwidth(
        self,
        frame_rate: float = 0.0,
        resolution_pixels: float = 0.0,
        color_depth: float = 0.0,
        audio_kbps: float = 0.0,
    ) -> float:
        """Bandwidth (bits/second) needed to stream this format.

        The video term applies only to :attr:`MediaType.VIDEO` formats; the
        audio term applies to video (muxed audio) and audio formats.  Image
        and text formats are modeled as a one-frame-per-second stream so
        that they still exert back-pressure on slow links.
        """
        video_bps = 0.0
        audio_bps = 0.0
        if self.media_type is MediaType.VIDEO:
            video_bps = frame_rate * self.bits_per_frame(resolution_pixels, color_depth)
            audio_bps = audio_kbps * 1000.0
        elif self.media_type is MediaType.AUDIO:
            audio_bps = audio_kbps * 1000.0
        else:
            # One still frame (or page) per second keeps the model monotone.
            video_bps = self.bits_per_frame(resolution_pixels, color_depth)
        return video_bps + audio_bps

    def max_frame_rate(
        self,
        bandwidth_bps: float,
        resolution_pixels: float,
        color_depth: float,
        audio_kbps: float = 0.0,
    ) -> float:
        """Invert :meth:`required_bandwidth` for the frame-rate parameter.

        Returns the highest frame rate this format can sustain over a link
        of ``bandwidth_bps``, with the other parameters held fixed.  Returns
        ``0.0`` when even the audio alone does not fit.
        """
        if self.media_type is not MediaType.VIDEO:
            raise ValidationError(
                f"max_frame_rate is only defined for video formats, "
                f"not {self.media_type}"
            )
        residual = bandwidth_bps - audio_kbps * 1000.0
        if residual <= 0:
            return 0.0
        per_frame = self.bits_per_frame(resolution_pixels, color_depth)
        if per_frame <= 0:
            raise ValidationError(
                "cannot invert bandwidth for a zero-size frame; "
                "set resolution and color depth first"
            )
        return residual / per_frame

    def __str__(self) -> str:
        return self.name
