"""Content variants: one encoded instance of a content item.

The content profile (Section 3) lists "all the possible variants of the
content", each in a certain format.  A :class:`ContentVariant` couples a
media format with the QoS parameter values the variant was encoded at; it is
the unit that flows out of the sender, through trans-coding services, and
over network links in the runtime pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Tuple

from repro.core.configuration import Configuration
from repro.errors import ValidationError
from repro.formats.format import MediaFormat

__all__ = ["ContentVariant"]


@dataclass(frozen=True)
class ContentVariant:
    """One encoded variant of a content item.

    Parameters
    ----------
    format:
        The :class:`MediaFormat` the variant is encoded in.
    configuration:
        The QoS parameter values of the encoding (frame rate, resolution,
        color depth, audio quality, ...).
    title:
        Optional human-readable label, carried through transcoding.
    metadata:
        Free-form MPEG-7 style descriptive metadata.
    """

    format: MediaFormat
    configuration: Configuration
    title: str = ""
    metadata: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.configuration, Configuration):
            raise ValidationError(
                "ContentVariant.configuration must be a Configuration"
            )

    def cache_key(self) -> Tuple:
        """A stable, hashable tuple identifying this variant exactly."""
        return (
            self.format.cache_key(),
            tuple(sorted(self.configuration.as_dict().items())),
            self.title,
            tuple(sorted(self.metadata.items())),
        )

    # The ``metadata`` mapping defeats the generated dataclass hash.
    def __hash__(self) -> int:
        return hash(self.cache_key())

    def required_bandwidth(self) -> float:
        """Bits/second needed to stream this variant as encoded."""
        return self.configuration.required_bandwidth(self.format)

    def degraded(self, fmt: MediaFormat, limits: Mapping[str, float]) -> "ContentVariant":
        """A new variant re-encoded into ``fmt`` with capped parameters.

        This is the primitive the synthetic transcoders use: quality can
        only stay or go down (the configuration is capped, never raised),
        matching Section 4.4's assumption.
        """
        return ContentVariant(
            format=fmt,
            configuration=self.configuration.capped_by(limits),
            title=self.title,
            metadata=dict(self.metadata),
        )

    def __str__(self) -> str:
        label = self.title or "variant"
        return f"{label} [{self.format.name}]"
