"""Media formats, the format registry, and content variants.

The adaptation graph of the paper (Section 4.2) is wired by *formats*: an
edge exists where the output format of one trans-coding service matches an
input format of another.  This package provides:

- :class:`~repro.formats.format.MediaFormat` — an immutable description of a
  concrete media encoding (type, codec, container, compression model);
- :class:`~repro.formats.registry.FormatRegistry` — a name-indexed registry,
  plus :func:`~repro.formats.registry.standard_registry` with common formats;
- :class:`~repro.formats.variants.ContentVariant` — one encoded variant of a
  content item (format + QoS parameter values), the unit that flows through
  transcoders and network links.
"""

from repro.formats.format import MediaFormat, MediaType
from repro.formats.registry import FormatRegistry, standard_registry
from repro.formats.variants import ContentVariant

__all__ = [
    "MediaFormat",
    "MediaType",
    "FormatRegistry",
    "standard_registry",
    "ContentVariant",
]
