"""Service descriptors: the advertised description of a trans-coding service.

Section 3 of the paper ("Profile of Intermediaries") says a service
description includes "the possible input and output format to the service,
the required processing and computation power of the service, and maybe the
cost for using the service".  :class:`ServiceDescriptor` is exactly that
record, plus the per-parameter *output capabilities* the configuration
optimizer needs (a transcoder that emits at most 15 fps caps the frame-rate
parameter at 15).

Two special kinds exist (Section 4.2): the sender is "a special case vertex
with only output links" and the receiver "another special vertex with only
input links".  Both are represented as descriptors with the corresponding
:class:`ServiceKind` so the graph and selector treat all vertices uniformly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.errors import ValidationError

__all__ = ["ServiceKind", "ServiceDescriptor", "SERVICE_TIERS"]

#: Hardware-acceleration tiers a service can run on.  ``sw`` is the
#: commodity software tier; ``hw`` models accelerated fleets (ASIC/GPU
#: transcoders): typically a higher per-use cost but a much lower CPU
#: demand per megabit.
SERVICE_TIERS = ("sw", "hw")


class ServiceKind(enum.Enum):
    """What role a vertex plays in the adaptation graph."""

    TRANSCODER = "transcoder"
    SENDER = "sender"
    RECEIVER = "receiver"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class ServiceDescriptor:
    """Declarative description of one trans-coding service.

    Parameters
    ----------
    service_id:
        Unique identifier within a catalog (the paper uses ``T1``..``T20``).
    input_formats:
        Names of formats the service accepts (the input links of Figure 2).
        Must be empty for senders and non-empty otherwise.
    output_formats:
        Names of formats the service can produce (the output links of
        Figure 2).  Must be empty for receivers and non-empty otherwise.
    output_caps:
        Upper bounds on QoS parameter values of the *output* stream, by
        parameter name.  Parameters not listed are unconstrained by the
        service.  For receivers these are the rendering limits of the
        device (display resolution, color depth, ...).
    cost:
        Monetary cost of one use of the service (Section 4.4's
        ``transcoding cost``; the transmission part lives on graph edges).
    cpu_factor:
        Processing requirement per input megabit per second (abstract
        MIPS/Mbps).  Used for placement feasibility and pipeline latency.
    memory_mb:
        Resident memory required to run the service, in megabytes.
    kind:
        :class:`ServiceKind`; defaults to a regular transcoder.
    provider / description:
        Informational metadata carried from the advertisement.
    tier:
        Hardware tier the service runs on, from :data:`SERVICE_TIERS`.
        ``hw`` instances model accelerated fleets with distinct
        cost/CPU curves; policy rules can constrain planning to one
        tier (``force_tier``).
    """

    service_id: str
    input_formats: Tuple[str, ...] = ()
    output_formats: Tuple[str, ...] = ()
    output_caps: Mapping[str, float] = field(default_factory=dict)
    cost: float = 0.0
    cpu_factor: float = 1.0
    memory_mb: float = 16.0
    kind: ServiceKind = ServiceKind.TRANSCODER
    provider: str = ""
    description: str = ""
    tier: str = "sw"

    def __post_init__(self) -> None:
        if not self.service_id:
            raise ValidationError("service_id must be non-empty")
        if self.tier not in SERVICE_TIERS:
            raise ValidationError(
                f"{self.service_id}: tier must be one of "
                f"{', '.join(SERVICE_TIERS)}, got {self.tier!r}"
            )
        object.__setattr__(self, "input_formats", tuple(self.input_formats))
        object.__setattr__(self, "output_formats", tuple(self.output_formats))
        if self.cost < 0:
            raise ValidationError(f"{self.service_id}: cost must be >= 0")
        if self.cpu_factor < 0:
            raise ValidationError(f"{self.service_id}: cpu_factor must be >= 0")
        if self.memory_mb < 0:
            raise ValidationError(f"{self.service_id}: memory_mb must be >= 0")
        if self.kind is ServiceKind.SENDER:
            if self.input_formats:
                raise ValidationError(
                    f"{self.service_id}: a sender has only output links"
                )
            if not self.output_formats:
                raise ValidationError(
                    f"{self.service_id}: a sender needs at least one output format"
                )
        elif self.kind is ServiceKind.RECEIVER:
            if self.output_formats:
                raise ValidationError(
                    f"{self.service_id}: a receiver has only input links"
                )
            if not self.input_formats:
                raise ValidationError(
                    f"{self.service_id}: a receiver needs at least one input format"
                )
        else:
            if not self.input_formats or not self.output_formats:
                raise ValidationError(
                    f"{self.service_id}: a transcoder needs input and output formats"
                )
        for name, value in self.output_caps.items():
            if value < 0:
                raise ValidationError(
                    f"{self.service_id}: cap for {name!r} must be >= 0, got {value}"
                )

    def cache_key(self) -> Tuple:
        """A stable, hashable tuple identifying this descriptor exactly."""
        return (
            self.service_id,
            self.input_formats,
            self.output_formats,
            tuple(sorted(self.output_caps.items())),
            self.cost,
            self.cpu_factor,
            self.memory_mb,
            self.kind.value,
            self.provider,
            self.description,
            self.tier,
        )

    # The ``output_caps`` mapping defeats the generated dataclass hash.
    def __hash__(self) -> int:
        return hash(self.cache_key())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def accepts(self, format_name: str) -> bool:
        """Whether ``format_name`` is one of this service's input links."""
        return format_name in self.input_formats

    def produces(self, format_name: str) -> bool:
        """Whether ``format_name`` is one of this service's output links."""
        return format_name in self.output_formats

    def can_follow(self, upstream: "ServiceDescriptor") -> bool:
        """Whether any output of ``upstream`` matches an input of this
        service (the edge-existence test of Section 4.2)."""
        return any(self.accepts(fmt) for fmt in upstream.output_formats)

    def matching_formats(self, upstream: "ServiceDescriptor") -> Tuple[str, ...]:
        """All formats on which ``upstream`` can feed this service."""
        return tuple(f for f in upstream.output_formats if self.accepts(f))

    def cpu_required(self, input_bps: float) -> float:
        """Abstract CPU demand (MIPS) for a given input data rate."""
        if input_bps < 0:
            raise ValidationError("input_bps must be >= 0")
        return self.cpu_factor * input_bps / 1e6

    @property
    def is_sender(self) -> bool:
        return self.kind is ServiceKind.SENDER

    @property
    def is_receiver(self) -> bool:
        return self.kind is ServiceKind.RECEIVER

    @property
    def is_transcoder(self) -> bool:
        return self.kind is ServiceKind.TRANSCODER

    def __str__(self) -> str:
        return self.service_id


def sender_descriptor(
    service_id: str,
    output_formats: Tuple[str, ...],
    output_caps: Optional[Mapping[str, float]] = None,
) -> ServiceDescriptor:
    """Convenience constructor for the sender pseudo-vertex."""
    return ServiceDescriptor(
        service_id=service_id,
        output_formats=tuple(output_formats),
        output_caps=dict(output_caps or {}),
        kind=ServiceKind.SENDER,
    )


def receiver_descriptor(
    service_id: str,
    input_formats: Tuple[str, ...],
    rendering_caps: Optional[Mapping[str, float]] = None,
) -> ServiceDescriptor:
    """Convenience constructor for the receiver pseudo-vertex.

    ``rendering_caps`` are the device's rendering limits (display
    resolution, color depth, maximum frame rate the hardware can paint).
    """
    return ServiceDescriptor(
        service_id=service_id,
        input_formats=tuple(input_formats),
        output_caps=dict(rendering_caps or {}),
        kind=ServiceKind.RECEIVER,
    )
