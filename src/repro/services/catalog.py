"""The service catalog: every trans-coding service known to a scenario.

Graph construction (Section 4.2) draws its intermediate vertices from "the
list of available trans-coding services" gathered from the intermediary
profiles.  :class:`ServiceCatalog` is that list, indexed by service id, with
the format-based queries the builder and the discovery layer need.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import UnknownServiceError, ValidationError
from repro.services.descriptor import ServiceDescriptor, ServiceKind

__all__ = ["ServiceCatalog", "service_sort_key"]

_NUMERIC_SUFFIX = re.compile(r"^(.*?)(\d+)$")


def service_sort_key(service_id: str) -> Tuple[str, float]:
    """Sort key treating trailing digits numerically: T2 < T10 < T20.

    Pure-text ids sort after their prefix group's numbered ids would — in
    practice the paper's ids are ``T<n>`` plus ``sender``/``receiver``, and
    this key orders them the way the paper lists them.
    """
    match = _NUMERIC_SUFFIX.match(service_id)
    if match:
        return (match.group(1), float(match.group(2)))
    return (service_id, -1.0)


class ServiceCatalog:
    """A mutable, id-indexed collection of service descriptors."""

    def __init__(self, descriptors: Iterable[ServiceDescriptor] = ()) -> None:
        self._services: Dict[str, ServiceDescriptor] = {}
        self._generation = 0
        for descriptor in descriptors:
            self.add(descriptor)

    @property
    def generation(self) -> int:
        """Monotonic mutation counter.

        Bumped by every successful :meth:`add` / :meth:`remove`.  Plan
        fingerprints embed this counter, so any catalog change invalidates
        every cached plan computed against the old contents.
        """
        return self._generation

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, descriptor: ServiceDescriptor, replace: bool = False) -> ServiceDescriptor:
        """Register a descriptor; duplicate ids raise unless ``replace``."""
        existing = self._services.get(descriptor.service_id)
        if existing is not None and existing != descriptor and not replace:
            raise ValidationError(
                f"service {descriptor.service_id!r} already in catalog; "
                f"pass replace=True to overwrite"
            )
        self._services[descriptor.service_id] = descriptor
        self._generation += 1
        return descriptor

    def remove(self, service_id: str) -> ServiceDescriptor:
        """Remove and return a descriptor; unknown ids raise."""
        try:
            descriptor = self._services.pop(service_id)
        except KeyError:
            raise UnknownServiceError(service_id) from None
        self._generation += 1
        return descriptor

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, service_id: str) -> ServiceDescriptor:
        try:
            return self._services[service_id]
        except KeyError:
            raise UnknownServiceError(service_id) from None

    def __getitem__(self, service_id: str) -> ServiceDescriptor:
        return self.get(service_id)

    def __contains__(self, service_id: object) -> bool:
        return service_id in self._services

    def __iter__(self) -> Iterator[ServiceDescriptor]:
        """Iterate in natural id order (T1, T2, ..., T10, ...)."""
        for service_id in self.ids():
            yield self._services[service_id]

    def __len__(self) -> int:
        return len(self._services)

    def ids(self) -> List[str]:
        """All service ids in natural order."""
        return sorted(self._services, key=service_sort_key)

    # ------------------------------------------------------------------
    # Format-based queries (used by graph construction and discovery)
    # ------------------------------------------------------------------
    def accepting(self, format_name: str) -> List[ServiceDescriptor]:
        """Services with ``format_name`` among their input links."""
        return [s for s in self if s.accepts(format_name)]

    def producing(self, format_name: str) -> List[ServiceDescriptor]:
        """Services with ``format_name`` among their output links."""
        return [s for s in self if s.produces(format_name)]

    def transcoders(self) -> List[ServiceDescriptor]:
        """All regular (non-sender, non-receiver) services."""
        return [s for s in self if s.kind is ServiceKind.TRANSCODER]

    def successors_of(self, descriptor: ServiceDescriptor) -> List[ServiceDescriptor]:
        """Services that can directly follow ``descriptor`` (format match)."""
        return [s for s in self if s is not descriptor and s.can_follow(descriptor)]

    def find_sender(self) -> Optional[ServiceDescriptor]:
        """The sender pseudo-service, if the catalog holds one."""
        for descriptor in self:
            if descriptor.is_sender:
                return descriptor
        return None

    def find_receiver(self) -> Optional[ServiceDescriptor]:
        """The receiver pseudo-service, if the catalog holds one."""
        for descriptor in self:
            if descriptor.is_receiver:
                return descriptor
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServiceCatalog({self.ids()})"
