"""Trans-coding services: descriptors, synthetic transcoders, catalogs.

The vertices of the paper's adaptation graph are trans-coding services
(Section 4.2, Figure 2): each has input links (accepted formats), output
links (producible formats), resource requirements, and a usage cost.  This
package provides:

- :class:`~repro.services.descriptor.ServiceDescriptor` — the declarative
  description an intermediary advertises (JINI/SLP/WSDL stand-in);
- :class:`~repro.services.transcoder.SyntheticTranscoder` — an *executable*
  transcoder that actually converts content variants, degrading quality
  monotonically;
- :class:`~repro.services.catalog.ServiceCatalog` — the id-indexed service
  collection graph construction draws from;
- :class:`~repro.services.chains.AdaptationChain` — a validated sequence of
  services (the output of path selection), executable end to end.
"""

from repro.services.descriptor import ServiceDescriptor, ServiceKind
from repro.services.transcoder import SyntheticTranscoder
from repro.services.catalog import ServiceCatalog, service_sort_key
from repro.services.chains import AdaptationChain, ChainHop

__all__ = [
    "ServiceDescriptor",
    "ServiceKind",
    "SyntheticTranscoder",
    "ServiceCatalog",
    "service_sort_key",
    "AdaptationChain",
    "ChainHop",
]
