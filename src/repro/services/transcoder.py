"""Executable synthetic transcoders.

The paper's evaluation never runs real codecs — and neither does the
selection algorithm, which consumes only descriptor-level information.  To
still exercise a full end-to-end pipeline (examples, runtime benches) we
provide :class:`SyntheticTranscoder`: it consumes a
:class:`~repro.formats.variants.ContentVariant`, checks the format against
the descriptor's input links, and emits a new variant in the requested
output format with the configuration capped by the service's output
capabilities.  Quality therefore only ever decreases, matching the
assumption the greedy selector's optimality rests on (Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ChainValidationError, UnknownFormatError, ValidationError
from repro.formats.registry import FormatRegistry
from repro.formats.variants import ContentVariant
from repro.services.descriptor import ServiceDescriptor, ServiceKind

__all__ = ["SyntheticTranscoder", "TranscodeResult"]


@dataclass(frozen=True)
class TranscodeResult:
    """Outcome of one transcoding operation.

    ``output`` is the produced variant; ``cpu_mips`` and ``memory_mb`` are
    the resources the operation consumed, derived from the descriptor and
    the input data rate (used by the runtime pipeline for latency and by
    placement checks).
    """

    output: ContentVariant
    cpu_mips: float
    memory_mb: float


class SyntheticTranscoder:
    """An executable stand-in for a real trans-coding service."""

    def __init__(self, descriptor: ServiceDescriptor, registry: FormatRegistry) -> None:
        if descriptor.kind is not ServiceKind.TRANSCODER:
            raise ValidationError(
                f"{descriptor.service_id}: only TRANSCODER descriptors are executable"
            )
        for name in (*descriptor.input_formats, *descriptor.output_formats):
            if name not in registry:
                raise UnknownFormatError(name)
        self._descriptor = descriptor
        self._registry = registry

    @property
    def descriptor(self) -> ServiceDescriptor:
        return self._descriptor

    def transcode(
        self,
        variant: ContentVariant,
        output_format: Optional[str] = None,
    ) -> TranscodeResult:
        """Convert ``variant`` into ``output_format``.

        When ``output_format`` is omitted and the service has exactly one
        output link, that one is used; with several output links the caller
        must choose (the selection algorithm always does).

        Raises :class:`ChainValidationError` when the variant's format is
        not an input link of this service or the requested output is not an
        output link.
        """
        descriptor = self._descriptor
        if not descriptor.accepts(variant.format.name):
            raise ChainValidationError(
                f"{descriptor.service_id} does not accept format "
                f"{variant.format.name!r} (inputs: {list(descriptor.input_formats)})"
            )
        if output_format is None:
            if len(descriptor.output_formats) != 1:
                raise ChainValidationError(
                    f"{descriptor.service_id} has {len(descriptor.output_formats)} "
                    f"output formats; specify which one to produce"
                )
            output_format = descriptor.output_formats[0]
        if not descriptor.produces(output_format):
            raise ChainValidationError(
                f"{descriptor.service_id} cannot produce format "
                f"{output_format!r} (outputs: {list(descriptor.output_formats)})"
            )
        target = self._registry.get(output_format)
        output = variant.degraded(target, descriptor.output_caps)
        input_bps = variant.required_bandwidth()
        return TranscodeResult(
            output=output,
            cpu_mips=descriptor.cpu_required(input_bps),
            memory_mb=descriptor.memory_mb,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SyntheticTranscoder({self._descriptor.service_id})"
