"""Adaptation chains: validated, executable service sequences.

The output of the path-selection algorithm is "a chain of trans-coding
services, starting from the sender node and ending with the receiver node"
(Section 4.4).  :class:`AdaptationChain` is that chain as a first-class
object: it validates the structural rules of Section 4.2 on construction —

- consecutive services are joined by a format that is an output link of the
  upstream service and an input link of the downstream one;
- all formats along the chain are pairwise distinct (the acyclicity rule);
- the chain starts at a sender and ends at a receiver (when ``strict``);

and can execute itself over a content variant via the synthetic
transcoders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ChainValidationError
from repro.formats.registry import FormatRegistry
from repro.formats.variants import ContentVariant
from repro.services.descriptor import ServiceDescriptor, ServiceKind
from repro.services.transcoder import SyntheticTranscoder

__all__ = ["ChainHop", "AdaptationChain"]


@dataclass(frozen=True)
class ChainHop:
    """One hop of a chain: a service reached *via* a format.

    ``via_format`` is the format on the edge entering ``service`` (``None``
    only for the sender, which has no incoming edge).
    """

    service: ServiceDescriptor
    via_format: Optional[str] = None

    def __str__(self) -> str:
        if self.via_format is None:
            return self.service.service_id
        return f"--{self.via_format}--> {self.service.service_id}"


class AdaptationChain:
    """A validated sequence of services from sender to receiver."""

    def __init__(self, hops: Sequence[ChainHop], strict: bool = True) -> None:
        if len(hops) < 2:
            raise ChainValidationError("a chain needs at least a sender and a receiver")
        self._hops: Tuple[ChainHop, ...] = tuple(hops)
        self._validate(strict)

    # ------------------------------------------------------------------
    # Validation (the Section 4.2 structural rules)
    # ------------------------------------------------------------------
    def _validate(self, strict: bool) -> None:
        first, last = self._hops[0], self._hops[-1]
        if first.via_format is not None:
            raise ChainValidationError("the first hop (sender) has no incoming format")
        if strict and first.service.kind is not ServiceKind.SENDER:
            raise ChainValidationError(
                f"chain must start at a sender, got {first.service.service_id!r}"
            )
        if strict and last.service.kind is not ServiceKind.RECEIVER:
            raise ChainValidationError(
                f"chain must end at a receiver, got {last.service.service_id!r}"
            )
        seen_services = set()
        seen_formats = set()
        for upstream, downstream in zip(self._hops, self._hops[1:]):
            fmt = downstream.via_format
            if fmt is None:
                raise ChainValidationError(
                    f"hop into {downstream.service.service_id!r} is missing its format"
                )
            if not upstream.service.produces(fmt):
                raise ChainValidationError(
                    f"{upstream.service.service_id} does not produce {fmt!r}"
                )
            if not downstream.service.accepts(fmt):
                raise ChainValidationError(
                    f"{downstream.service.service_id} does not accept {fmt!r}"
                )
            if fmt in seen_formats:
                raise ChainValidationError(
                    f"format {fmt!r} repeats along the chain "
                    f"(violates the distinct-format rule)"
                )
            seen_formats.add(fmt)
        for hop in self._hops:
            if hop.service.service_id in seen_services:
                raise ChainValidationError(
                    f"service {hop.service.service_id!r} repeats along the chain"
                )
            seen_services.add(hop.service.service_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def hops(self) -> Tuple[ChainHop, ...]:
        return self._hops

    def service_ids(self) -> List[str]:
        """The service ids along the chain, sender first."""
        return [hop.service.service_id for hop in self._hops]

    def formats(self) -> List[str]:
        """The edge formats along the chain, in traversal order."""
        return [hop.via_format for hop in self._hops[1:] if hop.via_format is not None]

    def transcoder_hops(self) -> List[ChainHop]:
        """The hops that perform actual transcoding (neither endpoint)."""
        return [h for h in self._hops if h.service.kind is ServiceKind.TRANSCODER]

    def total_cost(self) -> float:
        """Sum of the per-use costs of every service on the chain."""
        return sum(hop.service.cost for hop in self._hops)

    def __len__(self) -> int:
        return len(self._hops)

    def __iter__(self) -> Iterator[ChainHop]:
        return iter(self._hops)

    def __str__(self) -> str:
        return ",".join(self.service_ids())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, variant: ContentVariant, registry: FormatRegistry) -> ContentVariant:
        """Run the content through every transcoder on the chain.

        The variant entering each transcoder must match that hop's
        ``via_format``; the transcoder re-encodes it into the next hop's
        format.  The final hop (receiver) performs no transcoding, but its
        rendering caps are applied so the returned variant is what the
        device actually presents.
        """
        current = variant
        hops = self._hops
        for index in range(1, len(hops)):
            hop = hops[index]
            if current.format.name != hop.via_format:
                raise ChainValidationError(
                    f"variant in format {current.format.name!r} reached "
                    f"{hop.service.service_id} expecting {hop.via_format!r}"
                )
            if hop.service.kind is ServiceKind.RECEIVER:
                current = current.degraded(current.format, hop.service.output_caps)
                break
            next_format = hops[index + 1].via_format if index + 1 < len(hops) else None
            if next_format is None:
                raise ChainValidationError(
                    f"non-receiver hop {hop.service.service_id} has no outgoing format"
                )
            transcoder = SyntheticTranscoder(hop.service, registry)
            current = transcoder.transcode(current, next_format).output
        return current


def chain_from_services(
    services: Iterable[ServiceDescriptor],
    formats: Iterable[str],
    strict: bool = True,
) -> AdaptationChain:
    """Build a chain from parallel sequences of services and edge formats.

    ``formats`` has one entry per edge, i.e. ``len(services) - 1`` entries.
    """
    service_list = list(services)
    format_list = list(formats)
    if len(format_list) != len(service_list) - 1:
        raise ChainValidationError(
            f"need {len(service_list) - 1} formats for {len(service_list)} "
            f"services, got {len(format_list)}"
        )
    hops = [ChainHop(service_list[0], None)]
    hops.extend(
        ChainHop(service, fmt)
        for service, fmt in zip(service_list[1:], format_list)
    )
    return AdaptationChain(hops, strict=strict)
