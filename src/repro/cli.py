"""Command-line interface.

A small operational surface over the library::

    python -m repro.cli table1                 # regenerate the paper's Table 1
    python -m repro.cli figure6 [--without-t7] # the worked example's result
    python -m repro.cli synthetic --seed 7 --services 30 [--deliver 10]
    python -m repro.cli analyze figure6        # graph analytics
    python -m repro.cli catalog --seed 7       # dump a catalog as WSDL XML

(Also installed as the ``repro`` console script.)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.analysis import GraphAnalysis
from repro.discovery.wsdl import catalog_to_wsdl
from repro.workloads.io import load_scenario, save_scenario
from repro.workloads.lint import Severity, lint_scenario
from repro.workloads.paper import figure3_scenario, figure6_scenario
from repro.workloads.scenario import Scenario
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

__all__ = ["main", "build_parser"]


def _paper_scenario(name: str, include_t7: bool = True) -> Scenario:
    if name == "figure6":
        return figure6_scenario(include_t7=include_t7)
    if name == "figure3":
        return figure3_scenario()
    raise SystemExit(f"unknown paper scenario: {name!r} (figure3|figure6)")


def cmd_table1(args: argparse.Namespace, out) -> int:
    result = figure6_scenario().select()
    print(result.trace.render(), file=out)
    print(file=out)
    print(result.describe(), file=out)
    return 0


def cmd_figure6(args: argparse.Namespace, out) -> int:
    scenario = figure6_scenario(include_t7=not args.without_t7)
    result = scenario.select()
    if not result.success:
        print(f"FAILURE: {result.failure_reason}", file=out)
        return 1
    print(f"selected path:  {','.join(result.path)}", file=out)
    print(f"via formats:    {' -> '.join(result.formats)}", file=out)
    print(f"frame rate:     {result.delivered_frame_rate:.2f} fps", file=out)
    print(f"satisfaction:   {result.satisfaction:.4f}", file=out)
    print(f"cost:           {result.accumulated_cost:.2f}", file=out)
    return 0


def cmd_synthetic(args: argparse.Namespace, out) -> int:
    scenario = generate_scenario(
        SyntheticConfig(
            seed=args.seed,
            n_services=args.services,
            n_formats=args.formats,
            n_nodes=args.nodes,
        )
    )
    print(scenario.description, file=out)
    result = scenario.select()
    if not result.success:
        print(f"FAILURE: {result.failure_reason}", file=out)
        return 1
    print(result.describe(), file=out)
    if args.deliver is not None:
        session = scenario.session()
        plan = session.plan()
        report = session.deliver(plan, duration_s=args.deliver)
        print(file=out)
        print(report.summary(), file=out)
    return 0


def cmd_analyze(args: argparse.Namespace, out) -> int:
    if args.scenario in ("figure3", "figure6"):
        scenario = _paper_scenario(args.scenario)
    else:
        try:
            seed = int(args.scenario)
        except ValueError:
            raise SystemExit(
                f"scenario must be figure3, figure6, or a synthetic seed, "
                f"got {args.scenario!r}"
            )
        scenario = generate_scenario(SyntheticConfig(seed=seed))
    graph = scenario.build_graph()
    print(f"scenario: {scenario.name}", file=out)
    print(GraphAnalysis(graph).summary(), file=out)
    return 0


def cmd_catalog(args: argparse.Namespace, out) -> int:
    if args.paper:
        scenario = _paper_scenario(args.paper)
    else:
        scenario = generate_scenario(SyntheticConfig(seed=args.seed))
    print(catalog_to_wsdl(scenario.catalog), file=out)
    return 0


def cmd_export(args: argparse.Namespace, out) -> int:
    if args.paper:
        scenario = _paper_scenario(args.paper)
    else:
        scenario = generate_scenario(SyntheticConfig(seed=args.seed))
    path = save_scenario(scenario, args.path)
    print(f"wrote {scenario.name!r} to {path}", file=out)
    return 0


def cmd_solve(args: argparse.Namespace, out) -> int:
    scenario = load_scenario(args.path)
    print(f"scenario: {scenario.name}", file=out)
    result = scenario.select()
    if not result.success:
        print(f"FAILURE: {result.failure_reason}", file=out)
        return 1
    print(result.describe(), file=out)
    if args.trace and result.trace is not None:
        print(file=out)
        print(result.trace.render(), file=out)
    return 0


def cmd_lint(args: argparse.Namespace, out) -> int:
    scenario = load_scenario(args.path)
    findings = lint_scenario(scenario)
    if not findings:
        print(f"{scenario.name}: clean", file=out)
        return 0
    for finding in findings:
        print(str(finding), file=out)
    has_errors = any(f.severity is Severity.ERROR for f in findings)
    return 1 if has_errors else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="QoS-based service composition for content adaptation "
        "(ICDE 2007 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("table1", help="regenerate the paper's Table 1")

    figure6 = commands.add_parser("figure6", help="run the worked example")
    figure6.add_argument(
        "--without-t7",
        action="store_true",
        help="remove trans-coding service T7 (the Figure 6 variant)",
    )

    synthetic = commands.add_parser(
        "synthetic", help="generate and solve a synthetic scenario"
    )
    synthetic.add_argument("--seed", type=int, default=0)
    synthetic.add_argument("--services", type=int, default=30)
    synthetic.add_argument("--formats", type=int, default=12)
    synthetic.add_argument("--nodes", type=int, default=10)
    synthetic.add_argument(
        "--deliver",
        type=float,
        default=None,
        metavar="SECONDS",
        help="also stream the plan for SECONDS and print the report",
    )

    analyze = commands.add_parser("analyze", help="graph analytics")
    analyze.add_argument(
        "scenario",
        help="figure3, figure6, or an integer synthetic seed",
    )

    export = commands.add_parser("export", help="save a scenario to a JSON file")
    export.add_argument("path", help="output file")
    export.add_argument("--seed", type=int, default=0)
    export.add_argument(
        "--paper", choices=("figure3", "figure6"), default=None,
        help="export a paper scenario instead of a synthetic one",
    )

    solve = commands.add_parser("solve", help="run selection on a saved scenario")
    solve.add_argument("path", help="scenario JSON file")
    solve.add_argument("--trace", action="store_true", help="print the round trace")

    lint = commands.add_parser("lint", help="cross-check a saved scenario")
    lint.add_argument("path", help="scenario JSON file")

    catalog = commands.add_parser("catalog", help="dump a catalog as WSDL XML")
    catalog.add_argument("--seed", type=int, default=0)
    catalog.add_argument(
        "--paper",
        choices=("figure3", "figure6"),
        default=None,
        help="dump a paper scenario's catalog instead of a synthetic one",
    )

    return parser


_HANDLERS = {
    "table1": cmd_table1,
    "figure6": cmd_figure6,
    "synthetic": cmd_synthetic,
    "analyze": cmd_analyze,
    "catalog": cmd_catalog,
    "export": cmd_export,
    "solve": cmd_solve,
    "lint": cmd_lint,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    stream = out if out is not None else sys.stdout
    return _HANDLERS[args.command](args, stream)


if __name__ == "__main__":  # pragma: no cover - exercised via tests on main()
    raise SystemExit(main())
