"""Command-line interface.

A small operational surface over the library::

    python -m repro.cli table1                 # regenerate the paper's Table 1
    python -m repro.cli figure6 [--without-t7] # the worked example's result
    python -m repro.cli synthetic --seed 7 --services 30 [--deliver 10]
    python -m repro.cli analyze figure6        # graph analytics
    python -m repro.cli catalog --seed 7       # dump a catalog as WSDL XML
    python -m repro.cli plan-batch --sessions 1000 --distinct 32 --compare
    python -m repro.cli plan-group --sessions 1000 --classes 32 --compare
    python -m repro.cli simulate --scenario failover-storm --seed 3
    python -m repro.cli serve --port 8077 --seed 7
    python -m repro.cli serve --port 8077 --workers 4   # process cluster
    python -m repro.cli loadgen --port 8077 --requests 500 --rate 200
    python -m repro.cli loadgen --port 8077 --shard-affinity --admin-port 8078

(Also installed as the ``repro`` console script.)

Operational failures — a missing or malformed scenario file, an
unreachable gateway — print a one-line ``error:`` message and exit
nonzero; tracebacks are reserved for bugs.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.core.analysis import GraphAnalysis
from repro.discovery.wsdl import catalog_to_wsdl
from repro.errors import ReproError
from repro.workloads.io import load_scenario, save_scenario
from repro.workloads.lint import Severity, lint_scenario
from repro.workloads.paper import figure3_scenario, figure6_scenario
from repro.workloads.scenario import Scenario
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

__all__ = ["main", "build_parser"]


def _load_scenario_checked(path: str, out) -> Optional[Scenario]:
    """Load a scenario file, reporting failures as one-line errors."""
    try:
        return load_scenario(path)
    except OSError as exc:
        reason = exc.strerror or type(exc).__name__
        print(f"error: cannot read scenario file {path!r}: {reason}", file=out)
        return None
    except ReproError as exc:
        print(f"error: {exc}", file=out)
        return None


def _paper_scenario(name: str, include_t7: bool = True) -> Scenario:
    if name == "figure6":
        return figure6_scenario(include_t7=include_t7)
    if name == "figure3":
        return figure3_scenario()
    raise SystemExit(f"unknown paper scenario: {name!r} (figure3|figure6)")


def cmd_table1(args: argparse.Namespace, out) -> int:
    result = figure6_scenario().select()
    print(result.trace.render(), file=out)
    print(file=out)
    print(result.describe(), file=out)
    return 0


def cmd_figure6(args: argparse.Namespace, out) -> int:
    scenario = figure6_scenario(include_t7=not args.without_t7)
    result = scenario.select()
    if not result.success:
        print(f"FAILURE: {result.failure_reason}", file=out)
        return 1
    print(f"selected path:  {','.join(result.path)}", file=out)
    print(f"via formats:    {' -> '.join(result.formats)}", file=out)
    print(f"frame rate:     {result.delivered_frame_rate:.2f} fps", file=out)
    print(f"satisfaction:   {result.satisfaction:.4f}", file=out)
    print(f"cost:           {result.accumulated_cost:.2f}", file=out)
    return 0


def cmd_synthetic(args: argparse.Namespace, out) -> int:
    scenario = generate_scenario(
        SyntheticConfig(
            seed=args.seed,
            n_services=args.services,
            n_formats=args.formats,
            n_nodes=args.nodes,
        )
    )
    print(scenario.description, file=out)
    result = scenario.select()
    if not result.success:
        print(f"FAILURE: {result.failure_reason}", file=out)
        return 1
    print(result.describe(), file=out)
    if args.deliver is not None:
        session = scenario.session()
        plan = session.plan()
        report = session.deliver(plan, duration_s=args.deliver)
        print(file=out)
        print(report.summary(), file=out)
    return 0


def cmd_analyze(args: argparse.Namespace, out) -> int:
    if args.scenario in ("figure3", "figure6"):
        scenario = _paper_scenario(args.scenario)
    else:
        try:
            seed = int(args.scenario)
        except ValueError:
            raise SystemExit(
                f"scenario must be figure3, figure6, or a synthetic seed, "
                f"got {args.scenario!r}"
            )
        scenario = generate_scenario(SyntheticConfig(seed=seed))
    graph = scenario.build_graph()
    print(f"scenario: {scenario.name}", file=out)
    print(GraphAnalysis(graph).summary(), file=out)
    return 0


def cmd_catalog(args: argparse.Namespace, out) -> int:
    if args.paper:
        scenario = _paper_scenario(args.paper)
    else:
        scenario = generate_scenario(SyntheticConfig(seed=args.seed))
    print(catalog_to_wsdl(scenario.catalog), file=out)
    return 0


def cmd_export(args: argparse.Namespace, out) -> int:
    if args.paper:
        scenario = _paper_scenario(args.paper)
    else:
        scenario = generate_scenario(SyntheticConfig(seed=args.seed))
    try:
        path = save_scenario(scenario, args.path)
    except OSError as exc:
        reason = exc.strerror or type(exc).__name__
        print(f"error: cannot write scenario file {args.path!r}: {reason}",
              file=out)
        return 2
    print(f"wrote {scenario.name!r} to {path}", file=out)
    return 0


def cmd_solve(args: argparse.Namespace, out) -> int:
    scenario = _load_scenario_checked(args.path, out)
    if scenario is None:
        return 2
    print(f"scenario: {scenario.name}", file=out)
    result = scenario.select()
    if not result.success:
        print(f"FAILURE: {result.failure_reason}", file=out)
        return 1
    print(result.describe(), file=out)
    if args.trace and result.trace is not None:
        print(file=out)
        print(result.trace.render(), file=out)
    return 0


def cmd_plan_batch(args: argparse.Namespace, out) -> int:
    from repro.planner import BatchPlanner, PlanCache, synthetic_requests
    from repro.runtime.metrics import PlannerReport

    scenario = generate_scenario(
        SyntheticConfig(
            seed=args.seed,
            n_services=args.services,
            n_formats=args.formats,
            n_nodes=args.nodes,
        )
    )
    cache = PlanCache(max_entries=args.cache_size)
    planner = BatchPlanner.for_scenario(
        scenario, cache=cache, max_workers=args.workers
    )
    requests = synthetic_requests(scenario, args.sessions, args.distinct)

    started = time.perf_counter()
    plans = planner.plan_batch(requests)
    elapsed = time.perf_counter() - started

    stats = cache.stats
    memo_stats = planner.optimize_memo.stats
    report = PlannerReport(
        sessions=len(plans),
        successes=sum(1 for plan in plans if plan.success),
        cache_hits=stats.hits,
        cache_misses=stats.misses,
        invalidations=stats.invalidations,
        evictions=stats.evictions,
        elapsed_s=elapsed,
        optimize_calls=memo_stats.lookups,
        optimize_memo_hits=memo_stats.hits,
        settle_rounds=sum(
            plan.result.stats.rounds
            for plan in plans
            if plan.result.stats is not None
        ),
    )
    print(f"scenario: {scenario.name} "
          f"({args.sessions} sessions, {args.distinct} device classes)", file=out)
    print(report.summary(), file=out)
    if args.compare:
        started = time.perf_counter()
        planner.plan_batch(requests, use_cache=False)
        uncached = time.perf_counter() - started
        speedup = uncached / elapsed if elapsed > 0 else float("inf")
        print(file=out)
        print(f"uncached:          {uncached * 1000:.1f} ms", file=out)
        print(f"speedup:           {speedup:.1f}x", file=out)
    return 0


def cmd_plan_group(args: argparse.Namespace, out) -> int:
    """Plan one shared adaptation tree for a synthetic receiver-class set."""
    from repro.group import GroupPlanner, GroupReceiver, GroupRequest
    from repro.planner import device_variants

    scenario = generate_scenario(
        SyntheticConfig(
            seed=args.seed,
            n_services=args.services,
            n_formats=args.formats,
            n_nodes=args.nodes,
        )
    )
    if args.sessions < args.classes:
        print("error: --sessions must be >= --classes", file=out)
        return 2
    variants = device_variants(scenario.device, args.classes)
    base, extra = divmod(args.sessions, args.classes)
    receivers = tuple(
        GroupReceiver(
            class_id=f"class-{index}",
            device=device,
            sessions=base + (1 if index < extra else 0),
        )
        for index, device in enumerate(variants)
    )
    request = GroupRequest(
        content=scenario.content,
        user=scenario.user,
        sender_node=scenario.sender_node,
        receiver_node=scenario.receiver_node,
        receivers=receivers,
        context=scenario.context,
    )
    planner = GroupPlanner.for_scenario(scenario)

    started = time.perf_counter()
    plan = planner.plan(request)
    elapsed = time.perf_counter() - started

    tree = plan.tree
    print(f"scenario: {scenario.name} "
          f"({args.sessions} sessions, {args.classes} receiver classes)",
          file=out)
    print(f"tree:              {len(tree.edges)} edges, "
          f"{tree.branch_count} leaves, "
          f"{tree.shared_edge_count} shared edges", file=out)
    print(f"branches:          {len(tree.branches)} planned, "
          f"{len(tree.fallbacks)} fallback", file=out)
    print(f"tree bandwidth:    {tree.tree_bandwidth_bps() / 1e6:.2f} Mbps",
          file=out)
    print(f"per-session:       "
          f"{tree.per_session_bandwidth_bps() / 1e6:.2f} Mbps", file=out)
    print(f"saved:             {tree.saved_bandwidth_bps() / 1e6:.2f} Mbps",
          file=out)
    print(f"optimize calls:    {plan.optimize_calls()}", file=out)
    print(f"elapsed:           {elapsed * 1000:.1f} ms", file=out)
    print(f"digest:            {tree.digest()}", file=out)
    if args.compare:
        from repro.planner import BatchPlanner, PlanRequest

        baseline = BatchPlanner.for_scenario(scenario)
        started = time.perf_counter()
        baseline_bps = 0.0
        baseline_calls = 0
        for receiver in receivers:
            for _ in range(receiver.sessions):
                session = baseline.plan_uncached(
                    PlanRequest(
                        content=request.content,
                        device=receiver.device,
                        user=request.user,
                        sender_node=request.sender_node,
                        receiver_node=request.receiver_node,
                        context=request.context,
                    )
                )
                result = session.result
                if result.success and result.stats is not None:
                    baseline_calls += result.stats.optimize_calls
                    baseline_bps += sum(
                        result.configuration.required_bandwidth(
                            baseline.registry.get(fmt)
                        )
                        for fmt in result.formats
                    )
        uncached = time.perf_counter() - started
        print(file=out)
        print(f"per-session baseline: {uncached * 1000:.1f} ms, "
              f"{baseline_calls} optimize calls, "
              f"{baseline_bps / 1e6:.2f} Mbps reserved", file=out)
        speedup = uncached / elapsed if elapsed > 0 else float("inf")
        print(f"speedup:           {speedup:.1f}x", file=out)
    return 0


def cmd_simulate(args: argparse.Namespace, out) -> int:
    from repro.sim import build_scenario, run_simulation

    config = build_scenario(
        args.scenario,
        seed=args.seed,
        sessions=args.sessions,
        faults=not args.no_faults,
        horizon_s=args.horizon,
        trace_capacity=args.trace_capacity,
    )
    report = run_simulation(config)
    if args.json:
        print(report.to_json(include_sessions=not args.fleet_only), file=out)
    elif args.markdown:
        print(report.to_markdown(), file=out)
    else:
        print(report.summary(), file=out)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report.to_json(include_sessions=not args.fleet_only))
            handle.write("\n")
        print(f"wrote JSON report to {args.output}", file=out)
    return 0


def _serving_scenario(args: argparse.Namespace, out) -> Optional[Scenario]:
    """The scenario a serve/loadgen command runs against.

    ``--scenario PATH`` loads a saved document; otherwise the synthetic
    reference scenario is generated from the seed/size flags (identical
    flags on both sides of the wire yield identical worlds).
    """
    if args.scenario:
        return _load_scenario_checked(args.scenario, out)
    return generate_scenario(
        SyntheticConfig(
            seed=args.seed,
            n_services=args.services,
            n_formats=args.formats,
            n_nodes=args.nodes,
        )
    )


def cmd_serve(args: argparse.Namespace, out) -> int:
    import asyncio
    import json

    from repro.serve import (
        ClusterConfig,
        ClusterSupervisor,
        GatewayConfig,
        HealthConfig,
        PlanningGateway,
    )

    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=out)
        return 2
    scenario = _serving_scenario(args, out)
    if scenario is None:
        return 2
    health = None
    if args.health:
        try:
            health = HealthConfig(
                seed=args.seed,
                open_threshold=args.health_open_threshold,
                cooldown_s=args.health_cooldown,
                min_samples=args.health_min_samples,
            )
        except ReproError as exc:
            print(f"error: {exc}", file=out)
            return 2
    config = GatewayConfig(
        host=args.host,
        port=args.port,
        queue_depth=args.queue_depth,
        workers=args.threads,
        default_deadline_ms=args.deadline_ms,
        rate_per_s=args.rate_limit,
        burst=args.burst,
        cache_size=args.cache_size,
        drain_grace_s=args.drain_grace,
        service_floor_ms=args.service_floor_ms,
        health=health,
        degraded_budget_ms=args.degraded_budget_ms,
    )
    if args.workers == 1:
        # Single process: no supervisor, no fork, no admin server — the
        # exact daemon `repro serve` has always been.
        try:
            gateway = PlanningGateway(
                scenario, config, scenario_path=args.scenario
            )
        except ReproError as exc:
            # Misconfiguration (e.g. --burst below 1 with rate limiting on)
            # fails here, at daemon start — same one-line idiom as scenario
            # file problems, never a traceback or a crash on the first
            # request.
            print(f"error: {exc}", file=out)
            return 2

        def announce(gw: PlanningGateway) -> None:
            print(
                f"repro gateway listening on {args.host}:{gw.port} "
                f"(scenario {scenario.name!r}, generation {gw.generation})",
                file=out,
                flush=True,
            )

        final = asyncio.run(gateway.run(on_ready=announce))
    else:
        admin_port = args.admin_port
        if admin_port is None:
            # Ephemeral shared port → ephemeral admin port; otherwise the
            # conventional next-door port.
            admin_port = 0 if args.port == 0 else args.port + 1
        try:
            supervisor = ClusterSupervisor(
                scenario,
                gateway_config=config,
                cluster_config=ClusterConfig(
                    workers=args.workers,
                    admin_host=args.host,
                    admin_port=admin_port,
                ),
                scenario_path=args.scenario,
            )
        except ReproError as exc:
            print(f"error: {exc}", file=out)
            return 2

        def announce_cluster(sup: ClusterSupervisor) -> None:
            print(
                f"repro cluster listening on {args.host}:{sup.port} "
                f"(admin {args.host}:{sup.admin_port}, "
                f"workers {sup.workers}, scenario {scenario.name!r})",
                file=out,
                flush=True,
            )

        try:
            final = asyncio.run(supervisor.run(on_ready=announce_cluster))
        except ReproError as exc:
            # Boot failure (port taken, workers never ready) after the
            # parser accepted the flags — still one line, still exit 2.
            print(f"error: {exc}", file=out)
            return 2
    print("drained; final metrics:", file=out)
    print(json.dumps(final, indent=2, sort_keys=True), file=out, flush=True)
    return 0


def cmd_loadgen(args: argparse.Namespace, out) -> int:
    import asyncio
    import json

    from repro.serve import LoadgenConfig, run_loadgen

    scenario = _serving_scenario(args, out)
    if scenario is None:
        return 2
    config = LoadgenConfig(
        host=args.host,
        port=args.port,
        requests=args.requests,
        rate_per_s=args.rate,
        seed=args.seed_arrivals,
        distinct=args.distinct,
        deadline_ms=args.deadline_ms,
        timeout_s=args.timeout,
        shard_affinity=args.shard_affinity,
        admin_port=args.admin_port,
        retries=args.retries,
        retry_backoff_s=args.retry_backoff,
        group_size=args.group_size,
        policy_mix=args.policy_mix,
    )
    try:
        report = asyncio.run(run_loadgen(scenario, config))
    except ReproError as exc:
        # Affinity setup failures (no admin port, unreachable cluster)
        # are operational, not bugs: one line, exit 2.
        print(f"error: {exc}", file=out)
        return 2
    except OSError as exc:
        reason = exc.strerror or type(exc).__name__
        print(f"error: cannot reach cluster admin endpoint: {reason}", file=out)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True), file=out)
    else:
        print(report.summary(), file=out)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    if report.failed:
        print(f"error: {report.failed} requests failed outright", file=out)
        return 1
    return 0


def cmd_lint(args: argparse.Namespace, out) -> int:
    if args.path is None and args.policy is None:
        print("error: lint needs a scenario path and/or --policy", file=out)
        return 2
    scenario = None
    if args.path is not None:
        scenario = _load_scenario_checked(args.path, out)
        if scenario is None:
            return 2
    findings = []
    name = ""
    if scenario is not None:
        findings.extend(lint_scenario(scenario))
        name = scenario.name
    if args.policy is not None:
        from repro.policy import load_policy
        from repro.policy.lint import lint_policy

        try:
            document = load_policy(args.policy)
        except ReproError as exc:
            # Malformed documents (unknown predicate/action names, bad
            # JSON) are input errors: one line, exit 2 — same contract
            # as an unreadable scenario file.
            print(f"error: {exc}", file=out)
            return 2
        findings.extend(lint_policy(document, scenario=scenario))
        name = f"{name} + {document.name}" if name else document.name
    if not findings:
        print(f"{name}: clean", file=out)
        return 0
    for finding in findings:
        print(str(finding), file=out)
    has_errors = any(f.severity is Severity.ERROR for f in findings)
    return 1 if has_errors else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="QoS-based service composition for content adaptation "
        "(ICDE 2007 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("table1", help="regenerate the paper's Table 1")

    figure6 = commands.add_parser("figure6", help="run the worked example")
    figure6.add_argument(
        "--without-t7",
        action="store_true",
        help="remove trans-coding service T7 (the Figure 6 variant)",
    )

    synthetic = commands.add_parser(
        "synthetic", help="generate and solve a synthetic scenario"
    )
    synthetic.add_argument("--seed", type=int, default=0)
    synthetic.add_argument("--services", type=int, default=30)
    synthetic.add_argument("--formats", type=int, default=12)
    synthetic.add_argument("--nodes", type=int, default=10)
    synthetic.add_argument(
        "--deliver",
        type=float,
        default=None,
        metavar="SECONDS",
        help="also stream the plan for SECONDS and print the report",
    )

    analyze = commands.add_parser("analyze", help="graph analytics")
    analyze.add_argument(
        "scenario",
        help="figure3, figure6, or an integer synthetic seed",
    )

    export = commands.add_parser("export", help="save a scenario to a JSON file")
    export.add_argument("path", help="output file")
    export.add_argument("--seed", type=int, default=0)
    export.add_argument(
        "--paper", choices=("figure3", "figure6"), default=None,
        help="export a paper scenario instead of a synthetic one",
    )

    solve = commands.add_parser("solve", help="run selection on a saved scenario")
    solve.add_argument("path", help="scenario JSON file")
    solve.add_argument("--trace", action="store_true", help="print the round trace")

    lint = commands.add_parser(
        "lint", help="cross-check a saved scenario and/or policy document"
    )
    lint.add_argument("path", nargs="?", default=None,
                      help="scenario JSON file")
    lint.add_argument("--policy", default=None, metavar="PATH",
                      help="also lint a policy document (cross-checked "
                           "against the scenario when one is given)")

    plan_batch = commands.add_parser(
        "plan-batch",
        help="plan a synthetic session batch through the plan cache",
    )
    plan_batch.add_argument("--seed", type=int, default=7)
    plan_batch.add_argument("--services", type=int, default=12)
    plan_batch.add_argument("--formats", type=int, default=8)
    plan_batch.add_argument("--nodes", type=int, default=8)
    plan_batch.add_argument(
        "--sessions", type=int, default=200, help="sessions in the batch"
    )
    plan_batch.add_argument(
        "--distinct", type=int, default=16,
        help="distinct device classes (distinct fingerprints)",
    )
    plan_batch.add_argument(
        "--workers", type=int, default=None, help="thread-pool size"
    )
    plan_batch.add_argument(
        "--cache-size", type=int, default=1024, help="plan-cache capacity"
    )
    plan_batch.add_argument(
        "--compare",
        action="store_true",
        help="also time the uncached baseline and print the speedup",
    )

    plan_group = commands.add_parser(
        "plan-group",
        help="plan one shared adaptation tree for a receiver-class set",
    )
    plan_group.add_argument("--seed", type=int, default=7)
    plan_group.add_argument("--services", type=int, default=12)
    plan_group.add_argument("--formats", type=int, default=8)
    plan_group.add_argument("--nodes", type=int, default=8)
    plan_group.add_argument(
        "--sessions", type=int, default=200,
        help="live sessions spread across the classes",
    )
    plan_group.add_argument(
        "--classes", type=int, default=16,
        help="distinct receiver device classes in the group",
    )
    plan_group.add_argument(
        "--compare",
        action="store_true",
        help="also run the per-session uncached baseline and print the "
             "speedup and reserved-bandwidth comparison",
    )

    simulate = commands.add_parser(
        "simulate",
        help="run a deterministic multi-session fault-injection simulation",
    )
    simulate.add_argument(
        "--scenario",
        default="steady",
        help="named campaign: steady, flash-crowd, failover-storm, "
             "link-churn, gray-failure, live-event",
    )
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--sessions", type=int, default=200, help="organic session arrivals"
    )
    simulate.add_argument(
        "--no-faults",
        action="store_true",
        help="run the campaign without its fault schedule",
    )
    simulate.add_argument(
        "--horizon", type=float, default=None, metavar="SECONDS",
        help="hard virtual-time stop (default: run until the heap drains)",
    )
    simulate.add_argument(
        "--trace-capacity", type=int, default=None, metavar="EVENTS",
        help="bound the in-memory event trace to a ring buffer",
    )
    simulate.add_argument(
        "--json", action="store_true", help="print the full JSON report"
    )
    simulate.add_argument(
        "--markdown", action="store_true", help="print the markdown report"
    )
    simulate.add_argument(
        "--fleet-only",
        action="store_true",
        help="omit per-session rows from JSON output",
    )
    simulate.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the JSON report to PATH",
    )

    def add_world_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--scenario", default=None, metavar="PATH",
            help="serve/load a saved scenario JSON instead of a synthetic one",
        )
        sub.add_argument("--seed", type=int, default=7)
        sub.add_argument("--services", type=int, default=12)
        sub.add_argument("--formats", type=int, default=8)
        sub.add_argument("--nodes", type=int, default=8)

    serve = commands.add_parser(
        "serve",
        help="run the asyncio planning gateway (drain on SIGTERM/SIGINT, "
        "reload on SIGHUP when serving from a file)",
    )
    add_world_flags(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8077,
                       help="0 binds an ephemeral port")
    serve.add_argument("--queue-depth", type=int, default=256,
                       help="bounded deadline-queue depth (past it: shed)")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes; >1 runs the SO_REUSEPORT "
                       "cluster supervisor, 1 the classic single daemon")
    serve.add_argument("--threads", type=int, default=4,
                       help="planning threads per worker process")
    serve.add_argument("--admin-port", type=int, default=None,
                       help="cluster admin/metrics port (default: --port + 1, "
                       "ephemeral when --port is 0; ignored with --workers 1)")
    serve.add_argument("--deadline-ms", type=float, default=250.0,
                       help="default per-request deadline")
    serve.add_argument("--rate-limit", type=float, default=0.0,
                       help="per-client token-bucket rate (0 disables)")
    serve.add_argument("--burst", type=float, default=50.0,
                       help="per-client token-bucket burst")
    serve.add_argument("--cache-size", type=int, default=4096,
                       help="plan-cache capacity")
    serve.add_argument("--drain-grace", type=float, default=5.0,
                       help="seconds granted to in-flight work at drain")
    serve.add_argument("--service-floor-ms", type=float, default=0.0,
                       help="test knob: pad each served request to this floor")
    serve.add_argument("--health", action="store_true",
                       help="enable per-service failure detection, circuit "
                            "breakers, and degraded-mode fallback")
    serve.add_argument("--health-cooldown", type=float, default=1.0,
                       help="seconds an OPEN breaker waits before HALF_OPEN "
                            "probes (jittered; default 1.0)")
    serve.add_argument("--health-open-threshold", type=float, default=0.7,
                       help="EWMA failure score that trips a breaker "
                            "(default 0.7)")
    serve.add_argument("--health-min-samples", type=int, default=5,
                       help="outcome samples required before a breaker may "
                            "trip (default 5)")
    serve.add_argument("--degraded-budget-ms", type=float, default=25.0,
                       help="remaining deadline budget below which a request "
                            "answers degraded instead of planning")

    loadgen = commands.add_parser(
        "loadgen",
        help="fire a seeded open-loop Poisson request stream at a gateway",
    )
    add_world_flags(loadgen)
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8077)
    loadgen.add_argument("--requests", type=int, default=500)
    loadgen.add_argument("--rate", type=float, default=200.0,
                         help="open-loop arrival rate (req/s)")
    loadgen.add_argument("--seed-arrivals", type=int, default=0,
                         help="seed for the arrival process / outcome digest")
    loadgen.add_argument("--distinct", type=int, default=16,
                         help="distinct device classes cycled over requests")
    loadgen.add_argument("--deadline-ms", type=float, default=250.0)
    loadgen.add_argument("--timeout", type=float, default=10.0,
                         help="client-side per-response timeout (s)")
    loadgen.add_argument("--shard-affinity", action="store_true",
                         help="route each request to the cluster worker "
                         "owning its device-class shard (needs --admin-port)")
    loadgen.add_argument("--admin-port", type=int, default=None,
                         help="cluster admin port to fetch the topology from")
    loadgen.add_argument("--retries", type=int, default=0,
                         help="retry 429/connection-refused responses up to "
                              "N times with seeded jittered backoff")
    loadgen.add_argument("--retry-backoff", type=float, default=0.05,
                         help="base retry delay in seconds (doubles per "
                              "attempt; default 0.05)")
    loadgen.add_argument("--group-size", type=int, default=0,
                         help="batch this many device classes per request as "
                              "one POST /plan-group receiver set (0 = "
                              "classic per-session /plan stream)")
    loadgen.add_argument("--policy-mix", type=float, default=0.0,
                         help="fraction of requests carrying a device that "
                              "decodes the source format natively (seeded); "
                              "the report splits latency by policy fast "
                              "path vs selector path")
    loadgen.add_argument("--json", action="store_true",
                         help="print the full JSON report")
    loadgen.add_argument("--output", default=None, metavar="PATH",
                         help="also write the JSON report to PATH")

    catalog = commands.add_parser("catalog", help="dump a catalog as WSDL XML")
    catalog.add_argument("--seed", type=int, default=0)
    catalog.add_argument(
        "--paper",
        choices=("figure3", "figure6"),
        default=None,
        help="dump a paper scenario's catalog instead of a synthetic one",
    )

    return parser


_HANDLERS = {
    "table1": cmd_table1,
    "figure6": cmd_figure6,
    "synthetic": cmd_synthetic,
    "analyze": cmd_analyze,
    "catalog": cmd_catalog,
    "export": cmd_export,
    "solve": cmd_solve,
    "lint": cmd_lint,
    "plan-batch": cmd_plan_batch,
    "plan-group": cmd_plan_group,
    "simulate": cmd_simulate,
    "serve": cmd_serve,
    "loadgen": cmd_loadgen,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    stream = out if out is not None else sys.stdout
    return _HANDLERS[args.command](args, stream)


if __name__ == "__main__":  # pragma: no cover - exercised via tests on main()
    raise SystemExit(main())
