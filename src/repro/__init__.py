"""QoS-based service composition for content adaptation.

A Python reproduction of El-Khatib, Bochmann & El-Saddik, *A QoS-based
Service Composition for Content Adaptation* (ICDE 2007): a framework that
delivers multimedia content to heterogeneous clients by composing chains of
trans-coding services, choosing the chain — and the configuration of each
service on it — that maximizes the user's satisfaction subject to network
bandwidth and budget constraints.

Quick start::

    from repro import figure6_scenario

    scenario = figure6_scenario()
    result = scenario.select()
    print(result.describe())          # sender,T7,receiver @ satisfaction 0.66
    print(result.trace.render())      # the paper's Table 1, regenerated

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.core` — satisfaction model, adaptation graph, the greedy QoS
  path-selection algorithm, baselines;
- :mod:`repro.formats` / :mod:`repro.services` — media formats and
  executable synthetic transcoders;
- :mod:`repro.profiles` — the six Section-3 profiles;
- :mod:`repro.network` / :mod:`repro.discovery` — the simulated substrate;
- :mod:`repro.runtime` — end-to-end sessions and delivery metrics;
- :mod:`repro.workloads` — the paper's exact scenarios plus synthetic
  generators.
"""

from repro.core import (
    AdaptationGraph,
    AdaptationGraphBuilder,
    CheapestPathSelector,
    CombinedSatisfaction,
    Configuration,
    ConfigurationOptimizer,
    ExhaustiveSelector,
    FewestHopsSelector,
    GraphPruner,
    HarmonicCombiner,
    LinearSatisfaction,
    PiecewiseLinearSatisfaction,
    QoSPathSelector,
    RandomPathSelector,
    SelectionResult,
    SelectionTrace,
    TieBreakPolicy,
    WidestPathSelector,
    standard_parameters,
)
from repro.formats import ContentVariant, FormatRegistry, MediaFormat, MediaType
from repro.network import NetworkTopology, ServicePlacement
from repro.profiles import (
    ContentProfile,
    ContextProfile,
    DeviceProfile,
    IntermediaryProfile,
    NetworkProfile,
    UserProfile,
)
from repro.runtime import AdaptationSession, DeliveryReport
from repro.services import AdaptationChain, ServiceCatalog, ServiceDescriptor
from repro.workloads import (
    Scenario,
    SyntheticConfig,
    figure1_satisfaction,
    figure3_scenario,
    figure6_scenario,
    generate_scenario,
    table1_expected_rows,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "AdaptationGraph",
    "AdaptationGraphBuilder",
    "GraphPruner",
    "QoSPathSelector",
    "SelectionResult",
    "SelectionTrace",
    "TieBreakPolicy",
    "Configuration",
    "ConfigurationOptimizer",
    "CombinedSatisfaction",
    "HarmonicCombiner",
    "LinearSatisfaction",
    "PiecewiseLinearSatisfaction",
    "standard_parameters",
    "ExhaustiveSelector",
    "FewestHopsSelector",
    "WidestPathSelector",
    "CheapestPathSelector",
    "RandomPathSelector",
    # formats & services
    "MediaFormat",
    "MediaType",
    "FormatRegistry",
    "ContentVariant",
    "ServiceDescriptor",
    "ServiceCatalog",
    "AdaptationChain",
    # profiles
    "UserProfile",
    "ContentProfile",
    "ContextProfile",
    "DeviceProfile",
    "NetworkProfile",
    "IntermediaryProfile",
    # substrate & runtime
    "NetworkTopology",
    "ServicePlacement",
    "AdaptationSession",
    "DeliveryReport",
    # workloads
    "Scenario",
    "SyntheticConfig",
    "generate_scenario",
    "figure1_satisfaction",
    "figure3_scenario",
    "figure6_scenario",
    "table1_expected_rows",
]
