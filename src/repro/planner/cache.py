"""A thread-safe LRU plan cache with single-flight computation.

The cache memoizes fully planned sessions by
:class:`~repro.planner.fingerprint.PlanFingerprint`.  Three properties
matter for serving heavy concurrent traffic:

- **LRU bound** — at most ``max_entries`` plans are retained; the least
  recently used entry is evicted first.
- **Single-flight** — when many threads miss on the same fingerprint
  simultaneously, exactly one computes the plan; the rest wait on an event
  and then read the freshly inserted entry.  This removes the thundering
  herd that would otherwise recompute one popular plan N times.
- **Generation-based invalidation** — fingerprints embed the generation
  counters of the catalog / topology / placement / ledger, so a stale plan
  is structurally unreachable (its key can never be produced again).
  :meth:`purge_stale` additionally drops the dead entries eagerly and
  counts them as invalidations.

All statistics are maintained under the same lock as the entry map, so a
snapshot taken via :attr:`stats` is internally consistent.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ValidationError
from repro.planner.fingerprint import GenerationStamp, PlanFingerprint

__all__ = ["CacheStats", "PlanCache"]


@dataclass(frozen=True)
class CacheStats:
    """One consistent snapshot of cache counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    entries: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none ran)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class PlanCache:
    """LRU cache of planned sessions keyed by request fingerprint."""

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ValidationError("PlanCache needs max_entries >= 1")
        self._max_entries = max_entries
        self._lock = threading.RLock()
        self._entries: "OrderedDict[PlanFingerprint, Any]" = OrderedDict()
        self._inflight: Dict[PlanFingerprint, threading.Event] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    @property
    def max_entries(self) -> int:
        return self._max_entries

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------
    def get(self, fingerprint: PlanFingerprint) -> Optional[Any]:
        """The cached plan, or ``None`` on a miss (counted either way)."""
        with self._lock:
            if fingerprint in self._entries:
                self._entries.move_to_end(fingerprint)
                self._hits += 1
                return self._entries[fingerprint]
            self._misses += 1
            return None

    def put(self, fingerprint: PlanFingerprint, plan: Any) -> None:
        """Insert (or refresh) one entry, evicting LRU overflow."""
        with self._lock:
            self._entries[fingerprint] = plan
            self._entries.move_to_end(fingerprint)
            self._evict_overflow()

    def get_or_compute(
        self,
        fingerprint: PlanFingerprint,
        compute: Callable[[], Any],
    ) -> Any:
        """Return the cached plan, computing it at most once per miss.

        Concurrent callers with the same fingerprint coalesce: one leader
        runs ``compute()`` while followers wait and then read the inserted
        entry.  A leader failure releases the followers, and the first of
        them retries as the new leader (the exception propagates only to
        the leader that hit it).
        """
        while True:
            with self._lock:
                if fingerprint in self._entries:
                    self._entries.move_to_end(fingerprint)
                    self._hits += 1
                    return self._entries[fingerprint]
                event = self._inflight.get(fingerprint)
                if event is None:
                    event = threading.Event()
                    self._inflight[fingerprint] = event
                    self._misses += 1
                    is_leader = True
                else:
                    is_leader = False
            if not is_leader:
                event.wait()
                continue  # Re-check: the leader inserted (or failed).
            try:
                plan = compute()
            except BaseException:
                with self._lock:
                    del self._inflight[fingerprint]
                event.set()
                raise
            with self._lock:
                self._entries[fingerprint] = plan
                self._entries.move_to_end(fingerprint)
                del self._inflight[fingerprint]
                self._evict_overflow()
            event.set()
            return plan

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def purge_stale(self, current: GenerationStamp) -> int:
        """Drop entries not computed at ``current`` generations.

        Stale entries can never be hit again (their fingerprints embed the
        old counters); purging reclaims their memory eagerly and returns
        how many were dropped.
        """
        with self._lock:
            stale: List[PlanFingerprint] = [
                fingerprint
                for fingerprint in self._entries
                if fingerprint.generations != current
            ]
            for fingerprint in stale:
                del self._entries[fingerprint]
            self._invalidations += len(stale)
            return len(stale)

    def clear(self) -> int:
        """Drop everything; returns how many entries were invalidated."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._invalidations += dropped
            return dropped

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                entries=len(self._entries),
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: object) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def _evict_overflow(self) -> None:
        # Caller holds the lock.
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
            self._evictions += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        snapshot = self.stats
        return (
            f"PlanCache(entries={snapshot.entries}/{self._max_entries}, "
            f"hits={snapshot.hits}, misses={snapshot.misses})"
        )
