"""Plan caching and concurrent batch planning.

``fingerprint`` defines the canonical cache key, ``cache`` the thread-safe
single-flight LRU store, ``batch`` the concurrent planner, and ``workload``
the request-stream generators the benchmarks and stress tests share.

Two memoization layers compose here: :class:`PlanCache` stores whole
plans by request fingerprint, while the re-exported
:class:`~repro.core.optimizer.OptimizeMemo` (one per
:class:`BatchPlanner`) stores individual solved ``Optimize()``
relaxations, so even *distinct* requests over the same infrastructure
share work below the plan level.
"""

from repro.core.optimizer import OptimizeMemo, OptimizeMemoStats
from repro.planner.fingerprint import (
    GenerationStamp,
    PlanFingerprint,
    combine_fingerprints,
    fingerprint_request,
)
from repro.planner.cache import CacheStats, PlanCache
from repro.planner.batch import BatchPlanner, PlanRequest
from repro.planner.workload import device_variants, synthetic_requests

__all__ = [
    "GenerationStamp",
    "PlanFingerprint",
    "combine_fingerprints",
    "fingerprint_request",
    "CacheStats",
    "PlanCache",
    "BatchPlanner",
    "PlanRequest",
    "OptimizeMemo",
    "OptimizeMemoStats",
    "device_variants",
    "synthetic_requests",
]
