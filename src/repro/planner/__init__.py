"""Plan caching and concurrent batch planning.

``fingerprint`` defines the canonical cache key, ``cache`` the thread-safe
single-flight LRU store, ``batch`` the concurrent planner, and ``workload``
the request-stream generators the benchmarks and stress tests share.
"""

from repro.planner.fingerprint import (
    GenerationStamp,
    PlanFingerprint,
    fingerprint_request,
)
from repro.planner.cache import CacheStats, PlanCache
from repro.planner.batch import BatchPlanner, PlanRequest
from repro.planner.workload import device_variants, synthetic_requests

__all__ = [
    "GenerationStamp",
    "PlanFingerprint",
    "fingerprint_request",
    "CacheStats",
    "PlanCache",
    "BatchPlanner",
    "PlanRequest",
    "device_variants",
    "synthetic_requests",
]
