"""Canonical request fingerprints: the plan-cache key.

A fingerprint identifies everything the planning pipeline (graph
construction → pruning → selection) consumes for one session:

- the four request-side profiles (user, content, device, and optionally
  context) via their ``cache_key()`` tuples;
- the endpoints (sender / receiver node) and planner knobs (peer,
  tie-break policy, pruning, trace recording);
- the *shared infrastructure state* via content keys plus monotonic
  generation counters of the service catalog, the topology, the placement,
  and (when planning against reserved capacity) the bandwidth ledger.

Two requests with equal fingerprints are guaranteed to produce identical
plans, because planning is deterministic in exactly these inputs.  Any
catalog mutation (``add`` / ``remove``), topology growth, re-placement, or
bandwidth reservation bumps a generation counter and therefore changes
every subsequent fingerprint — a plan computed before a reservation can
never be served stale.

The digest is a SHA-256 over the canonical ``repr`` of the combined key
tuple (all primitives, so the repr is deterministic), keeping the cache key
small and cheap to hash regardless of profile size.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.core.selection import TieBreakPolicy
from repro.network.placement import ServicePlacement
from repro.network.reservations import BandwidthLedger
from repro.network.topology import NetworkTopology
from repro.profiles.content import ContentProfile
from repro.profiles.context import ContextProfile
from repro.profiles.device import DeviceProfile
from repro.profiles.user import UserProfile
from repro.services.catalog import ServiceCatalog

__all__ = [
    "GenerationStamp",
    "PlanFingerprint",
    "combine_fingerprints",
    "fingerprint_request",
]


@dataclass(frozen=True)
class GenerationStamp:
    """The infrastructure generation counters a plan was computed at."""

    catalog: int
    topology: int
    placement: int
    reservations: int


@dataclass(frozen=True)
class PlanFingerprint:
    """A stable, hashable identity for one planning request.

    ``digest`` covers the full canonical key (profiles + endpoints +
    infrastructure content + generations); ``generations`` is carried
    alongside so caches can purge entries wholesale when the world moves
    on (see :meth:`repro.planner.cache.PlanCache.purge_stale`).
    """

    digest: str
    generations: GenerationStamp

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.digest[:12]


# Content keys of the shared infrastructure are memoized per (object,
# generation): under a batch of N requests against one unchanged world the
# expensive tuple construction runs once, not N times.  Generation bumps
# naturally invalidate the memo; WeakKeyDictionary keeps dead worlds from
# pinning memory.
_KEY_MEMO: "weakref.WeakKeyDictionary[object, Tuple[int, Tuple]]" = (
    weakref.WeakKeyDictionary()
)
_KEY_MEMO_LOCK = threading.Lock()


def _memoized_key(obj, generation: int, build: Callable[[], Tuple]) -> Tuple:
    with _KEY_MEMO_LOCK:
        entry = _KEY_MEMO.get(obj)
        if entry is not None and entry[0] == generation:
            return entry[1]
    key = build()
    with _KEY_MEMO_LOCK:
        _KEY_MEMO[obj] = (generation, key)
    return key


def _catalog_key(catalog: ServiceCatalog) -> Tuple:
    return _memoized_key(
        catalog,
        catalog.generation,
        lambda: tuple(
            catalog.get(service_id).cache_key() for service_id in catalog.ids()
        ),
    )


def _topology_key(topology: NetworkTopology) -> Tuple:
    def build() -> Tuple:
        nodes = tuple(
            (node.node_id, node.cpu_mips, node.memory_mb)
            for node in sorted(topology.nodes(), key=lambda n: n.node_id)
        )
        links = tuple(
            (link.a, link.b, link.bandwidth_bps, link.delay_ms, link.loss_rate, link.cost)
            for link in sorted(topology.links(), key=lambda l: (l.a, l.b))
        )
        return (nodes, links)

    return _memoized_key(topology, topology.generation, build)


def _placement_key(placement: ServicePlacement) -> Tuple:
    return _memoized_key(
        placement,
        placement.generation,
        lambda: tuple(sorted(placement.as_dict().items())),
    )


def fingerprint_request(
    *,
    user: UserProfile,
    content: ContentProfile,
    device: DeviceProfile,
    sender_node: str,
    receiver_node: str,
    catalog: ServiceCatalog,
    placement: ServicePlacement,
    topology: Optional[NetworkTopology] = None,
    context: Optional[ContextProfile] = None,
    ledger: Optional[BandwidthLedger] = None,
    peer: Optional[str] = None,
    tie_break: TieBreakPolicy = TieBreakPolicy.PAPER,
    prune: bool = True,
    record_trace: bool = False,
) -> PlanFingerprint:
    """Fingerprint one planning request against the current world state.

    ``topology`` defaults to ``placement.topology``.  Pass the ``ledger``
    whenever planning runs against residual capacity (admission control):
    its generation then participates in the key, so any reserve / release
    forces a recompute.
    """
    if topology is None:
        topology = placement.topology
    stamp = GenerationStamp(
        catalog=catalog.generation,
        topology=topology.generation,
        placement=placement.generation,
        reservations=ledger.generation if ledger is not None else 0,
    )
    key = (
        user.cache_key(),
        content.cache_key(),
        device.cache_key(),
        context.cache_key() if context is not None else None,
        sender_node,
        receiver_node,
        peer,
        tie_break.value,
        prune,
        record_trace,
        _catalog_key(catalog),
        _topology_key(topology),
        _placement_key(placement),
        stamp,
    )
    digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
    return PlanFingerprint(digest=digest, generations=stamp)


def combine_fingerprints(
    parts: Tuple[Tuple, ...],
    stamp: GenerationStamp,
) -> PlanFingerprint:
    """One fingerprint over many — the group-plan (shared-tree) cache key.

    ``parts`` is a tuple of canonical sub-keys, typically
    ``(class_id, sessions, per_class_digest)`` triples in a fixed order.
    Every member digest already embeds the infrastructure generations, so
    the combined key inherits the same staleness guarantee: any catalog /
    topology / placement / reservation change alters every member and
    therefore the combination.  The stamp rides along unchanged so
    :meth:`~repro.planner.cache.PlanCache.purge_stale` works on group
    entries exactly as it does on per-session ones.
    """
    digest = hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()
    return PlanFingerprint(digest=digest, generations=stamp)
