"""Workload shaping for batch-planner benchmarks and stress tests.

A realistic arrival stream is many sessions drawn from a *small* set of
device classes — one proxy serves thousands of clients, but the clients
cluster into a handful of handset models.  :func:`synthetic_requests`
models that: ``n_distinct`` device variants (distinct fingerprints) cycled
over ``n_sessions`` arrivals, so a plan cache sees ``n_distinct`` misses
and ``n_sessions - n_distinct`` hits.
"""

from __future__ import annotations

from typing import List

from repro.errors import ValidationError
from repro.planner.batch import PlanRequest
from repro.profiles.device import DeviceProfile
from repro.workloads.scenario import Scenario

__all__ = ["device_variants", "synthetic_requests"]


def device_variants(base: DeviceProfile, n_distinct: int) -> List[DeviceProfile]:
    """``n_distinct`` devices derived from ``base``, each a distinct class.

    Variant ``i`` keeps the base decoders but identifies as a different
    model with a slightly different frame-rate ceiling, so every variant
    fingerprints differently while staying plannable.
    """
    if n_distinct < 1:
        raise ValidationError("n_distinct must be >= 1")
    variants: List[DeviceProfile] = []
    for i in range(n_distinct):
        frame_cap = base.max_frame_rate
        if frame_cap is not None:
            frame_cap = max(1.0, frame_cap - float(i % 8))
        variants.append(
            DeviceProfile(
                device_id=f"{base.device_id}-v{i}",
                decoders=base.decoders,
                max_resolution=base.max_resolution,
                max_color_depth=base.max_color_depth,
                max_frame_rate=frame_cap,
                max_audio_kbps=base.max_audio_kbps,
                cpu_mips=base.cpu_mips,
                memory_mb=base.memory_mb,
                vendor=base.vendor,
                model=f"{base.model or base.device_id}-class{i}",
                attributes=base.attributes,
            )
        )
    return variants


def synthetic_requests(
    scenario: Scenario,
    n_sessions: int,
    n_distinct: int,
) -> List[PlanRequest]:
    """An arrival stream of ``n_sessions`` over ``n_distinct`` device classes.

    Round-robin over the variants, so every class appears equally often and
    cache hits are ``n_sessions - n_distinct`` under a stable topology.
    """
    variants = device_variants(scenario.device, n_distinct)
    return [
        PlanRequest(
            content=scenario.content,
            device=variants[i % n_distinct],
            user=scenario.user,
            sender_node=scenario.sender_node,
            receiver_node=scenario.receiver_node,
            context=scenario.context,
        )
        for i in range(n_sessions)
    ]
