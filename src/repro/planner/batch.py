"""Concurrent batch planning over a shared plan cache.

The paper sizes its architecture for a proxy serving *many* clients at
once; planning every arriving session from scratch wastes exactly the work
the cache in :mod:`repro.planner.cache` memoizes.  :class:`BatchPlanner`
pairs the two:

- :meth:`BatchPlanner.plan` fingerprints one request against the current
  infrastructure generations and serves it from the cache (single-flight
  on misses);
- :meth:`BatchPlanner.plan_batch` fans a whole arrival batch out over a
  :class:`~concurrent.futures.ThreadPoolExecutor`, preserving input order
  in the returned plans.

Planning here is read-only with respect to the infrastructure — admission
(reserving bandwidth) stays with
:class:`~repro.runtime.admission.AdmissionController`, which bumps the
ledger generation and thereby invalidates every cached plan that predates
the reservation.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.optimizer import OptimizeMemo
from repro.core.parameters import ParameterSet
from repro.core.selection import TieBreakPolicy
from repro.formats.registry import FormatRegistry
from repro.network.placement import ServicePlacement
from repro.network.reservations import BandwidthLedger
from repro.planner.cache import PlanCache
from repro.policy.engine import PolicyDecision, PolicyEngine, PolicyPlan
from repro.planner.fingerprint import (
    GenerationStamp,
    PlanFingerprint,
    fingerprint_request,
)
from repro.profiles.content import ContentProfile
from repro.profiles.context import ContextProfile
from repro.profiles.device import DeviceProfile
from repro.profiles.user import UserProfile
from repro.runtime.session import AdaptationSession, SessionPlan
from repro.services.catalog import ServiceCatalog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.workloads.scenario import Scenario

__all__ = ["PlanRequest", "BatchPlanner"]


@dataclass(frozen=True)
class PlanRequest:
    """One session to plan: profiles plus endpoints."""

    content: ContentProfile
    device: DeviceProfile
    user: UserProfile
    sender_node: str
    receiver_node: str
    context: Optional[ContextProfile] = None
    peer: Optional[str] = None


class BatchPlanner:
    """Plans many sessions concurrently through one shared cache."""

    def __init__(
        self,
        registry: FormatRegistry,
        parameters: ParameterSet,
        catalog: ServiceCatalog,
        placement: ServicePlacement,
        cache: Optional[PlanCache] = None,
        ledger: Optional[BandwidthLedger] = None,
        max_workers: Optional[int] = None,
        tie_break: TieBreakPolicy = TieBreakPolicy.PAPER,
        prune: bool = True,
        record_trace: bool = False,
        optimize_memo: Optional[OptimizeMemo] = None,
        policy_engine: Optional[PolicyEngine] = None,
    ) -> None:
        self._registry = registry
        self._parameters = parameters
        self._catalog = catalog
        self._placement = placement
        self._cache = cache if cache is not None else PlanCache()
        self._ledger = ledger
        self._max_workers = max_workers
        self._tie_break = tie_break
        self._prune = prune
        # Traces default *off* for batch planning: cached and batch plans
        # drop them anyway, and a full SelectionTrace per plan is the
        # single largest allocation on the hot path.  Opt back in with
        # ``record_trace=True``; plan equality is unaffected (the trace is
        # observability only — pinned by tests/test_batch_planner.py).
        self._record_trace = record_trace
        # One optimize() memo shared by every planned session: distinct
        # sessions over the same infrastructure repeat the same
        # (upstream, caps, format, bandwidth) relaxations, so solved
        # bisections transfer across the whole batch.
        self._optimize_memo = (
            optimize_memo if optimize_memo is not None else OptimizeMemo()
        )
        # Policy pass ahead of the selector (repro.policy).  Fast-path
        # answers live in the engine's own cache namespace; tier-forced
        # requests plan through per-tier sub-planners built lazily below
        # (plan fingerprints embed catalog generations that restart per
        # catalog, so each filtered catalog needs its own PlanCache).
        self._policy_engine = policy_engine
        self._tier_planners: Dict[str, "BatchPlanner"] = {}
        self._tier_lock = threading.Lock()

    @classmethod
    def for_scenario(cls, scenario: "Scenario", **kwargs) -> "BatchPlanner":
        """A planner over a scenario's registry/parameters/catalog/placement."""
        return cls(
            registry=scenario.registry,
            parameters=scenario.parameters,
            catalog=scenario.catalog,
            placement=scenario.placement,
            **kwargs,
        )

    @property
    def cache(self) -> PlanCache:
        return self._cache

    @property
    def registry(self) -> FormatRegistry:
        """The format registry plans resolve against (group planner needs it)."""
        return self._registry

    @property
    def placement(self) -> ServicePlacement:
        """The service placement (group reservation maps services to nodes)."""
        return self._placement

    @property
    def ledger(self) -> Optional[BandwidthLedger]:
        return self._ledger

    @property
    def optimize_memo(self) -> OptimizeMemo:
        """The shared optimize() memo (stats feed :class:`PlannerReport`)."""
        return self._optimize_memo

    @property
    def policy_engine(self) -> Optional[PolicyEngine]:
        return self._policy_engine

    # ------------------------------------------------------------------
    # Single-request planning
    # ------------------------------------------------------------------
    def current_stamp(self) -> GenerationStamp:
        """The infrastructure generations a plan computed now would carry."""
        return GenerationStamp(
            catalog=self._catalog.generation,
            topology=self._placement.topology.generation,
            placement=self._placement.generation,
            reservations=(
                self._ledger.generation if self._ledger is not None else 0
            ),
        )

    def fingerprint(self, request: PlanRequest) -> PlanFingerprint:
        return fingerprint_request(
            user=request.user,
            content=request.content,
            device=request.device,
            sender_node=request.sender_node,
            receiver_node=request.receiver_node,
            catalog=self._catalog,
            placement=self._placement,
            context=request.context,
            ledger=self._ledger,
            peer=request.peer,
            tie_break=self._tie_break,
            prune=self._prune,
            record_trace=self._record_trace,
        )

    def plan_uncached(self, request: PlanRequest) -> SessionPlan:
        """Plan one session from scratch (no cache lookup or insert).

        Deliberately bypasses the shared optimize() memo as well: this is
        the from-scratch baseline the batch-planner bench measures against,
        so it must pay full planning cost every time.
        """
        return self._plan_fresh(request, optimize_memo=None)

    def _plan_fresh(
        self, request: PlanRequest, optimize_memo: Optional[OptimizeMemo]
    ) -> SessionPlan:
        session = AdaptationSession(
            registry=self._registry,
            parameters=self._parameters,
            catalog=self._catalog,
            placement=self._placement,
            content=request.content,
            device=request.device,
            user=request.user,
            sender_node=request.sender_node,
            receiver_node=request.receiver_node,
            context=request.context,
            tie_break=self._tie_break,
            prune=self._prune,
            record_trace=self._record_trace,
            optimize_memo=optimize_memo,
        )
        return session.plan(peer=request.peer)

    def plan(self, request: PlanRequest) -> Union[SessionPlan, PolicyPlan]:
        """Plan one session through the policy pass and the cache.

        Cache misses compute with the planner's shared optimize() memo, so
        even distinct fingerprints reuse each other's solved relaxations.
        A policy ``skip`` answers without touching the selector at all; a
        ``deny`` raises :class:`~repro.errors.PolicyDeniedError`.
        """
        plan, _hit, _decision = self.plan_with_policy_info(request)
        return plan

    def plan_with_cache_info(
        self, request: PlanRequest
    ) -> Tuple[Union[SessionPlan, PolicyPlan], bool]:
        """Like :meth:`plan`, also reporting whether the cache already held it.

        The serving gateway surfaces the hit flag per response; the
        membership probe and the compute run under the cache's own lock
        discipline, so the flag can only be pessimistic (a concurrent
        leader may insert between probe and lookup), never wrong about a
        genuine hit.
        """
        plan, hit, _decision = self.plan_with_policy_info(request)
        return plan, hit

    def plan_with_policy_info(
        self, request: PlanRequest
    ) -> Tuple[Union[SessionPlan, PolicyPlan], bool, Optional[PolicyDecision]]:
        """Policy-aware planning: ``(plan, cache_hit, decision)``.

        The policy engine (when configured) is consulted *before* any
        fingerprinting or cache work.  ``decision`` is ``None`` when no
        rule fired (pure selector path).  For a ``skip`` the returned
        plan is the engine's zero-hop :class:`PolicyPlan` and the hit
        flag reflects the engine's decision cache; for ``force_tier``
        planning runs through a tier-filtered sub-planner with its own
        plan cache.
        """
        engine = self._policy_engine
        if engine is not None:
            decision = engine.evaluate(request)
            if decision.kind == "deny":
                decision.raise_if_denied()
            elif decision.kind == "skip":
                return decision.plan, decision.cached, decision
            elif decision.kind == "force_tier":
                plan, hit = self._tier_planner(decision.tier)._selector_plan(
                    request
                )
                return plan, hit, decision
        plan, hit = self._selector_plan(request)
        return plan, hit, None

    def _selector_plan(self, request: PlanRequest) -> Tuple[SessionPlan, bool]:
        """The raw selector path: fingerprint, cache probe, compute."""
        fingerprint = self.fingerprint(request)
        hit = fingerprint in self._cache
        plan = self._cache.get_or_compute(
            fingerprint,
            lambda: self._plan_fresh(request, optimize_memo=self._optimize_memo),
        )
        return plan, hit

    def _tier_planner(self, tier: str) -> "BatchPlanner":
        """The sub-planner whose catalog keeps only ``tier`` transcoders.

        Sender/receiver pseudo-descriptors pass through untouched.  Each
        sub-planner owns a fresh :class:`PlanCache` (fingerprints embed
        per-catalog generation counters, so sharing the main cache would
        mix namespaces) but shares the optimize() memo.
        """
        with self._tier_lock:
            planner = self._tier_planners.get(tier)
            if planner is None:
                filtered = ServiceCatalog(
                    descriptor
                    for descriptor in self._catalog
                    if not descriptor.is_transcoder or descriptor.tier == tier
                )
                planner = BatchPlanner(
                    registry=self._registry,
                    parameters=self._parameters,
                    catalog=filtered,
                    placement=self._placement,
                    cache=PlanCache(self._cache.max_entries),
                    ledger=self._ledger,
                    max_workers=1,
                    tie_break=self._tie_break,
                    prune=self._prune,
                    record_trace=self._record_trace,
                    optimize_memo=self._optimize_memo,
                )
                self._tier_planners[tier] = planner
            return planner

    # ------------------------------------------------------------------
    # Batch planning
    # ------------------------------------------------------------------
    def plan_batch(
        self,
        requests: Sequence[PlanRequest],
        use_cache: bool = True,
    ) -> List[SessionPlan]:
        """Plan a batch concurrently; plans come back in request order.

        Stale cache entries (older infrastructure generations) are purged
        up front, so the batch starts from a consistent snapshot.  With
        ``use_cache=False`` every request is planned from scratch — the
        uncached baseline the benchmark compares against.
        """
        if not requests:
            return []
        if use_cache:
            self._cache.purge_stale(self.current_stamp())
            planner = self.plan
        else:
            planner = self.plan_uncached
        workers = self._max_workers or min(8, len(requests))
        if workers <= 1:
            return [planner(request) for request in requests]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(planner, requests))
