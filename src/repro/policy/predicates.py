"""Typed predicates for policy rules.

Two scopes:

- **variant** predicates look at one content variant (its format, codec,
  configuration, bandwidth).  A rule with variant predicates matches when
  at least one variant satisfies all of them.
- **request** predicates look at the receiver side of a plan request
  (device identity, decoder set).  Every request predicate must match.

The vocabulary follows the QoE tolerance-band literature: requests whose
source material is already "close enough" (same codec, resolution within
bounds, bitrate under a ceiling) are candidates for skipping adaptation
entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.parameters import RESOLUTION
from repro.errors import ValidationError
from repro.profiles.content import ContentVariant
from repro.profiles.device import DeviceProfile

__all__ = [
    "PolicyPredicate",
    "CodecMatch",
    "FormatIn",
    "BitrateUnder",
    "ResolutionWithin",
    "DeviceIn",
    "Decodes",
    "PREDICATE_KINDS",
]


class PolicyPredicate:
    """Base class; concrete predicates set ``kind`` and ``scope``."""

    kind: str = ""
    scope: str = ""  # "variant" or "request"

    def matches_variant(self, variant: ContentVariant) -> bool:
        raise NotImplementedError  # pragma: no cover - abstract

    def matches_request(self, device: DeviceProfile) -> bool:
        raise NotImplementedError  # pragma: no cover - abstract

    def cache_key(self) -> Tuple[object, ...]:
        raise NotImplementedError  # pragma: no cover - abstract


def _clean_names(values: Sequence[str], what: str) -> Tuple[str, ...]:
    names = tuple(values)
    if not names:
        raise ValidationError(f"{what} needs at least one entry")
    for name in names:
        if not isinstance(name, str) or not name:
            raise ValidationError(f"{what} entries must be non-empty strings")
    if len(set(names)) != len(names):
        raise ValidationError(f"{what} lists an entry twice")
    return names


@dataclass(frozen=True)
class CodecMatch(PolicyPredicate):
    """The variant's format uses exactly this codec."""

    codec: str

    kind = "codec_match"
    scope = "variant"

    def __post_init__(self) -> None:
        if not self.codec:
            raise ValidationError("codec_match needs a non-empty codec")

    def matches_variant(self, variant: ContentVariant) -> bool:
        return variant.format.codec == self.codec

    def cache_key(self) -> Tuple[object, ...]:
        return (self.kind, self.codec)


@dataclass(frozen=True)
class FormatIn(PolicyPredicate):
    """The variant's format name is one of the listed formats."""

    formats: Tuple[str, ...]

    kind = "format_in"
    scope = "variant"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "formats", _clean_names(self.formats, "format_in")
        )

    def matches_variant(self, variant: ContentVariant) -> bool:
        return variant.format.name in self.formats

    def cache_key(self) -> Tuple[object, ...]:
        return (self.kind, self.formats)


@dataclass(frozen=True)
class BitrateUnder(PolicyPredicate):
    """The variant's required bandwidth is at most ``bps``."""

    bps: float

    kind = "bitrate_under"
    scope = "variant"

    def __post_init__(self) -> None:
        object.__setattr__(self, "bps", float(self.bps))
        if self.bps <= 0:
            raise ValidationError("bitrate_under needs bps > 0")

    def matches_variant(self, variant: ContentVariant) -> bool:
        return variant.required_bandwidth() <= self.bps

    def cache_key(self) -> Tuple[object, ...]:
        return (self.kind, self.bps)


@dataclass(frozen=True)
class ResolutionWithin(PolicyPredicate):
    """The variant's resolution is at most ``max_pixels``.

    A variant whose configuration does not assign a resolution counts as
    within any bound (it cannot exceed one it does not have).
    """

    max_pixels: float

    kind = "resolution_within"
    scope = "variant"

    def __post_init__(self) -> None:
        object.__setattr__(self, "max_pixels", float(self.max_pixels))
        if self.max_pixels <= 0:
            raise ValidationError("resolution_within needs max_pixels > 0")

    def matches_variant(self, variant: ContentVariant) -> bool:
        value = variant.configuration.get_value(RESOLUTION, 0.0)
        return value <= self.max_pixels

    def cache_key(self) -> Tuple[object, ...]:
        return (self.kind, self.max_pixels)


@dataclass(frozen=True)
class DeviceIn(PolicyPredicate):
    """The requesting device id is one of the listed receiver classes."""

    device_ids: Tuple[str, ...]

    kind = "device_in"
    scope = "request"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "device_ids", _clean_names(self.device_ids, "device_in")
        )

    def matches_request(self, device: DeviceProfile) -> bool:
        return device.device_id in self.device_ids

    def cache_key(self) -> Tuple[object, ...]:
        return (self.kind, self.device_ids)


@dataclass(frozen=True)
class Decodes(PolicyPredicate):
    """The requesting device can natively decode the named format."""

    format_name: str

    kind = "decodes"
    scope = "request"

    def __post_init__(self) -> None:
        if not self.format_name:
            raise ValidationError("decodes needs a non-empty format name")

    def matches_request(self, device: DeviceProfile) -> bool:
        return device.can_decode(self.format_name)

    def cache_key(self) -> Tuple[object, ...]:
        return (self.kind, self.format_name)


#: kind string -> predicate class, the registry serialization/lint use.
PREDICATE_KINDS = {
    cls.kind: cls
    for cls in (
        CodecMatch,
        FormatIn,
        BitrateUnder,
        ResolutionWithin,
        DeviceIn,
        Decodes,
    )
}
