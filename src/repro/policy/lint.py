"""Static checks for policy documents (``repro lint --policy``).

Structural problems — unknown predicate or action names, missing keys —
are already rejected by strict deserialization, so by the time a
document reaches the linter it is well-formed.  The linter finds the
*semantic* problems deserialization cannot:

- rules that can never fire (anything after a ``deny``/``force_tier``
  catch-all, or an exact duplicate of an earlier non-skip rule);
- rules whose predicate sets are identical (overlap: only the first
  matters for non-skip actions);
- with a scenario in hand: tiers no catalog service provides, format
  names the registry does not know.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.policy.document import PolicyDocument, PolicyRule
from repro.policy.predicates import Decodes, FormatIn

__all__ = ["lint_policy"]


def _predicate_signature(rule: PolicyRule) -> Tuple[object, ...]:
    return tuple(sorted(p.cache_key() for p in rule.predicates))


def _rule_formats(rule: PolicyRule) -> List[str]:
    names: List[str] = []
    for predicate in rule.predicates:
        if isinstance(predicate, FormatIn):
            names.extend(predicate.formats)
        elif isinstance(predicate, Decodes):
            names.append(predicate.format_name)
    return names


def lint_policy(
    document: PolicyDocument, scenario: Optional[Any] = None
) -> List[Any]:
    """Return lint findings for ``document``.

    ``scenario`` (a :class:`repro.workloads.scenario.Scenario`) enables
    the catalog/registry-aware checks.  Findings reuse the scenario
    linter's ``Finding``/``Severity`` vocabulary.
    """
    from repro.workloads.lint import Finding, Severity

    findings: List[Finding] = []

    def error(subject: str, message: str) -> None:
        findings.append(Finding(Severity.ERROR, subject, message))

    def warning(subject: str, message: str) -> None:
        findings.append(Finding(Severity.WARNING, subject, message))

    subject = f"policy {document.name!r}"
    if not document.rules:
        warning(subject, "document has no rules; every request runs the selector")

    # --- reachability -------------------------------------------------
    # A deny/force_tier rule always decides the request when its
    # predicates match; a *catch-all* one therefore terminates
    # evaluation for every request.  A skip catch-all may still fall
    # through (soundness check), so it only earns a warning.
    blocked_by: Optional[PolicyRule] = None
    for rule in document.rules:
        rule_subject = f"{subject} rule {rule.rule_id!r}"
        if blocked_by is not None:
            error(
                rule_subject,
                f"unreachable: rule {blocked_by.rule_id!r} is a catch-all "
                f"{blocked_by.action} before it",
            )
            continue
        if rule.is_catch_all and rule.action in ("deny", "force_tier"):
            blocked_by = rule

    # --- overlap ------------------------------------------------------
    seen: dict = {}
    for rule in document.rules:
        signature = (_predicate_signature(rule),)
        earlier = seen.get(signature)
        if earlier is not None:
            rule_subject = f"{subject} rule {rule.rule_id!r}"
            if earlier.action in ("deny", "force_tier"):
                error(
                    rule_subject,
                    f"unreachable: identical predicates to earlier "
                    f"{earlier.action} rule {earlier.rule_id!r}",
                )
            else:
                warning(
                    rule_subject,
                    f"overlaps rule {earlier.rule_id!r}: identical "
                    f"predicate set",
                )
        else:
            seen[signature] = rule

    # --- scenario-aware checks ---------------------------------------
    if scenario is not None:
        tiers = {descriptor.tier for descriptor in scenario.catalog.transcoders()}
        registered = set(scenario.registry.names())
        for rule in document.rules:
            rule_subject = f"{subject} rule {rule.rule_id!r}"
            if rule.action == "force_tier" and rule.tier not in tiers:
                warning(
                    rule_subject,
                    f"forces tier {rule.tier!r} but no transcoder in the "
                    f"catalog provides it",
                )
            for name in _rule_formats(rule):
                if name not in registered:
                    warning(
                        rule_subject,
                        f"references format {name!r} not in the registry",
                    )
    return findings
