"""Wire format for policy documents.

Follows the strict-decoding contract of :mod:`repro.profiles.serialization`:
every structural mistake raises :class:`ValidationError` with a message
naming the offending key, so a mistyped document becomes an HTTP 400 at
the gateway instead of a traceback.

The document tag is ``"repro-policy"`` — distinct from scenario files —
so ``/admin/reload`` can tell a policy-only hot swap from a full
scenario reload.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Union

from repro.errors import ValidationError
from repro.policy.document import ACTIONS, PolicyDocument, PolicyRule
from repro.policy.predicates import (
    PREDICATE_KINDS,
    BitrateUnder,
    CodecMatch,
    Decodes,
    DeviceIn,
    FormatIn,
    PolicyPredicate,
    ResolutionWithin,
)
from repro.profiles.serialization import _mapping, _require, _sequence

__all__ = [
    "POLICY_DOCUMENT",
    "POLICY_VERSION",
    "predicate_to_dict",
    "predicate_from_dict",
    "rule_to_dict",
    "rule_from_dict",
    "policy_to_dict",
    "policy_from_dict",
    "save_policy",
    "load_policy",
]

POLICY_DOCUMENT = "repro-policy"
POLICY_VERSION = 1


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------
def predicate_to_dict(predicate: PolicyPredicate) -> Dict[str, Any]:
    if isinstance(predicate, CodecMatch):
        return {"kind": predicate.kind, "codec": predicate.codec}
    if isinstance(predicate, FormatIn):
        return {"kind": predicate.kind, "formats": list(predicate.formats)}
    if isinstance(predicate, BitrateUnder):
        return {"kind": predicate.kind, "bps": predicate.bps}
    if isinstance(predicate, ResolutionWithin):
        return {"kind": predicate.kind, "max_pixels": predicate.max_pixels}
    if isinstance(predicate, DeviceIn):
        return {"kind": predicate.kind, "device_ids": list(predicate.device_ids)}
    if isinstance(predicate, Decodes):
        return {"kind": predicate.kind, "format": predicate.format_name}
    raise ValidationError(
        f"cannot serialize predicate of type {type(predicate).__name__}"
    )


def predicate_from_dict(data: Mapping[str, Any]) -> PolicyPredicate:
    data = _mapping(data, "policy predicate")
    kind = _require(data, "kind", "policy predicate")
    if kind not in PREDICATE_KINDS:
        raise ValidationError(
            f"unknown policy predicate kind {kind!r}; choose from "
            f"{', '.join(sorted(PREDICATE_KINDS))}"
        )
    if kind == "codec_match":
        return CodecMatch(codec=_require(data, "codec", "codec_match"))
    if kind == "format_in":
        return FormatIn(
            formats=tuple(
                _sequence(_require(data, "formats", "format_in"), "format_in.formats")
            )
        )
    if kind == "bitrate_under":
        return BitrateUnder(bps=_number(data, "bps", "bitrate_under"))
    if kind == "resolution_within":
        return ResolutionWithin(
            max_pixels=_number(data, "max_pixels", "resolution_within")
        )
    if kind == "device_in":
        return DeviceIn(
            device_ids=tuple(
                _sequence(
                    _require(data, "device_ids", "device_in"),
                    "device_in.device_ids",
                )
            )
        )
    return Decodes(format_name=_require(data, "format", "decodes"))


def _number(data: Mapping[str, Any], key: str, what: str) -> float:
    value = _require(data, key, what)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(f"{what}.{key} must be a number, got {value!r}")
    return float(value)


# ----------------------------------------------------------------------
# Rules and documents
# ----------------------------------------------------------------------
def rule_to_dict(rule: PolicyRule) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "rule_id": rule.rule_id,
        "action": rule.action,
        "predicates": [predicate_to_dict(p) for p in rule.predicates],
    }
    if rule.tier:
        payload["tier"] = rule.tier
    if rule.reason:
        payload["reason"] = rule.reason
    if rule.tolerance:
        payload["tolerance"] = rule.tolerance
    return payload


def rule_from_dict(data: Mapping[str, Any]) -> PolicyRule:
    data = _mapping(data, "policy rule")
    action = _require(data, "action", "policy rule")
    if action not in ACTIONS:
        raise ValidationError(
            f"unknown policy action {action!r}; choose from "
            f"{', '.join(ACTIONS)}"
        )
    tolerance = data.get("tolerance", 0.0)
    if isinstance(tolerance, bool) or not isinstance(tolerance, (int, float)):
        raise ValidationError(
            f"policy rule tolerance must be a number, got {tolerance!r}"
        )
    return PolicyRule(
        rule_id=_require(data, "rule_id", "policy rule"),
        action=action,
        predicates=tuple(
            predicate_from_dict(item)
            for item in _sequence(
                data.get("predicates", ()), "policy rule predicates"
            )
        ),
        tier=data.get("tier", ""),
        reason=data.get("reason", ""),
        tolerance=float(tolerance),
    )


def policy_to_dict(document: PolicyDocument) -> Dict[str, Any]:
    return {
        "document": POLICY_DOCUMENT,
        "version": POLICY_VERSION,
        "name": document.name,
        "description": document.description,
        "rules": [rule_to_dict(rule) for rule in document.rules],
    }


def policy_from_dict(data: Mapping[str, Any]) -> PolicyDocument:
    data = _mapping(data, "policy document")
    tag = data.get("document")
    if tag != POLICY_DOCUMENT:
        raise ValidationError(
            f"not a policy document: expected document={POLICY_DOCUMENT!r}, "
            f"got {tag!r}"
        )
    version = data.get("version")
    if version != POLICY_VERSION:
        raise ValidationError(
            f"unsupported policy document version {version!r} "
            f"(this build reads version {POLICY_VERSION})"
        )
    return PolicyDocument(
        name=_require(data, "name", "policy document"),
        description=data.get("description", ""),
        rules=tuple(
            rule_from_dict(item)
            for item in _sequence(
                data.get("rules", ()), "policy document rules"
            )
        ),
    )


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------
def save_policy(document: PolicyDocument, target: Union[str, Path]) -> Path:
    path = Path(target)
    path.write_text(
        json.dumps(policy_to_dict(document), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_policy(source: Union[str, Path]) -> PolicyDocument:
    path = Path(source)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValidationError(f"malformed policy file {path}: {exc}") from exc
    return policy_from_dict(data)
