"""Policy documents: ordered rules of predicates plus an action.

Rules are evaluated first-to-last; the first rule whose predicates match
(and, for ``skip``, whose zero-hop answer passes the soundness check)
decides the request.  A rule with no predicates is a catch-all — every
rule after one is unreachable (``repro lint`` flags this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ValidationError
from repro.policy.predicates import PolicyPredicate
from repro.services.descriptor import SERVICE_TIERS

__all__ = ["ACTIONS", "PolicyRule", "PolicyDocument"]

#: The actions a rule may take, in documentation order.
ACTIONS = ("skip", "force_tier", "deny")


@dataclass(frozen=True)
class PolicyRule:
    """One rule: match predicates, take an action.

    ``tolerance`` only applies to ``skip``: the zero-hop answer may fall
    short of the selector-optimum upper bound by at most this much and
    still fire.  ``tier`` is required for ``force_tier``; ``reason`` is
    the denial message for ``deny`` (a default is derived when empty).
    """

    rule_id: str
    action: str
    predicates: Tuple[PolicyPredicate, ...] = ()
    tier: str = ""
    reason: str = ""
    tolerance: float = 0.0

    def __post_init__(self) -> None:
        if not self.rule_id:
            raise ValidationError("a policy rule needs a non-empty rule_id")
        if self.action not in ACTIONS:
            raise ValidationError(
                f"rule {self.rule_id!r}: unknown action {self.action!r}; "
                f"choose from {', '.join(ACTIONS)}"
            )
        object.__setattr__(self, "predicates", tuple(self.predicates))
        for predicate in self.predicates:
            if not isinstance(predicate, PolicyPredicate):
                raise ValidationError(
                    f"rule {self.rule_id!r}: predicates must be "
                    f"PolicyPredicate instances"
                )
        object.__setattr__(self, "tolerance", float(self.tolerance))
        if self.tolerance < 0:
            raise ValidationError(
                f"rule {self.rule_id!r}: tolerance must be >= 0"
            )
        if self.action == "force_tier":
            if self.tier not in SERVICE_TIERS:
                raise ValidationError(
                    f"rule {self.rule_id!r}: force_tier needs a tier from "
                    f"{', '.join(SERVICE_TIERS)}, got {self.tier!r}"
                )
        elif self.tier:
            raise ValidationError(
                f"rule {self.rule_id!r}: only force_tier rules take a tier"
            )

    # ------------------------------------------------------------------
    @property
    def variant_predicates(self) -> Tuple[PolicyPredicate, ...]:
        return tuple(p for p in self.predicates if p.scope == "variant")

    @property
    def request_predicates(self) -> Tuple[PolicyPredicate, ...]:
        return tuple(p for p in self.predicates if p.scope == "request")

    @property
    def is_catch_all(self) -> bool:
        """True when the rule has no predicates (matches everything)."""
        return not self.predicates

    def deny_reason(self) -> str:
        return self.reason or f"request denied by policy rule {self.rule_id!r}"

    def cache_key(self) -> Tuple[object, ...]:
        return (
            self.rule_id,
            self.action,
            tuple(p.cache_key() for p in self.predicates),
            self.tier,
            self.reason,
            self.tolerance,
        )


@dataclass(frozen=True)
class PolicyDocument:
    """A named, ordered collection of policy rules."""

    name: str
    rules: Tuple[PolicyRule, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("a policy document needs a non-empty name")
        object.__setattr__(self, "rules", tuple(self.rules))
        seen = set()
        for rule in self.rules:
            if not isinstance(rule, PolicyRule):
                raise ValidationError(
                    f"policy {self.name!r}: rules must be PolicyRule instances"
                )
            if rule.rule_id in seen:
                raise ValidationError(
                    f"policy {self.name!r}: duplicate rule id {rule.rule_id!r}"
                )
            seen.add(rule.rule_id)

    def __len__(self) -> int:
        return len(self.rules)

    def cache_key(self) -> Tuple[object, ...]:
        return (
            self.name,
            tuple(rule.cache_key() for rule in self.rules),
        )
