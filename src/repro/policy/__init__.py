"""Declarative pre-planning policy: decide *whether* before *how*.

The selector (``docs/ALGORITHM.md``) answers "what is the best adaptation
chain?" — but in realistic traffic mixes most requests need no adaptation
at all, and running the heap selector to discover a passthrough is pure
overhead.  This package adds a policy pass evaluated before the selector:
an ordered list of rules, each a conjunction of typed predicates over the
request (receiver class) and the content variants, with one of three
actions:

- ``skip`` — answer a zero-hop plan immediately, *without* touching the
  selector.  A skip only fires when it is provably sound: the zero-hop
  satisfaction must be within the rule's declared tolerance of an upper
  bound on the selector's optimum (see ``engine.py``).
- ``force_tier`` — constrain planning to one hardware tier (``hw``/``sw``)
  of the service catalog.
- ``deny`` — reject the request outright with a reason (HTTP 403 at the
  gateway).

Documents are wire-serializable (``serialization.py``), lintable
(``lint.py``), embeddable in scenario files, and hot-swappable through
the gateway's ``/admin/reload``.
"""

from repro.policy.document import ACTIONS, PolicyDocument, PolicyRule
from repro.policy.engine import PolicyDecision, PolicyEngine, PolicyPlan
from repro.policy.predicates import (
    PREDICATE_KINDS,
    BitrateUnder,
    CodecMatch,
    DeviceIn,
    Decodes,
    FormatIn,
    PolicyPredicate,
    ResolutionWithin,
)
from repro.policy.serialization import (
    POLICY_DOCUMENT,
    POLICY_VERSION,
    load_policy,
    policy_from_dict,
    policy_to_dict,
    save_policy,
)

__all__ = [
    "ACTIONS",
    "PolicyDocument",
    "PolicyRule",
    "PolicyDecision",
    "PolicyEngine",
    "PolicyPlan",
    "PolicyPredicate",
    "PREDICATE_KINDS",
    "CodecMatch",
    "FormatIn",
    "BitrateUnder",
    "ResolutionWithin",
    "DeviceIn",
    "Decodes",
    "POLICY_DOCUMENT",
    "POLICY_VERSION",
    "policy_to_dict",
    "policy_from_dict",
    "save_policy",
    "load_policy",
]
