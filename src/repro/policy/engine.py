"""The policy engine: evaluate rules against a plan request.

Soundness of the zero-hop fast path
-----------------------------------

A ``skip`` answers with a source variant delivered unmodified.  It is
only allowed to fire when that answer is provably as good as whatever
the selector would find, within the rule's declared tolerance:

1. every adaptation chain delivers some source variant's configuration
   *reduced* by a sequence of ``capped_by`` steps (transcoders only
   degrade quality, never improve it), then reduced again by the
   receiver's rendering caps and the context caps;
2. every satisfaction function is monotone non-decreasing, and every
   combiner is monotone in each component;
3. therefore ``max over ALL variants v of satisfaction(v.configuration
   capped by the receiver/context caps)`` is an upper bound on the
   selector's optimal satisfaction;
4. the zero-hop answer is the best *decodable* (and rule-matching)
   variant under the same capped evaluation.  Skip fires iff
   ``zero_hop_best >= upper_bound - rule.tolerance``.

If any variant's evaluation raises :class:`UnknownParameterError` (the
user prefers a parameter the variant does not carry) the engine cannot
bound the selector and falls through to it — conservative, hence sound.

Decisions are cached per (policy generation, content, device, user,
context, peer); :meth:`PolicyEngine.swap` bumps the generation and
clears only this cache, never the selector's plan cache.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.core.selection import SelectionResult
from repro.errors import PolicyDeniedError, UnknownParameterError
from repro.policy.document import PolicyDocument, PolicyRule
from repro.profiles.content import ContentVariant

__all__ = ["PolicyDecision", "PolicyEngine", "PolicyPlan"]


@dataclass(frozen=True)
class PolicyPlan:
    """A zero-hop plan produced by a ``skip`` rule.

    Mirrors the planner's plan shape (``success`` + ``result``) so the
    gateway, the simulator's reservation path, and the batch planner can
    treat it interchangeably with a selector-produced plan.
    """

    success: bool
    result: SelectionResult
    rule_id: str
    trace: Tuple[str, ...] = ()


@dataclass(frozen=True)
class PolicyDecision:
    """Outcome of one policy evaluation.

    ``kind`` is one of ``"skip"``, ``"force_tier"``, ``"deny"``, or
    ``"none"`` (no rule fired; run the selector).  ``cached`` is True
    when the decision came from the fast-path cache.
    """

    kind: str
    rule_id: str = ""
    tier: str = ""
    reason: str = ""
    trace: Tuple[str, ...] = ()
    plan: Optional[PolicyPlan] = None
    cached: bool = False

    def raise_if_denied(self) -> None:
        if self.kind == "deny":
            raise PolicyDeniedError(self.reason, rule_id=self.rule_id)


_NO_DECISION = PolicyDecision(kind="none")


def merge_caps(device: Any, context: Any) -> Dict[str, float]:
    """Receiver-side parameter caps: device rendering caps min-merged
    with context caps (the same reduction the selector's receiver edge
    applies)."""
    caps: Dict[str, float] = dict(device.rendering_caps())
    if context is not None:
        for name, limit in context.parameter_caps().items():
            current = caps.get(name)
            caps[name] = limit if current is None else min(current, limit)
    return caps


class PolicyEngine:
    """Evaluates a :class:`PolicyDocument` ahead of the selector.

    Thread-safe: the gateway's worker threads all consult one engine.
    """

    def __init__(
        self,
        document: Optional[PolicyDocument] = None,
        cache_size: int = 4096,
    ) -> None:
        self._document = document
        self._generation = 0
        self._cache_size = max(1, int(cache_size))
        self._cache: Dict[Tuple[object, ...], PolicyDecision] = {}
        self._lock = threading.Lock()
        self._stats = {
            "evaluations": 0,
            "cache_hits": 0,
            "fast_path": 0,
            "tier_forced": 0,
            "denied": 0,
        }

    # ------------------------------------------------------------------
    @property
    def document(self) -> Optional[PolicyDocument]:
        return self._document

    @property
    def generation(self) -> int:
        return self._generation

    def swap(self, document: Optional[PolicyDocument]) -> int:
        """Install a new document; returns invalidated fast-path entries.

        Bumps the policy generation and clears only the decision cache —
        selector plan caches are untouched by design.
        """
        with self._lock:
            self._document = document
            self._generation += 1
            invalidated = len(self._cache)
            self._cache.clear()
            return invalidated

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            document = self._document
            return {
                "policy": document.name if document is not None else None,
                "policy_generation": self._generation,
                "rules": len(document.rules) if document is not None else 0,
                "cache_entries": len(self._cache),
                "counters": dict(self._stats),
            }

    # ------------------------------------------------------------------
    def evaluate(self, request: Any) -> PolicyDecision:
        """Decide one request; ``request`` is a planner ``PlanRequest``."""
        with self._lock:
            document = self._document
            self._stats["evaluations"] += 1
        if document is None or not document.rules:
            return _NO_DECISION
        key = self._key(request)
        with self._lock:
            hit = self._cache.get(key)
        if hit is not None:
            decision = replace(hit, cached=True)
            self._count(decision)
            with self._lock:
                self._stats["cache_hits"] += 1
            return decision
        decision = self._evaluate_fresh(document, request)
        with self._lock:
            if len(self._cache) >= self._cache_size:
                self._cache.clear()
            self._cache[key] = decision
        self._count(decision)
        return decision

    # ------------------------------------------------------------------
    def _count(self, decision: PolicyDecision) -> None:
        bucket = {
            "skip": "fast_path",
            "force_tier": "tier_forced",
            "deny": "denied",
        }.get(decision.kind)
        if bucket is not None:
            with self._lock:
                self._stats[bucket] += 1

    def _key(self, request: Any) -> Tuple[object, ...]:
        context = request.context
        return (
            "policy",
            self._generation,
            request.content.cache_key(),
            request.device.cache_key(),
            request.user.cache_key(),
            context.cache_key() if context is not None else None,
            request.peer,
        )

    def _evaluate_fresh(
        self, document: PolicyDocument, request: Any
    ) -> PolicyDecision:
        caps = merge_caps(request.device, request.context)
        satisfaction = request.user.satisfaction(request.peer)
        variants: List[ContentVariant] = list(request.content.variants)
        for rule in document.rules:
            if not all(
                p.matches_request(request.device)
                for p in rule.request_predicates
            ):
                continue
            variant_predicates = rule.variant_predicates
            matching = [
                v
                for v in variants
                if all(p.matches_variant(v) for p in variant_predicates)
            ]
            if variant_predicates and not matching:
                continue
            trace = self._trace(rule)
            if rule.action == "deny":
                return PolicyDecision(
                    kind="deny",
                    rule_id=rule.rule_id,
                    reason=rule.deny_reason(),
                    trace=trace,
                )
            if rule.action == "force_tier":
                return PolicyDecision(
                    kind="force_tier",
                    rule_id=rule.rule_id,
                    tier=rule.tier,
                    trace=trace,
                )
            plan = self._zero_hop_plan(
                request, rule, matching, variants, caps, satisfaction
            )
            if plan is None:
                # Skip would not be sound here; later rules (and finally
                # the selector) still get their turn.
                continue
            return PolicyDecision(
                kind="skip",
                rule_id=rule.rule_id,
                trace=plan.trace,
                plan=plan,
            )
        return _NO_DECISION

    @staticmethod
    def _trace(rule: PolicyRule) -> Tuple[str, ...]:
        predicates = ", ".join(p.kind for p in rule.predicates) or "catch-all"
        return (f"rule {rule.rule_id!r} matched ({predicates})",)

    def _zero_hop_plan(
        self,
        request: Any,
        rule: PolicyRule,
        matching: List[ContentVariant],
        variants: List[ContentVariant],
        caps: Dict[str, float],
        satisfaction: Any,
    ) -> Optional[PolicyPlan]:
        candidates = [
            v for v in matching if request.device.can_decode(v.format.name)
        ]
        if not candidates:
            return None
        try:
            upper = max(
                satisfaction.evaluate(v.configuration.capped_by(caps))
                for v in variants
            )
            best = None
            best_score = float("-inf")
            for variant in candidates:
                capped = variant.configuration.capped_by(caps)
                score = satisfaction.evaluate(capped)
                if score > best_score:
                    best, best_score, best_capped = variant, score, capped
        except UnknownParameterError:
            return None
        if best is None or best_score < upper - rule.tolerance:
            return None
        result = SelectionResult(
            success=True,
            path=("sender", "receiver"),
            formats=(best.format.name,),
            configuration=best_capped,
            satisfaction=best_score,
            accumulated_cost=0.0,
            rounds_run=0,
            trace=None,
        )
        trace = self._trace(rule) + (
            f"zero-hop {best.format.name}: satisfaction "
            f"{best_score:.4f} >= bound {upper:.4f} - "
            f"tolerance {rule.tolerance:g}",
        )
        return PolicyPlan(
            success=True, result=result, rule_id=rule.rule_id, trace=trace
        )
