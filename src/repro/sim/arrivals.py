"""Arrival processes: when sessions show up.

Every process is a pure function of an explicitly injected
:class:`random.Random` — the RNG-plumbing rule of the simulator (no
module-level randomness anywhere) — so the same seed always produces the
same arrival times, and therefore the same event trace.
"""

from __future__ import annotations

import random
from typing import List

from repro.errors import ValidationError

__all__ = ["ArrivalProcess", "UniformArrivals", "PoissonArrivals"]


class ArrivalProcess:
    """Produces the virtual arrival instants for one run."""

    def times(self, count: int, rng: random.Random) -> List[float]:
        """``count`` non-decreasing arrival times, driven only by ``rng``."""
        raise NotImplementedError


class UniformArrivals(ArrivalProcess):
    """Evenly spaced arrivals over a window (a paced load test)."""

    def __init__(self, over_s: float, start_s: float = 0.0) -> None:
        if over_s < 0:
            raise ValidationError("arrival window must be >= 0")
        self._over_s = over_s
        self._start_s = start_s

    def times(self, count: int, rng: random.Random) -> List[float]:
        if count <= 0:
            return []
        if count == 1:
            return [self._start_s]
        step = self._over_s / (count - 1) if count > 1 else 0.0
        return [self._start_s + i * step for i in range(count)]


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at a fixed rate (the classic open-loop load)."""

    def __init__(self, rate_per_s: float, start_s: float = 0.0) -> None:
        if rate_per_s <= 0:
            raise ValidationError("arrival rate must be positive")
        self._rate = rate_per_s
        self._start_s = start_s

    def times(self, count: int, rng: random.Random) -> List[float]:
        times: List[float] = []
        t = self._start_s
        for _ in range(max(0, count)):
            t += rng.expovariate(self._rate)
            times.append(t)
        return times
