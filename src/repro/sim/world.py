"""Shared mutable world state for a simulation run.

A :class:`SimWorld` owns everything the concurrent sessions contend over:

- the **base scenario** (registry, parameters, catalog, topology,
  placement) — never mutated;
- the **fault overlay**: per-link capacity factors, downed nodes, and
  crashed services, mutated by :mod:`repro.sim.faults` injectors as the
  virtual clock advances;
- the **bandwidth ledger**: every admitted session's reservations, so
  later admissions plan against what is actually left;
- one shared :class:`~repro.core.optimizer.OptimizeMemo`, so the
  thousands of plans and replans a run performs reuse each other's solved
  relaxations exactly as a :class:`~repro.planner.batch.BatchPlanner`
  batch would.

Planning goes through the existing planner stack: the world snapshots an
*effective residual* topology (base capacity x fault factor, minus
reservations), filters crashed services out of the catalog, and hands the
snapshot to a :class:`BatchPlanner`.  Snapshots are cached per
``(fault generation, ledger generation)`` pair, so a burst of arrivals
against unchanged state shares one planner — and its plan cache — while
any fault or reservation invalidates it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.optimizer import OptimizeMemo
from repro.core.parameters import FRAME_RATE
from repro.errors import ReproError, ValidationError
from repro.network.placement import ServicePlacement
from repro.network.reservations import BandwidthLedger, Reservation
from repro.network.topology import Link, NetworkTopology
from repro.planner.batch import BatchPlanner, PlanRequest
from repro.planner.cache import PlanCache
from repro.policy.engine import PolicyEngine
from repro.runtime.session import SessionPlan
from repro.serve.health import HealthRegistry
from repro.services.catalog import ServiceCatalog
from repro.workloads.scenario import Scenario

__all__ = ["HopLease", "SimWorld"]

#: Service ids the graph builder synthesizes for the endpoints; they are
#: per-session, never in the shared catalog or placement.
_ENDPOINT_IDS = ("sender", "receiver")


def _canonical(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class HopLease:
    """One streaming hop's transport facts plus its ledger reservation."""

    source: str
    target: str
    format_name: str
    #: Bandwidth one frame per second costs on this hop (bits/s at 1 fps).
    per_frame_bps: float
    route: Tuple[str, ...]
    reservation: Reservation


class SimWorld:
    """Fault overlay + reservations + snapshot planning over one scenario."""

    def __init__(
        self,
        scenario: Scenario,
        optimize_memo: Optional[OptimizeMemo] = None,
        plan_cache_size: int = 256,
        seed: int = 0,
    ) -> None:
        self.scenario = scenario
        self.ledger = BandwidthLedger(scenario.topology)
        self._factors: Dict[Tuple[str, str], float] = {}
        self._down_nodes: Set[str] = set()
        self._down_services: Set[str] = set()
        self._memo = optimize_memo if optimize_memo is not None else OptimizeMemo()
        self._plan_cache_size = plan_cache_size
        self._generation = 0
        self._planner: Optional[BatchPlanner] = None
        self._planner_key: Optional[Tuple[int, int, int, frozenset]] = None
        # Gray-failure overlay: services that silently drop a fraction of
        # attempts without touching the fault generation — only a health
        # registry (if attached) can learn about them through outcomes.
        self._gray_rng = random.Random(f"{seed}:gray")
        self._gray_rates: Dict[str, float] = {}
        self._health: Optional[HealthRegistry] = None
        self._clock: Callable[[], float] = lambda: 0.0
        # One policy engine for the whole run (when the scenario carries a
        # policy document): its decision cache spans snapshot rebuilds,
        # mirroring how the gateway keeps one engine across reloads.
        self._policy_engine: Optional[PolicyEngine] = (
            PolicyEngine(scenario.policy)
            if scenario.policy is not None
            else None
        )

    @property
    def policy_engine(self) -> Optional[PolicyEngine]:
        return self._policy_engine

    @property
    def optimize_memo(self) -> OptimizeMemo:
        return self._memo

    @property
    def generation(self) -> int:
        """Monotonic fault-overlay mutation counter."""
        return self._generation

    # ------------------------------------------------------------------
    # Fault overlay mutation (called by FaultInjectors)
    # ------------------------------------------------------------------
    def set_link_factor(self, a: str, b: str, factor: float) -> None:
        """Scale one link's capacity; 0 kills it, 1 restores nominal."""
        self.scenario.topology.get_link(a, b)  # validate it exists
        if factor < 0:
            raise ValidationError("link factor must be >= 0")
        key = _canonical(a, b)
        if factor == 1.0:
            self._factors.pop(key, None)
        else:
            self._factors[key] = factor
        self._generation += 1

    def link_factor(self, a: str, b: str) -> float:
        return self._factors.get(_canonical(a, b), 1.0)

    def fail_node(self, node_id: str) -> None:
        self.scenario.topology.get_node(node_id)
        self._down_nodes.add(node_id)
        self._generation += 1

    def restore_node(self, node_id: str) -> None:
        self._down_nodes.discard(node_id)
        self._generation += 1

    def node_is_down(self, node_id: str) -> bool:
        return node_id in self._down_nodes

    def crash_service(self, service_id: str) -> None:
        self.scenario.catalog.get(service_id)
        self._down_services.add(service_id)
        self._generation += 1

    def recover_service(self, service_id: str) -> None:
        self._down_services.discard(service_id)
        self._generation += 1

    def service_is_down(self, service_id: str) -> bool:
        """Down explicitly, or stranded on a downed node."""
        if service_id in self._down_services:
            return True
        placement = self.scenario.placement
        return (
            placement.is_placed(service_id)
            and placement.node_of(service_id) in self._down_nodes
        )

    # ------------------------------------------------------------------
    # Gray failures + health monitoring
    # ------------------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Use ``clock`` (virtual time) for health-registry timestamps."""
        self._clock = clock

    def attach_health(self, registry: HealthRegistry) -> None:
        """Route per-attempt outcomes into ``registry``'s breakers."""
        self._health = registry

    @property
    def health(self) -> Optional[HealthRegistry]:
        return self._health

    @property
    def monitoring(self) -> bool:
        """Is per-attempt outcome accounting active this run?"""
        return bool(self._gray_rates) or self._health is not None

    def set_gray_failure(self, service_id: str, rate: float) -> None:
        """Make ``service_id`` silently fail ``rate`` of its attempts.

        Deliberately does *not* bump the fault generation: a gray failure
        is invisible to the planner's liveness filter — only outcome
        reports (and the breaker they feed) can surface it.
        """
        self.scenario.catalog.get(service_id)
        if not 0.0 < rate <= 1.0:
            raise ValidationError("gray failure rate must be in (0, 1]")
        self._gray_rates[service_id] = rate

    def clear_gray_failure(self, service_id: str) -> None:
        self._gray_rates.pop(service_id, None)

    def gray_rate(self, service_id: str) -> float:
        return self._gray_rates.get(service_id, 0.0)

    def attempt_chain(self, services: Sequence[str]) -> Optional[str]:
        """Roll one delivery attempt across ``services``.

        Every service on the chain rolls against its gray-failure rate
        (endpoints never fail), and every outcome is reported to the
        attached health registry at the current virtual time.  Returns
        the first service that failed, or ``None`` on a clean pass.
        """
        now = self._clock()
        failed: Optional[str] = None
        for service_id in services:
            if service_id in _ENDPOINT_IDS:
                continue
            rate = self._gray_rates.get(service_id, 0.0)
            ok = rate <= 0.0 or self._gray_rng.random() >= rate
            if self._health is not None:
                self._health.report(service_id, ok, now)
            if not ok and failed is None:
                failed = service_id
        return failed

    # ------------------------------------------------------------------
    # Effective capacity queries
    # ------------------------------------------------------------------
    def effective_capacity(self, link: Link) -> float:
        """Nominal capacity through the fault overlay (0 on downed ends)."""
        if link.a in self._down_nodes or link.b in self._down_nodes:
            return 0.0
        return link.bandwidth_bps * self._factors.get(
            _canonical(link.a, link.b), 1.0
        )

    def effective_residual(self, a: str, b: str) -> float:
        """Effective capacity minus current reservations, floored at 0."""
        link = self.scenario.topology.get_link(a, b)
        return max(
            0.0, self.effective_capacity(link) - self.ledger.reserved_on(a, b)
        )

    def supply_fraction(self, route: Tuple[str, ...]) -> float:
        """How much of its reserved bandwidth a stream on ``route`` gets.

        Reservations were validated against nominal capacity; when a fault
        squeezes a link below its total reserved load, every stream on it
        degrades proportionally (fair share).  Returns a value in [0, 1];
        0 means the route is dead.
        """
        fraction = 1.0
        for a, b in zip(route, route[1:]):
            link = self.scenario.topology.get_link(a, b)
            capacity = self.effective_capacity(link)
            if capacity <= 0.0:
                return 0.0
            reserved = self.ledger.reserved_on(a, b)
            if reserved > capacity:
                fraction = min(fraction, capacity / reserved)
        return fraction

    # ------------------------------------------------------------------
    # Snapshot planning
    # ------------------------------------------------------------------
    def effective_topology(self) -> NetworkTopology:
        """A fresh topology whose capacities are the effective residuals."""
        snapshot = NetworkTopology()
        for node in self.scenario.topology.nodes():
            snapshot.add_node(node)
        for link in self.scenario.topology.links():
            snapshot.add_link(
                Link(
                    a=link.a,
                    b=link.b,
                    bandwidth_bps=max(
                        0.0,
                        self.effective_capacity(link)
                        - self.ledger.reserved_on(link.a, link.b),
                    ),
                    delay_ms=link.delay_ms,
                    loss_rate=link.loss_rate,
                    cost=link.cost,
                )
            )
        return snapshot

    def _snapshot_planner(self) -> BatchPlanner:
        """The planner for the current (fault, ledger) generation pair.

        Rebuilt lazily whenever either generation moves; the shared
        optimize memo carries solved relaxations across rebuilds, and each
        snapshot gets its *own* plan cache (fingerprints embed generation
        counters of the snapshot objects, which restart per snapshot, so a
        cache must never outlive its snapshot).
        """
        quarantined: frozenset = frozenset()
        health_generation = 0
        if self._health is not None:
            quarantined = self._health.quarantined(self._clock())
            health_generation = self._health.generation
        key = (
            self._generation,
            self.ledger.generation,
            health_generation,
            quarantined,
        )
        if self._planner is not None and self._planner_key == key:
            return self._planner
        topology = self.effective_topology()
        alive = [
            descriptor
            for descriptor in self.scenario.catalog
            if not self.service_is_down(descriptor.service_id)
            and descriptor.service_id not in quarantined
        ]
        catalog = ServiceCatalog(alive)
        mapping = {
            service_id: node_id
            for service_id, node_id in self.scenario.placement.as_dict().items()
            if service_id in catalog
        }
        placement = ServicePlacement(topology, mapping)
        self._planner = BatchPlanner(
            registry=self.scenario.registry,
            parameters=self.scenario.parameters,
            catalog=catalog,
            placement=placement,
            cache=PlanCache(max_entries=self._plan_cache_size),
            max_workers=1,
            record_trace=False,
            optimize_memo=self._memo,
            policy_engine=self._policy_engine,
        )
        self._planner_key = key
        return self._planner

    def plan(self, request: PlanRequest) -> Optional[SessionPlan]:
        """Plan one session against the current effective residual state.

        Returns ``None`` for *any* infeasibility — including construction
        errors on a heavily degraded snapshot and policy ``deny`` rules
        (``PolicyDeniedError`` is a ``ReproError``) — so callers treat
        "cannot plan" uniformly instead of unwinding exceptions
        mid-simulation.
        """
        try:
            plan = self._snapshot_planner().plan(request)
        except ReproError:
            return None
        if not plan.success:
            return None
        return plan

    # ------------------------------------------------------------------
    # Reservations
    # ------------------------------------------------------------------
    def reserve_plan(
        self, plan: SessionPlan, request: PlanRequest, label: str = ""
    ) -> Optional[List[HopLease]]:
        """Reserve every hop of a successful plan; all-or-nothing.

        Each hop routes along the widest path of the *current* effective
        residual topology and must fit entirely; on any failure the hops
        already taken are rolled back and ``None`` is returned.
        """
        config = plan.result.configuration
        assert config is not None  # guaranteed by plan.success
        per_frame = config.with_value(FRAME_RATE, 1.0)
        leases: List[HopLease] = []
        for source, target, fmt_name in zip(
            plan.result.path, plan.result.path[1:], plan.result.formats
        ):
            source_node = self._node_for(source, request)
            target_node = self._node_for(target, request)
            if source_node == target_node:
                route: Optional[List[str]] = [source_node]
            else:
                route = self.effective_topology().widest_path(
                    source_node, target_node
                )
            fmt = self.scenario.registry.get(fmt_name)
            requirement = config.required_bandwidth(fmt)
            if route is None or not self._fits(route, requirement):
                self.release(leases)
                return None
            try:
                reservation = self.ledger.reserve(
                    route, requirement, label=label or f"{source}->{target}"
                )
            except ValidationError:
                self.release(leases)
                return None
            leases.append(
                HopLease(
                    source=source,
                    target=target,
                    format_name=fmt_name,
                    per_frame_bps=per_frame.required_bandwidth(fmt),
                    route=tuple(route),
                    reservation=reservation,
                )
            )
        return leases

    def _fits(self, route: List[str], requirement: float) -> bool:
        """Does the route's *effective* residual carry the requirement?

        The ledger itself only validates against nominal capacity, so this
        extra check keeps fault-squeezed links from being over-committed
        at admission time.
        """
        slack = 1.0 + 1e-9
        return all(
            self.effective_residual(a, b) * slack >= requirement
            for a, b in zip(route, route[1:])
        )

    def release(self, leases: List[HopLease]) -> None:
        """Return every lease's bandwidth to the ledger."""
        for lease in leases:
            self.ledger.release(lease.reservation)

    def _node_for(self, service_id: str, request: PlanRequest) -> str:
        if service_id == _ENDPOINT_IDS[0]:
            return request.sender_node
        if service_id == _ENDPOINT_IDS[1]:
            return request.receiver_node
        return self.scenario.placement.node_of(service_id)
