"""Simulation outcomes: per-session QoE plus fleet-level aggregates.

A :class:`SessionOutcome` is the frozen record one simulated session
leaves behind; a :class:`SimReport` aggregates a whole run — admission and
completion counts, satisfaction and stall percentiles, replan totals, and
the event-trace digest that the determinism gate compares across runs.
Reports export as a stable ``dict`` / JSON document and as markdown, and
every number in them is a pure function of (scenario, seed), so two runs
of the same configuration serialize bit-identically.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["SessionOutcome", "SimReport", "percentile"]

#: Terminal session states.
REJECTED = "rejected"
COMPLETED = "completed"
ABANDONED = "abandoned"
ABORTED = "aborted"
TRUNCATED = "truncated"  # still live when the horizon cut the run short


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation noise)."""
    if not values:
        return 0.0
    if not 0.0 < q <= 100.0:
        raise ValueError("percentile must lie in (0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class SessionOutcome:
    """What one session experienced, start to finish."""

    session_id: int
    device_id: str
    arrival_s: float
    end_s: float
    state: str
    admitted: bool
    #: Satisfaction the initial plan promised (0.0 when rejected).
    planned_satisfaction: float
    #: Time-weighted mean of the observed satisfaction while admitted.
    mean_satisfaction: float
    #: Seconds delivering essentially nothing (below the stall floor).
    stall_s: float
    #: Seconds delivering below the replan floor but above a stall.
    degraded_s: float
    replans: int
    failed_replans: int
    #: Times the streaming chain broke outright (crash / dead route).
    interruptions: int
    abandoned: bool


@dataclass(frozen=True)
class SimReport:
    """Aggregate outcome of one simulation run."""

    scenario: str
    seed: int
    horizon_s: float
    events_processed: int
    trace_events: int
    trace_dropped: int
    trace_digest: str
    outcomes: Tuple[SessionOutcome, ...]
    #: Health-registry summary (breaker states, transitions, trace digest)
    #: when the run monitored service health; ``None`` otherwise.
    health: Optional[Dict] = None

    # ------------------------------------------------------------------
    # Fleet-level views
    # ------------------------------------------------------------------
    @property
    def sessions(self) -> int:
        return len(self.outcomes)

    @property
    def admitted(self) -> int:
        return sum(1 for o in self.outcomes if o.admitted)

    @property
    def rejected(self) -> int:
        return sum(1 for o in self.outcomes if o.state == REJECTED)

    @property
    def completed(self) -> int:
        return sum(1 for o in self.outcomes if o.state == COMPLETED)

    @property
    def abandoned_count(self) -> int:
        return sum(1 for o in self.outcomes if o.abandoned)

    @property
    def aborted(self) -> int:
        return sum(1 for o in self.outcomes if o.state == ABORTED)

    @property
    def admission_rate(self) -> float:
        return self.admitted / self.sessions if self.sessions else 0.0

    @property
    def abandonment_rate(self) -> float:
        return self.abandoned_count / self.admitted if self.admitted else 0.0

    @property
    def total_replans(self) -> int:
        return sum(o.replans for o in self.outcomes)

    @property
    def total_failed_replans(self) -> int:
        return sum(o.failed_replans for o in self.outcomes)

    @property
    def total_stall_s(self) -> float:
        return sum(o.stall_s for o in self.outcomes)

    @property
    def mean_satisfaction(self) -> float:
        admitted = [o.mean_satisfaction for o in self.outcomes if o.admitted]
        return sum(admitted) / len(admitted) if admitted else 0.0

    def satisfaction_percentiles(self) -> Dict[str, float]:
        values = [o.mean_satisfaction for o in self.outcomes if o.admitted]
        return {
            "p50": percentile(values, 50.0),
            "p10": percentile(values, 10.0),
            "p1": percentile(values, 1.0),
        }

    def stall_percentiles(self) -> Dict[str, float]:
        values = [o.stall_s for o in self.outcomes if o.admitted]
        return {
            "p50": percentile(values, 50.0),
            "p90": percentile(values, 90.0),
            "p99": percentile(values, 99.0),
        }

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def fleet_metrics(self) -> Dict:
        """The fleet-level counters as one flat metrics payload."""
        return {
            "sessions": self.sessions,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "aborted": self.aborted,
            "abandoned": self.abandoned_count,
            "admission_rate": self.admission_rate,
            "abandonment_rate": self.abandonment_rate,
            "mean_satisfaction": self.mean_satisfaction,
            "satisfaction_percentiles": self.satisfaction_percentiles(),
            "stall_percentiles": self.stall_percentiles(),
            "total_stall_s": self.total_stall_s,
            "replans": self.total_replans,
            "failed_replans": self.total_failed_replans,
        }

    def to_metrics_dict(self) -> Dict:
        """The fleet counters in the repo-wide metrics envelope."""
        from repro.runtime.metrics import metrics_document

        payload = dict(self.fleet_metrics())
        payload.update(
            scenario=self.scenario,
            seed=self.seed,
            horizon_s=self.horizon_s,
            events_processed=self.events_processed,
            trace_digest=self.trace_digest,
        )
        return metrics_document("sim", payload)

    def to_dict(self, include_sessions: bool = True) -> Dict:
        """A JSON-ready dict; key order is fixed for stable serialization."""
        from repro.runtime.metrics import METRICS_SCHEMA_VERSION

        payload: Dict = {
            "schema": METRICS_SCHEMA_VERSION,
            "scenario": self.scenario,
            "seed": self.seed,
            "horizon_s": self.horizon_s,
            "events_processed": self.events_processed,
            "trace_events": self.trace_events,
            "trace_dropped": self.trace_dropped,
            "trace_digest": self.trace_digest,
            "fleet": self.fleet_metrics(),
        }
        if self.health is not None:
            payload["health"] = self.health
        if include_sessions:
            payload["sessions"] = [asdict(o) for o in self.outcomes]
        return payload

    def to_json(self, include_sessions: bool = True) -> str:
        return json.dumps(self.to_dict(include_sessions), indent=2)

    def to_markdown(self) -> str:
        """A fleet-level summary table plus the determinism digest."""
        sat = self.satisfaction_percentiles()
        stall = self.stall_percentiles()
        lines = [
            f"# Simulation report — {self.scenario} (seed {self.seed})",
            "",
            f"Virtual horizon {self.horizon_s:.1f}s, "
            f"{self.events_processed} events processed.",
            "",
            "| metric | value |",
            "| --- | --- |",
            f"| sessions | {self.sessions} |",
            f"| admitted | {self.admitted} "
            f"({self.admission_rate * 100:.1f}%) |",
            f"| completed | {self.completed} |",
            f"| aborted | {self.aborted} |",
            f"| abandoned | {self.abandoned_count} "
            f"({self.abandonment_rate * 100:.1f}% of admitted) |",
            f"| mean satisfaction | {self.mean_satisfaction:.4f} |",
            f"| satisfaction p50/p10/p1 | {sat['p50']:.4f} / "
            f"{sat['p10']:.4f} / {sat['p1']:.4f} |",
            f"| stall seconds p50/p90/p99 | {stall['p50']:.1f} / "
            f"{stall['p90']:.1f} / {stall['p99']:.1f} |",
            f"| total stall time | {self.total_stall_s:.1f}s |",
            f"| replans (failed) | {self.total_replans} "
            f"({self.total_failed_replans}) |",
            "",
            f"Event-trace digest: `{self.trace_digest}`"
            + (
                f" ({self.trace_events} events, {self.trace_dropped} "
                "dropped from the ring buffer)"
            ),
        ]
        return "\n".join(lines)

    def summary(self) -> str:
        """A compact plain-text report for the CLI."""
        sat = self.satisfaction_percentiles()
        lines = [
            f"scenario:          {self.scenario} (seed {self.seed})",
            f"virtual horizon:   {self.horizon_s:.1f}s "
            f"({self.events_processed} events)",
            f"sessions:          {self.sessions} "
            f"({self.admitted} admitted, {self.rejected} rejected)",
            f"outcomes:          {self.completed} completed, "
            f"{self.aborted} aborted, {self.abandoned_count} abandoned",
            f"mean satisfaction: {self.mean_satisfaction:.4f} "
            f"(p50 {sat['p50']:.4f}, p10 {sat['p10']:.4f}, p1 {sat['p1']:.4f})",
            f"stall time:        {self.total_stall_s:.1f}s total",
            f"replans:           {self.total_replans} "
            f"({self.total_failed_replans} failed)",
            f"trace digest:      {self.trace_digest}",
        ]
        if self.health is not None:
            lines.insert(
                len(lines) - 1,
                f"breakers:          {self.health.get('tracked', 0)} tracked, "
                f"{len(self.health.get('open', []))} open, "
                f"{len(self.health.get('transitions', []))} transitions",
            )
        return "\n".join(lines)


def outcomes_sorted(outcomes: List[SessionOutcome]) -> Tuple[SessionOutcome, ...]:
    """Canonical outcome order (by session id) for report construction."""
    return tuple(sorted(outcomes, key=lambda o: o.session_id))
