"""The deterministic discrete-event core: virtual clock + event heap.

Everything in :mod:`repro.sim` runs on this engine.  There is no wall
clock anywhere: time is a float of *virtual seconds* that only advances
when the next event is popped off a binary heap.  Determinism is the
design invariant —

- heap entries are ordered by ``(time, priority, sequence)``, where the
  sequence number is a monotone counter, so two events at the same instant
  always fire in scheduling order;
- callbacks receive no randomness from the engine; stochastic processes
  (arrivals, faults) bring their own explicitly seeded
  :class:`random.Random`;
- the engine keeps a running SHA-256 over every trace line it records, so
  two runs can be compared by digest even when the backing
  :class:`~repro.runtime.events.EventLog` is a bounded ring buffer that
  has long since dropped the early events.

The engine is deliberately tiny: scheduling, the run loop, and tracing.
Domain behaviour (sessions, faults, admission) lives in the neighbouring
modules and is injected as plain callables.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import ValidationError
from repro.runtime.events import Event, EventLog

__all__ = ["Simulator"]

#: One heap entry: (time, priority, sequence, kind, action).
_Entry = Tuple[float, int, int, str, Callable[[], None]]


class Simulator:
    """A seedless, wall-clock-free discrete-event executor."""

    def __init__(self, trace_capacity: Optional[int] = None) -> None:
        self._now = 0.0
        self._heap: List[_Entry] = []
        self._sequence = itertools.count()
        self._events_processed = 0
        #: Structured narrative of the run; bounded when ``trace_capacity``
        #: is given (the digest still covers every event ever recorded).
        self.trace = EventLog(capacity=trace_capacity)
        self._digest = hashlib.sha256()
        self._trace_records = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        """Events still waiting on the heap."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self,
        time_s: float,
        action: Callable[[], None],
        kind: str = "event",
        priority: int = 0,
    ) -> None:
        """Enqueue ``action`` to fire at absolute virtual time ``time_s``.

        Lower ``priority`` fires first among events at the same instant;
        ties beyond that resolve in scheduling order.  Scheduling into the
        past is a programming error and raises.
        """
        if time_s < self._now - 1e-12:
            raise ValidationError(
                f"cannot schedule {kind!r} at {time_s}; clock is at {self._now}"
            )
        heapq.heappush(
            self._heap,
            (time_s, priority, next(self._sequence), kind, action),
        )

    def schedule(
        self,
        delay_s: float,
        action: Callable[[], None],
        kind: str = "event",
        priority: int = 0,
    ) -> None:
        """Enqueue ``action`` to fire ``delay_s`` virtual seconds from now."""
        if delay_s < 0:
            raise ValidationError("delay must be >= 0")
        self.schedule_at(self._now + delay_s, action, kind=kind, priority=priority)

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def record(self, category: str, message: str) -> Event:
        """Record a trace event at the current virtual time.

        The rendered line is folded into the running digest before the
        ring buffer gets a chance to drop it.
        """
        event = self.trace.record(self._now, category, message)
        self._digest.update(str(event).encode("utf-8"))
        self._digest.update(b"\n")
        self._trace_records += 1
        return event

    def trace_digest(self) -> str:
        """SHA-256 over every trace line recorded so far (hex)."""
        return self._digest.copy().hexdigest()

    @property
    def trace_records(self) -> int:
        """Total trace events recorded (including ring-buffer drops)."""
        return self._trace_records

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------
    def run(
        self,
        until_s: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Pop and execute events until the heap drains.

        ``until_s`` stops the clock after the last event at or before that
        time (later events stay queued); ``max_events`` bounds the number
        of events executed by this call.  Returns how many events this
        call processed.
        """
        processed = 0
        while self._heap:
            if max_events is not None and processed >= max_events:
                break
            if until_s is not None and self._heap[0][0] > until_s + 1e-9:
                break
            time_s, _priority, _seq, _kind, action = heapq.heappop(self._heap)
            # Heap order guarantees monotone time.
            self._now = time_s
            action()
            self._events_processed += 1
            processed += 1
        return processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.3f}s, pending={len(self._heap)}, "
            f"processed={self._events_processed})"
        )
