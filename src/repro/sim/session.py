"""One simulated adaptive session: admit, stream, replan, finish.

A :class:`SimSession` is the event-driven counterpart of
:class:`~repro.runtime.replanning.AdaptiveSession`: instead of stepping a
private loop over its own copy of the network, it lives on the shared
:class:`~repro.sim.world.SimWorld` with hundreds of concurrent peers and
advances only when the simulator fires one of its events:

- **arrival** — plan against the effective residual infrastructure and
  reserve the chain's bandwidth, or be rejected;
- **segment ticks** — every ``segment_s`` virtual seconds, observe the
  satisfaction the current chain actually delivers under the fault
  overlay, accumulate QoE, and trigger a replan when delivery falls below
  the replan floor (or the chain breaks outright — a crashed service or a
  dead route);
- **finish** — at the session's end, release reservations and emit a
  :class:`~repro.sim.report.SessionOutcome`.

Failure is data, never an exception: a session that cannot replan stalls,
retries on later ticks, and — after ``abandon_after_stalls`` consecutive
stalled segments — abandons, exactly the degradation taxonomy the report
aggregates.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.configuration import Configuration
from repro.core.parameters import FRAME_RATE
from repro.planner.batch import PlanRequest
from repro.runtime.session import SessionPlan
from repro.sim.engine import Simulator
from repro.sim.report import (
    ABANDONED,
    ABORTED,
    COMPLETED,
    REJECTED,
    TRUNCATED,
    SessionOutcome,
)
from repro.sim.world import HopLease, SimWorld

__all__ = ["SimSession"]

_ENDPOINTS = ("sender", "receiver")


class SimSession:
    """State machine for one session over the shared world."""

    def __init__(
        self,
        session_id: int,
        request: PlanRequest,
        arrival_s: float,
        duration_s: float,
        sim: Simulator,
        world: SimWorld,
        on_done: Callable[[SessionOutcome], None],
        segment_s: float = 2.0,
        replan_threshold: float = 0.8,
        stall_satisfaction: float = 0.01,
        abandon_after_stalls: int = 0,
        admission_floor: float = 0.0,
    ) -> None:
        self.session_id = session_id
        self._request = request
        self._arrival_s = arrival_s
        self._end_s = arrival_s + duration_s
        self._sim = sim
        self._world = world
        self._on_done = on_done
        self._segment_s = segment_s
        self._replan_threshold = replan_threshold
        self._stall_floor = stall_satisfaction
        self._abandon_after = abandon_after_stalls
        self._admission_floor = admission_floor
        self._satisfaction = request.user.satisfaction()

        # Streaming state
        self._plan: Optional[SessionPlan] = None
        self._leases: List[HopLease] = []
        self._services: Tuple[str, ...] = ()
        self._config: Optional[Configuration] = None
        self._planned_fps = 0.0
        self._current_planned_sat = 0.0

        # QoE accounting
        self._admitted = False
        self._initial_satisfaction = 0.0
        self._last_check = arrival_s
        self._weighted_satisfaction = 0.0
        self._observed_s = 0.0
        self._stall_s = 0.0
        self._degraded_s = 0.0
        self._replans = 0
        self._failed_replans = 0
        self._interruptions = 0
        self._consecutive_stalls = 0
        self._final_state: Optional[str] = None

    # ------------------------------------------------------------------
    # Lifecycle events (wired onto the simulator by the runner)
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._final_state is not None

    @property
    def started(self) -> bool:
        return self._admitted or self._final_state is not None

    def on_arrival(self) -> None:
        plan = self._world.plan(self._request)
        if plan is None or plan.result.satisfaction < self._admission_floor:
            reason = "no feasible chain" if plan is None else "below floor"
            self._sim.record(
                "reject", f"session {self.session_id}: {reason}"
            )
            self._finalize(REJECTED)
            return
        leases = self._world.reserve_plan(
            plan, self._request, label=f"session-{self.session_id}"
        )
        if leases is None:
            self._sim.record(
                "reject",
                f"session {self.session_id}: chain unreservable",
            )
            self._finalize(REJECTED)
            return
        self._admitted = True
        self._initial_satisfaction = plan.result.satisfaction
        self._adopt(plan, leases)
        self._sim.record(
            "admit",
            f"session {self.session_id}: {','.join(plan.result.path)} "
            f"(S={plan.result.satisfaction:.3f})",
        )
        self._last_check = self._sim.now
        self._schedule_tick()

    def on_tick(self) -> None:
        if self.done:
            return
        now = self._sim.now
        interval = now - self._last_check
        self._last_check = now

        if self._leases:
            fraction = self._delivery_fraction()
            # Gray-failure roll is gated on monitoring so runs without a
            # gray overlay or health registry keep bit-identical traces.
            gray_failed = (
                self._world.attempt_chain(self._services)
                if self._world.monitoring
                else None
            )
            observed = (
                0.0 if gray_failed is not None else self._observe(fraction)
            )
            self._integrate(observed, interval)
            floor = self._replan_threshold * self._current_planned_sat
            if fraction <= 0.0:
                self._interruptions += 1
                self._sim.record(
                    "interrupt",
                    f"session {self.session_id}: chain broken "
                    f"({','.join(self._services) or 'direct'})",
                )
                self._world.release(self._leases)
                self._leases = []
                self._try_acquire()
            elif gray_failed is not None:
                self._sim.record(
                    "gray-loss",
                    f"session {self.session_id}: {gray_failed} "
                    "dropped the segment",
                )
                self._try_switch(0.0)
            elif observed + 1e-12 < floor:
                self._sim.record(
                    "degraded",
                    f"session {self.session_id}: S={observed:.3f} "
                    f"< floor {floor:.3f}",
                )
                self._try_switch(observed)
        else:
            # Stalled with no chain: dead air, retry admission.
            self._integrate(0.0, interval)
            self._try_acquire()

        if (
            self._abandon_after > 0
            and self._consecutive_stalls >= self._abandon_after
        ):
            if self._leases:
                self._world.release(self._leases)
                self._leases = []
            self._sim.record(
                "abandon",
                f"session {self.session_id}: "
                f"{self._consecutive_stalls} stalled segments",
            )
            self._finalize(ABANDONED)
            return

        if now >= self._end_s - 1e-9:
            self._finish()
        else:
            self._schedule_tick()

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def _delivery_fraction(self) -> float:
        """Fraction of the planned rate the chain gets right now (0 = dead)."""
        if any(self._world.service_is_down(sid) for sid in self._services):
            return 0.0
        fraction = 1.0
        for lease in self._leases:
            fraction = min(fraction, self._world.supply_fraction(lease.route))
            if fraction <= 0.0:
                return 0.0
        return fraction

    def _observe(self, fraction: float) -> float:
        """Satisfaction of the planned configuration at ``fraction`` rate."""
        if fraction <= 0.0 or self._config is None:
            return 0.0
        if fraction >= 1.0 or self._planned_fps <= 0.0:
            config = self._config
        else:
            config = self._config.with_value(
                FRAME_RATE, self._planned_fps * fraction
            )
        return self._satisfaction_of(config)

    def _satisfaction_of(self, config: Configuration) -> float:
        values = [
            self._satisfaction.individual(name, config[name])
            for name in self._satisfaction.parameter_names()
            if name in config
        ]
        return self._satisfaction.combiner(values) if values else 0.0

    def _integrate(self, observed: float, interval: float) -> None:
        if interval <= 0:
            return
        self._weighted_satisfaction += observed * interval
        self._observed_s += interval
        if observed <= self._stall_floor:
            self._stall_s += interval
            self._consecutive_stalls += 1
        else:
            self._consecutive_stalls = 0
            if observed + 1e-12 < self._replan_threshold * self._current_planned_sat:
                self._degraded_s += interval

    # ------------------------------------------------------------------
    # Replanning
    # ------------------------------------------------------------------
    def _adopt(self, plan: SessionPlan, leases: List[HopLease]) -> None:
        self._plan = plan
        self._leases = leases
        self._services = tuple(
            sid for sid in plan.result.path if sid not in _ENDPOINTS
        )
        self._config = plan.result.configuration
        self._planned_fps = (
            self._config.get_value(FRAME_RATE, 0.0) or 0.0
            if self._config is not None
            else 0.0
        )
        self._current_planned_sat = plan.result.satisfaction

    def _try_acquire(self) -> None:
        """Plan and reserve from nothing (post-interrupt or stalled)."""
        plan = self._world.plan(self._request)
        leases = (
            self._world.reserve_plan(
                plan, self._request, label=f"session-{self.session_id}"
            )
            if plan is not None
            else None
        )
        if plan is not None and leases is not None:
            self._adopt(plan, leases)
            self._replans += 1
            self._sim.record(
                "replan",
                f"session {self.session_id}: rejoined via "
                f"{','.join(plan.result.path)} "
                f"(S={plan.result.satisfaction:.3f})",
            )
        else:
            self._failed_replans += 1
            self._sim.record(
                "replan-failed",
                f"session {self.session_id}: no feasible chain",
            )

    def _try_switch(self, observed: float) -> None:
        """Replan while still holding the current (degraded) chain.

        The candidate is planned *before* releasing the old chain — the
        session's own reservations count against the candidate, which is
        pessimistic but never leaves the session chainless when no better
        chain exists.
        """
        candidate = self._world.plan(self._request)
        if candidate is None or candidate.result.satisfaction <= observed + 1e-9:
            self._failed_replans += 1
            self._sim.record(
                "replan-failed",
                f"session {self.session_id}: no better chain",
            )
            return
        old_leases = self._leases
        self._world.release(old_leases)
        self._leases = []
        new_leases = self._world.reserve_plan(
            candidate, self._request, label=f"session-{self.session_id}"
        )
        if new_leases is None:
            # Take the old chain back (guaranteed: its bandwidth was just
            # freed and the ledger validates against nominal capacity).
            self._leases = [
                HopLease(
                    source=lease.source,
                    target=lease.target,
                    format_name=lease.format_name,
                    per_frame_bps=lease.per_frame_bps,
                    route=lease.route,
                    reservation=self._world.ledger.reserve(
                        list(lease.route),
                        lease.reservation.bandwidth_bps,
                        label=lease.reservation.label,
                    ),
                )
                for lease in old_leases
            ]
            self._failed_replans += 1
            self._sim.record(
                "replan-failed",
                f"session {self.session_id}: candidate unreservable, "
                "kept old chain",
            )
            return
        switched = candidate.result.path != (
            self._plan.result.path if self._plan is not None else ()
        )
        self._adopt(candidate, new_leases)
        self._replans += 1
        self._sim.record(
            "replan",
            f"session {self.session_id}: "
            f"{'switched to' if switched else 'kept'} "
            f"{','.join(candidate.result.path)} "
            f"(S={candidate.result.satisfaction:.3f})",
        )

    # ------------------------------------------------------------------
    # Termination
    # ------------------------------------------------------------------
    def _finish(self) -> None:
        if self._leases:
            self._world.release(self._leases)
            self._leases = []
            self._sim.record(
                "complete", f"session {self.session_id}: finished"
            )
            self._finalize(COMPLETED)
        else:
            self._sim.record(
                "abort",
                f"session {self.session_id}: ended without a chain",
            )
            self._finalize(ABORTED)

    def truncate(self) -> None:
        """Force-finalize a still-live session at the horizon."""
        if self.done:
            return
        if self._leases:
            self._world.release(self._leases)
            self._leases = []
        self._finalize(TRUNCATED)

    def _finalize(self, state: str) -> None:
        self._final_state = state
        mean = (
            self._weighted_satisfaction / self._observed_s
            if self._observed_s > 0
            else 0.0
        )
        self._on_done(
            SessionOutcome(
                session_id=self.session_id,
                device_id=self._request.device.device_id,
                arrival_s=self._arrival_s,
                end_s=self._sim.now,
                state=state,
                admitted=self._admitted,
                planned_satisfaction=self._initial_satisfaction,
                mean_satisfaction=mean,
                stall_s=self._stall_s,
                degraded_s=self._degraded_s,
                replans=self._replans,
                failed_replans=self._failed_replans,
                interruptions=self._interruptions,
                abandoned=state == ABANDONED,
            )
        )

    def _schedule_tick(self) -> None:
        next_tick = min(self._end_s, self._sim.now + self._segment_s)
        self._sim.schedule_at(next_tick, self.on_tick, kind="segment")
