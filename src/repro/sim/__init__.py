"""repro.sim — deterministic discrete-event testbed with fault injection.

The simulator runs hundreds to thousands of concurrent adaptation
sessions over one shared topology and bandwidth ledger, entirely in
virtual time (no wall clock anywhere), driving admission, segment
delivery, and replanning through the existing planner stack.  Same
scenario + same seed = bit-identical event trace and report; see
``docs/ALGORITHM.md`` §8 for the event model and fault taxonomy.
"""

from repro.sim.arrivals import ArrivalProcess, PoissonArrivals, UniformArrivals
from repro.sim.engine import Simulator
from repro.sim.faults import (
    FaultInjector,
    FlashCrowd,
    GrayFailure,
    LinkDegradation,
    RegionalOutage,
    ServiceCrash,
)
from repro.sim.report import SessionOutcome, SimReport, percentile
from repro.sim.runner import SimulationConfig, SimulationRun, run_simulation
from repro.sim.scenarios import SCENARIOS, build_scenario, scenario_names
from repro.sim.session import SimSession
from repro.sim.world import HopLease, SimWorld

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "UniformArrivals",
    "Simulator",
    "FaultInjector",
    "FlashCrowd",
    "GrayFailure",
    "LinkDegradation",
    "RegionalOutage",
    "ServiceCrash",
    "SessionOutcome",
    "SimReport",
    "percentile",
    "SimulationConfig",
    "SimulationRun",
    "run_simulation",
    "SCENARIOS",
    "build_scenario",
    "scenario_names",
    "SimSession",
    "HopLease",
    "SimWorld",
]
