"""Named simulation scenarios: reproducible stress campaigns.

Each preset pairs a synthetic base scenario with an arrival process and a
fault schedule whose targets are derived *from the generated scenario
itself* (the backbone services, the widest sender-to-receiver route), so
any seed yields a coherent campaign:

- ``steady`` — uniform arrivals, no faults; the admission-control and
  capacity baseline;
- ``flash-crowd`` — Poisson background load plus a burst of extra
  arrivals compressed into a few seconds mid-run;
- ``failover-storm`` — the backbone adaptation services crash in a
  staggered wave while the main route degrades, forcing mass replanning;
- ``link-churn`` — the links of the primary route ramp down and recover
  on overlapping windows, so capacity keeps shifting under live sessions;
- ``gray-failure`` — one backbone service silently drops 80% of its
  attempts while reading as healthy; a per-service failure detector and
  circuit breaker (see ``docs/RESILIENCE.md``) must notice from outcomes
  alone, quarantine it, and recover it once HALF_OPEN probes succeed;
- ``live-event`` — one stream, maximal device heterogeneity (32 receiver
  classes) and a flash crowd dumping most of the audience into a few
  seconds: the group-planning workload (``docs/ALGORITHM.md`` §9) where
  shared adaptation trees pay off most;
- ``policy-mix`` — a mostly-compatible audience: 70% of the device
  classes decode the source format natively and a policy ``skip`` rule
  answers them without the selector (``docs/ALGORITHM.md`` §10), one
  class is forced onto the hardware service tier, and the rest take the
  full selector path.

``build_scenario(name, ...)`` is the CLI entry point; ``SCENARIOS`` maps
names to builders.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ValidationError
from repro.policy.document import PolicyDocument, PolicyRule
from repro.policy.predicates import DeviceIn, FormatIn
from repro.profiles.device import DeviceProfile
from repro.sim.arrivals import PoissonArrivals, UniformArrivals
from repro.serve.health import HealthConfig
from repro.sim.faults import (
    FaultInjector,
    FlashCrowd,
    GrayFailure,
    LinkDegradation,
    RegionalOutage,
    ServiceCrash,
)
from repro.sim.runner import SimulationConfig
from repro.workloads.scenario import Scenario
from repro.workloads.synthetic import SyntheticConfig, generate_scenario

__all__ = ["SCENARIOS", "build_scenario", "scenario_names"]

#: Builders take (seed, sessions, enable_faults) and return a config.
ScenarioBuilder = Callable[[int, int, bool], SimulationConfig]


def _base(seed: int) -> Scenario:
    """The shared synthetic world every preset runs on."""
    return generate_scenario(
        SyntheticConfig(
            seed=seed,
            n_services=24,
            n_formats=10,
            n_nodes=12,
            extra_links=10,
            backbone_hops=3,
        )
    )


def _primary_route(scenario: Scenario) -> List[str]:
    route = scenario.topology.widest_path(
        scenario.sender_node, scenario.receiver_node
    )
    if route is None or len(route) < 2:  # pragma: no cover - generator
        raise ValidationError("scenario topology is disconnected")
    return route


def _backbone_services(scenario: Scenario) -> List[str]:
    return sorted(
        descriptor.service_id
        for descriptor in scenario.catalog
        if descriptor.service_id.startswith("S")
    )


def _steady(seed: int, sessions: int, faults: bool) -> SimulationConfig:
    scenario = _base(seed)
    return SimulationConfig(
        scenario=scenario,
        name="steady",
        seed=seed,
        sessions=sessions,
        arrivals=UniformArrivals(over_s=60.0),
        session_duration_s=30.0,
        faults=(),
    )


def _flash_crowd(seed: int, sessions: int, faults: bool) -> SimulationConfig:
    scenario = _base(seed)
    burst = max(1, sessions // 2)
    schedule: Tuple[FaultInjector, ...] = (
        (FlashCrowd(start_s=30.0, sessions=burst, over_s=5.0),)
        if faults
        else ()
    )
    return SimulationConfig(
        scenario=scenario,
        name="flash-crowd",
        seed=seed,
        sessions=sessions,
        arrivals=PoissonArrivals(rate_per_s=max(0.5, sessions / 60.0)),
        session_duration_s=25.0,
        faults=schedule,
    )


def _failover_storm(seed: int, sessions: int, faults: bool) -> SimulationConfig:
    scenario = _base(seed)
    schedule: List[FaultInjector] = []
    if faults:
        # The backbone services crash in a staggered wave...
        for index, service_id in enumerate(_backbone_services(scenario)):
            schedule.append(
                ServiceCrash(
                    service_id=service_id,
                    start_s=20.0 + 6.0 * index,
                    downtime_s=12.0,
                )
            )
        # ...while the primary route's first link collapses, and a
        # mid-route node blacks out entirely (the correlated case).
        route = _primary_route(scenario)
        schedule.append(
            LinkDegradation(
                route[0],
                route[1],
                start_s=24.0,
                duration_s=16.0,
                factor=0.1,
                ramp_steps=4,
                ramp_s=4.0,
            )
        )
        if len(route) > 2:
            schedule.append(
                RegionalOutage(
                    nodes=(route[len(route) // 2],),
                    start_s=32.0,
                    duration_s=10.0,
                )
            )
    return SimulationConfig(
        scenario=scenario,
        name="failover-storm",
        seed=seed,
        sessions=sessions,
        arrivals=UniformArrivals(over_s=50.0),
        session_duration_s=35.0,
        faults=tuple(schedule),
    )


def _link_churn(seed: int, sessions: int, faults: bool) -> SimulationConfig:
    scenario = _base(seed)
    schedule: List[FaultInjector] = []
    if faults:
        route = _primary_route(scenario)
        hops = list(zip(route, route[1:]))
        for index, (a, b) in enumerate(hops):
            schedule.append(
                LinkDegradation(
                    a,
                    b,
                    start_s=15.0 + 8.0 * index,
                    duration_s=14.0,
                    factor=0.25,
                    ramp_steps=3,
                    ramp_s=3.0,
                )
            )
    return SimulationConfig(
        scenario=scenario,
        name="link-churn",
        seed=seed,
        sessions=sessions,
        arrivals=UniformArrivals(over_s=55.0),
        session_duration_s=30.0,
        faults=tuple(schedule),
    )


def _gray_target(scenario: Scenario) -> str:
    """The service a gray failure hits: the baseline chain's first hop.

    Picking a service on the scenario's own best path guarantees the
    fault sits in the blast radius of real sessions; a scenario whose
    best chain is a direct passthrough falls back to the first backbone
    service.
    """
    result = scenario.select(record_trace=False)
    intermediaries = [
        sid for sid in result.path if sid not in ("sender", "receiver")
    ]
    if intermediaries:
        return intermediaries[0]
    backbone = _backbone_services(scenario)
    if not backbone:  # pragma: no cover - generator always places some
        raise ValidationError("scenario has no services to gray-fail")
    return backbone[0]


def _gray_failure(seed: int, sessions: int, faults: bool) -> SimulationConfig:
    scenario = _base(seed)
    schedule: Tuple[FaultInjector, ...] = (
        (
            GrayFailure(
                service_id=_gray_target(scenario),
                start_s=12.0,
                duration_s=24.0,
                failure_rate=0.8,
            ),
        )
        if faults
        else ()
    )
    return SimulationConfig(
        scenario=scenario,
        name="gray-failure",
        seed=seed,
        sessions=sessions,
        arrivals=UniformArrivals(over_s=55.0),
        session_duration_s=30.0,
        faults=schedule,
        # Detector tuned for segment-granularity outcomes: a handful of
        # bad segments opens the breaker, and the 6s cooldown lets
        # HALF_OPEN probes retry within the fault window's tail.
        health=HealthConfig(seed=seed, cooldown_s=6.0, min_samples=4),
    )


def _live_event(seed: int, sessions: int, faults: bool) -> SimulationConfig:
    scenario = _base(seed)
    # Most of the audience lands inside a few seconds of "kickoff";
    # the organic Poisson trickle is just the early arrivals.
    burst = max(1, (sessions * 3) // 4)
    schedule: Tuple[FaultInjector, ...] = (
        (FlashCrowd(start_s=20.0, sessions=burst, over_s=4.0),)
        if faults
        else ()
    )
    return SimulationConfig(
        scenario=scenario,
        name="live-event",
        seed=seed,
        sessions=sessions,
        arrivals=PoissonArrivals(rate_per_s=max(0.5, sessions / 80.0)),
        session_duration_s=40.0,
        faults=schedule,
        # Every handset model tunes into the same stream: the widest
        # class spread any preset uses, so grouped planning has real
        # prefixes to share.
        device_classes=32,
    )


def _policy_mix(seed: int, sessions: int, faults: bool) -> SimulationConfig:
    """The skewed "mostly-compatible" audience the policy fast path serves.

    The base device is rebuilt to decode the source format natively, so
    its zero-hop answer is genuinely sound; the skip rule then names 7 of
    the 10 device classes (the runner derives class ``i`` as
    ``<device_id>-v<i>``), one class is forced onto the hardware tier,
    and the remaining two take the ordinary selector path.
    """
    scenario = _base_with_hw_tiers(seed)
    source_format = scenario.content.format_names()[0]
    decoders = [source_format] + [
        name for name in scenario.device.decoders if name != source_format
    ]
    device = DeviceProfile(
        device_id=scenario.device.device_id,
        decoders=decoders,
        max_resolution=scenario.device.max_resolution,
        max_color_depth=scenario.device.max_color_depth,
        max_frame_rate=scenario.device.max_frame_rate,
        max_audio_kbps=scenario.device.max_audio_kbps,
        cpu_mips=scenario.device.cpu_mips,
        memory_mb=scenario.device.memory_mb,
        vendor=scenario.device.vendor,
        model=scenario.device.model,
        attributes=scenario.device.attributes,
    )
    scenario.device = device
    classes = 10
    compatible = tuple(
        f"{device.device_id}-v{i}" for i in range(int(classes * 0.7))
    )
    scenario.policy = PolicyDocument(
        name=f"policy-mix-{seed}",
        description="skip the compatible majority, pin one class to hw",
        rules=(
            PolicyRule(
                rule_id="skip-compatible",
                action="skip",
                predicates=(
                    DeviceIn(compatible),
                    FormatIn((source_format,)),
                ),
                tolerance=0.05,
            ),
            PolicyRule(
                rule_id="hw-class",
                action="force_tier",
                predicates=(DeviceIn((f"{device.device_id}-v7",)),),
                tier="hw",
            ),
        ),
    )
    return SimulationConfig(
        scenario=scenario,
        name="policy-mix",
        seed=seed,
        sessions=sessions,
        arrivals=UniformArrivals(over_s=60.0),
        session_duration_s=30.0,
        faults=(),
        device_classes=classes,
    )


def _base_with_hw_tiers(seed: int) -> Scenario:
    """The shared world plus hardware-tier siblings for half the catalog."""
    return generate_scenario(
        SyntheticConfig(
            seed=seed,
            n_services=24,
            n_formats=10,
            n_nodes=12,
            extra_links=10,
            backbone_hops=3,
            hw_tier_fraction=0.5,
        )
    )


SCENARIOS: Dict[str, ScenarioBuilder] = {
    "steady": _steady,
    "flash-crowd": _flash_crowd,
    "failover-storm": _failover_storm,
    "link-churn": _link_churn,
    "gray-failure": _gray_failure,
    "live-event": _live_event,
    "policy-mix": _policy_mix,
}


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)


def build_scenario(
    name: str,
    seed: int = 0,
    sessions: int = 200,
    faults: bool = True,
    horizon_s: Optional[float] = None,
    trace_capacity: Optional[int] = None,
) -> SimulationConfig:
    """Build one named campaign, optionally overriding run bounds."""
    if name not in SCENARIOS:
        raise ValidationError(
            f"unknown scenario {name!r}; choose from {', '.join(scenario_names())}"
        )
    if sessions < 1:
        raise ValidationError("session count must be >= 1")
    config = SCENARIOS[name](seed, sessions, faults)
    if horizon_s is not None:
        config.horizon_s = horizon_s
    if trace_capacity is not None:
        config.trace_capacity = trace_capacity
    return config
