"""Orchestration: configure, populate, and execute one simulation run.

:func:`run_simulation` is the subsystem's front door: give it a
:class:`SimulationConfig` (a base scenario, an arrival process, a fault
schedule, and a seed) and it returns a
:class:`~repro.sim.report.SimReport`.  The run is deterministic end to
end: arrivals and session durations come from ``random.Random`` instances
seeded from the config seed plus a purpose tag, faults are installed
before the clock starts, and the event loop itself is single-threaded
virtual time.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ValidationError
from repro.planner.batch import PlanRequest
from repro.planner.workload import device_variants
from repro.sim.arrivals import ArrivalProcess, UniformArrivals
from repro.sim.engine import Simulator
from repro.sim.faults import FaultInjector
from repro.sim.report import SessionOutcome, SimReport, outcomes_sorted
from repro.sim.session import SimSession
from repro.sim.world import SimWorld
from repro.serve.health import HealthConfig, HealthRegistry
from repro.workloads.scenario import Scenario

__all__ = ["SimulationConfig", "SimulationRun", "run_simulation"]


@dataclass
class SimulationConfig:
    """Everything one simulation run depends on."""

    scenario: Scenario
    name: str = "sim"
    seed: int = 0
    #: Organic arrivals (flash crowds add more on top).
    sessions: int = 100
    #: Distinct device classes the arrivals cycle through.
    device_classes: int = 8
    arrivals: ArrivalProcess = field(
        default_factory=lambda: UniformArrivals(over_s=60.0)
    )
    #: Mean session length; per-session lengths jitter around it.
    session_duration_s: float = 30.0
    #: Fractional half-width of the duration jitter (0 = fixed length).
    duration_jitter: float = 0.25
    segment_s: float = 2.0
    replan_threshold: float = 0.8
    stall_satisfaction: float = 0.01
    #: Consecutive stalled segments before a viewer walks away (0 = never).
    abandon_after_stalls: int = 3
    admission_floor: float = 0.0
    faults: Tuple[FaultInjector, ...] = ()
    #: Attach a per-service failure detector + circuit breaker registry;
    #: quarantined (OPEN) services drop out of the snapshot planner's
    #: catalog until HALF_OPEN probes recover them.
    health: Optional[HealthConfig] = None
    #: Hard virtual-time stop; ``None`` runs until the event heap drains.
    horizon_s: Optional[float] = None
    #: Ring-buffer bound for the trace (None = unbounded).
    trace_capacity: Optional[int] = None
    max_events: Optional[int] = None

    def __post_init__(self) -> None:
        if self.sessions < 0:
            raise ValidationError("session count must be >= 0")
        if self.device_classes < 1:
            raise ValidationError("need at least one device class")
        if self.session_duration_s <= 0:
            raise ValidationError("session duration must be positive")
        if not 0.0 <= self.duration_jitter < 1.0:
            raise ValidationError("duration jitter must lie in [0, 1)")
        if self.segment_s <= 0:
            raise ValidationError("segment length must be positive")


class SimulationRun:
    """One populated simulator: sessions scheduled, faults installed."""

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        self.sim = Simulator(trace_capacity=config.trace_capacity)
        self.world = SimWorld(config.scenario, seed=config.seed)
        self.world.bind_clock(lambda: self.sim.now)
        self.health: Optional[HealthRegistry] = None
        if config.health is not None:
            self.health = HealthRegistry(config.health)
            self.world.attach_health(self.health)
        self.outcomes: List[SessionOutcome] = []
        self._sessions: List[SimSession] = []
        self._session_ids = itertools.count(1)
        self._request_index = itertools.count()
        self._variants = device_variants(
            config.scenario.device, config.device_classes
        )
        self._duration_rng = random.Random(f"{config.seed}:durations")

        arrival_rng = random.Random(f"{config.seed}:arrivals")
        for at_s in config.arrivals.times(config.sessions, arrival_rng):
            self.add_session(at_s)
        for fault in config.faults:
            fault.install(self)

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def _next_request(self) -> PlanRequest:
        scenario = self.config.scenario
        index = next(self._request_index)
        return PlanRequest(
            content=scenario.content,
            device=self._variants[index % len(self._variants)],
            user=scenario.user,
            sender_node=scenario.sender_node,
            receiver_node=scenario.receiver_node,
            context=scenario.context,
        )

    def _next_duration(self) -> float:
        base = self.config.session_duration_s
        jitter = self.config.duration_jitter
        if jitter <= 0:
            return base
        return base * (1.0 + jitter * (2.0 * self._duration_rng.random() - 1.0))

    def add_session(self, at_s: float) -> SimSession:
        """Create one session and schedule its arrival.

        Called during construction for organic arrivals and by
        :class:`~repro.sim.faults.FlashCrowd` for burst arrivals; the
        shared request/duration streams keep the whole population
        deterministic regardless of who adds the session.
        """
        config = self.config
        session = SimSession(
            session_id=next(self._session_ids),
            request=self._next_request(),
            arrival_s=at_s,
            duration_s=self._next_duration(),
            sim=self.sim,
            world=self.world,
            on_done=self.outcomes.append,
            segment_s=config.segment_s,
            replan_threshold=config.replan_threshold,
            stall_satisfaction=config.stall_satisfaction,
            abandon_after_stalls=config.abandon_after_stalls,
            admission_floor=config.admission_floor,
        )
        self._sessions.append(session)
        self.sim.schedule_at(at_s, session.on_arrival, kind="arrival")
        return session

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self) -> SimReport:
        config = self.config
        self.sim.run(until_s=config.horizon_s, max_events=config.max_events)
        # Sessions cut off by the horizon (or event cap) finalize as
        # truncated; sessions whose arrival never fired are simply absent.
        for session in self._sessions:
            if session.started and not session.done:
                session.truncate()
        return SimReport(
            scenario=config.name,
            seed=config.seed,
            horizon_s=self.sim.now,
            events_processed=self.sim.events_processed,
            trace_events=self.sim.trace_records,
            trace_dropped=self.sim.trace.dropped,
            trace_digest=self.sim.trace_digest(),
            outcomes=outcomes_sorted(self.outcomes),
            health=self.health.summary() if self.health is not None else None,
        )


def run_simulation(config: SimulationConfig) -> SimReport:
    """Populate and execute one run; the one-call entry point."""
    return SimulationRun(config).execute()
