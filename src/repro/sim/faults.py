"""Fault injection: the controlled dynamics a run is evaluated under.

A :class:`FaultInjector` is a declarative description of one disturbance;
``install(run)`` translates it into events on the run's simulator that
mutate the shared :class:`~repro.sim.world.SimWorld` at the right virtual
instants.  Because installation happens before the clock starts and every
callback is deterministic, a fault schedule is part of the scenario
definition — same faults + same seed = same trace digest.

The taxonomy:

- :class:`LinkDegradation` — one link's capacity ramps down to a factor
  and back (congestion, cross-traffic, a flaky last mile);
- :class:`ServiceCrash` — an intermediary adaptation service dies and
  later recovers (process crash; sessions mid-chain are interrupted);
- :class:`RegionalOutage` — a set of nodes goes dark together (rack or
  region failure, the *correlated* case admission control cannot see
  coming);
- :class:`FlashCrowd` — a burst of extra session arrivals compressed into
  a short window (the thundering herd);
- :class:`GrayFailure` — one service silently drops a fraction of its
  attempts without ever reading as down: the planner's liveness filter
  stays green, and only outcome monitoring (a health registry's failure
  detector) can surface and quarantine it.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.errors import ValidationError

__all__ = [
    "FaultInjector",
    "LinkDegradation",
    "ServiceCrash",
    "RegionalOutage",
    "FlashCrowd",
    "GrayFailure",
]


class FaultInjector:
    """One disturbance, installable onto a simulation run."""

    def install(self, run) -> None:
        """Schedule this fault's events on ``run`` (a ``SimulationRun``)."""
        raise NotImplementedError


class LinkDegradation(FaultInjector):
    """Ramp one link's capacity down to ``factor`` and restore it later."""

    def __init__(
        self,
        a: str,
        b: str,
        start_s: float,
        duration_s: float,
        factor: float = 0.0,
        ramp_steps: int = 1,
        ramp_s: float = 0.0,
    ) -> None:
        if duration_s <= 0:
            raise ValidationError("fault duration must be positive")
        if not 0.0 <= factor <= 1.0:
            raise ValidationError("link factor must lie in [0, 1]")
        if ramp_steps < 1:
            raise ValidationError("ramp needs at least one step")
        if ramp_s < 0 or ramp_s >= duration_s:
            raise ValidationError("ramp must fit inside the fault window")
        self.a, self.b = a, b
        self.start_s = start_s
        self.duration_s = duration_s
        self.factor = factor
        self.ramp_steps = ramp_steps
        self.ramp_s = ramp_s

    def install(self, run) -> None:
        world, sim = run.world, run.sim

        def step_to(value: float):
            def apply() -> None:
                world.set_link_factor(self.a, self.b, value)
                sim.record(
                    "fault",
                    f"link {self.a}--{self.b} capacity x{value:.2f}",
                )

            return apply

        for step in range(1, self.ramp_steps + 1):
            value = 1.0 - (1.0 - self.factor) * step / self.ramp_steps
            offset = (
                self.ramp_s * (step - 1) / max(1, self.ramp_steps - 1)
                if self.ramp_steps > 1
                else 0.0
            )
            sim.schedule_at(self.start_s + offset, step_to(value), kind="fault")
        sim.schedule_at(
            self.start_s + self.duration_s, step_to(1.0), kind="fault"
        )


class ServiceCrash(FaultInjector):
    """Crash one intermediary service, recover it after a downtime."""

    def __init__(self, service_id: str, start_s: float, downtime_s: float) -> None:
        if downtime_s <= 0:
            raise ValidationError("downtime must be positive")
        self.service_id = service_id
        self.start_s = start_s
        self.downtime_s = downtime_s

    def install(self, run) -> None:
        world, sim = run.world, run.sim

        def crash() -> None:
            world.crash_service(self.service_id)
            sim.record("fault", f"service {self.service_id} crashed")

        def recover() -> None:
            world.recover_service(self.service_id)
            sim.record("fault", f"service {self.service_id} recovered")

        sim.schedule_at(self.start_s, crash, kind="fault")
        sim.schedule_at(self.start_s + self.downtime_s, recover, kind="fault")


class RegionalOutage(FaultInjector):
    """Take a whole set of nodes down together, then bring them back.

    Every link touching a downed node reads as zero capacity and every
    service placed there as crashed — the correlated-failure case where
    per-link or per-service reasoning underestimates the blast radius.
    """

    def __init__(
        self, nodes: Sequence[str], start_s: float, duration_s: float
    ) -> None:
        if not nodes:
            raise ValidationError("an outage needs at least one node")
        if duration_s <= 0:
            raise ValidationError("outage duration must be positive")
        self.nodes: Tuple[str, ...] = tuple(nodes)
        self.start_s = start_s
        self.duration_s = duration_s

    def install(self, run) -> None:
        world, sim = run.world, run.sim

        def fail() -> None:
            for node in self.nodes:
                world.fail_node(node)
            sim.record(
                "fault", f"regional outage: {','.join(self.nodes)} down"
            )

        def restore() -> None:
            for node in self.nodes:
                world.restore_node(node)
            sim.record(
                "fault", f"regional outage over: {','.join(self.nodes)} up"
            )

        sim.schedule_at(self.start_s, fail, kind="fault")
        sim.schedule_at(self.start_s + self.duration_s, restore, kind="fault")


class GrayFailure(FaultInjector):
    """One service silently fails ``failure_rate`` of its attempts.

    Unlike :class:`ServiceCrash`, the fault never touches the world's
    fault generation: plans keep routing through the sick service, and
    only per-attempt outcomes (fed to an attached health registry) carry
    the signal.  The interesting measurements are time-to-detect, the
    satisfaction delivered while the breaker converges, and recovery
    once HALF_OPEN probes start succeeding after the window closes.
    """

    def __init__(
        self,
        service_id: str,
        start_s: float,
        duration_s: float,
        failure_rate: float = 0.8,
    ) -> None:
        if duration_s <= 0:
            raise ValidationError("fault duration must be positive")
        if not 0.0 < failure_rate <= 1.0:
            raise ValidationError("failure rate must lie in (0, 1]")
        self.service_id = service_id
        self.start_s = start_s
        self.duration_s = duration_s
        self.failure_rate = failure_rate

    def install(self, run) -> None:
        world, sim = run.world, run.sim

        def start() -> None:
            world.set_gray_failure(self.service_id, self.failure_rate)
            sim.record(
                "fault",
                f"service {self.service_id} graying: drops "
                f"{self.failure_rate:.0%} of attempts",
            )

        def stop() -> None:
            world.clear_gray_failure(self.service_id)
            sim.record(
                "fault", f"service {self.service_id} gray failure cleared"
            )

        sim.schedule_at(self.start_s, start, kind="fault")
        sim.schedule_at(self.start_s + self.duration_s, stop, kind="fault")


class FlashCrowd(FaultInjector):
    """A burst of extra arrivals compressed into a short window.

    The burst draws its sessions from the run's request stream — the same
    device-class cycling as organic arrivals — so the crowd competes for
    exactly the resources the steady load uses.
    """

    def __init__(self, start_s: float, sessions: int, over_s: float = 1.0) -> None:
        if sessions < 1:
            raise ValidationError("a flash crowd needs at least one session")
        if over_s <= 0:
            raise ValidationError("burst window must be positive")
        self.start_s = start_s
        self.sessions = sessions
        self.over_s = over_s

    def install(self, run) -> None:
        run.sim.schedule_at(
            self.start_s,
            lambda: run.sim.record(
                "fault",
                f"flash crowd: {self.sessions} arrivals over "
                f"{self.over_s:.1f}s",
            ),
            kind="fault",
        )
        step = self.over_s / self.sessions
        for index in range(self.sessions):
            run.add_session(self.start_s + index * step)
